"""The shard-aware client: routing, pooling, and typed shedding.

:class:`ShardedServiceClient` fronts a fleet with the same call surface
as a single :class:`~repro.service.client.ServiceClient`, so
:class:`~repro.service.client.RemoteEstimator` (and anything else
written against one broker) drops onto a fleet unchanged::

    with ShardFleet(num_shards=4) as fleet:
        client = ShardedServiceClient(fleet.addresses, tenant_key="app-7")
        remote = RemoteEstimator(client, estimator="leo")
        curve = remote.estimate(problem)   # bit-equal to local execution

Per call: the tenant key consistent-hashes to its owning shard
(:class:`~repro.shard.router.ShardRouter`), the pooled connection for
that shard is reused (one :class:`ServiceClient` per shard, created on
first use, kept across calls), and the wire is whatever that client
negotiated — binary against this repo's fleet, JSON against a legacy
broker.

Failure semantics: a transport failure that survives the inner
client's own retries counts against the shard's health; at the
router's threshold the shard trips to down and every later call for
its tenants sheds immediately with the typed
:class:`~repro.errors.ShardUnavailable` — no failover, no dogpiling
the survivors.  Calls for tenants on healthy shards never see any of
it, which is the fleet-stays-up property the chaos gate asserts.

Fault sites: ``shard.route`` (kind ``broker-crash``) injects a
transport failure on the routed call — the crash path exercised end to
end — and ``shard.call`` (kind ``slow-shard``) injects added latency
before the call.
"""

from __future__ import annotations

import logging
import socket
from typing import Any, Dict, Optional

import numpy as np

from repro.clock import get_clock
from repro.errors import ShardUnavailable
from repro.faults.injector import stable_seed
from repro.estimators.base import EstimationProblem
from repro.faults.context import get_injector
from repro.service.client import ServiceClient
from repro.service.protocol import (
    ServiceAddress,
    decode_array,
    problem_to_payload,
)
from repro.shard.router import ShardRouter

logger = logging.getLogger(__name__)

__all__ = ["ShardedServiceClient"]


class ShardedServiceClient:
    """Routes tenant calls across a shard fleet over pooled connections.

    Args:
        addresses: ``shard_id -> ServiceAddress`` for the fleet.
        tenant_key: Default routing key for calls that do not pass one
            — the identity this client routes *as* (an application
            name, a tenant id).
        router: Shared :class:`ShardRouter`; ``None`` builds a private
            one over ``addresses``' keys.  Pass a shared router when
            several clients should agree on health state.
        wire: Wire mode for the pooled clients (default ``"auto"``:
            binary against this repo's fleet, JSON fallback).
        jitter_seed: Base seed for the pooled clients' backoff jitter.
            Each shard's client gets a seed derived from this and its
            shard id, so retry timing is deterministic per shard yet
            decorrelated across the pool — the property that makes
            virtual-clock chaos traces reproducible.  ``None`` leaves
            every pooled client on OS entropy (the old behaviour).
        client_kwargs: Extra :class:`ServiceClient` arguments (timeout,
            retries, backoff, ...) applied to every pooled client.
    """

    def __init__(self, addresses: Dict[str, ServiceAddress],
                 tenant_key: str = "default",
                 router: Optional[ShardRouter] = None,
                 wire: str = "auto",
                 jitter_seed: Optional[int] = None,
                 **client_kwargs: Any) -> None:
        if not addresses:
            raise ValueError("a sharded client needs at least one shard")
        self.addresses = dict(addresses)
        self.tenant_key = tenant_key
        self.router = (router if router is not None
                       else ShardRouter(sorted(self.addresses)))
        for shard_id in self.router.shard_ids:
            if shard_id not in self.addresses:
                raise ValueError(f"router shard {shard_id!r} has no "
                                 f"address")
        self.wire = wire
        self.jitter_seed = jitter_seed
        self._client_kwargs = dict(client_kwargs)
        self._pool: Dict[str, ServiceClient] = {}

    # -- pooling --------------------------------------------------------
    def client_for(self, shard_id: str) -> ServiceClient:
        """The pooled connection to one shard (created on first use)."""
        client = self._pool.get(shard_id)
        if client is None:
            kwargs = dict(self._client_kwargs)
            if self.jitter_seed is not None and "jitter_seed" not in kwargs:
                kwargs["jitter_seed"] = stable_seed(
                    "shard-jitter", self.jitter_seed, shard_id)
            client = ServiceClient(self.addresses[shard_id],
                                   wire=self.wire, **kwargs)
            self._pool[shard_id] = client
        return client

    def close(self) -> None:
        """Close every pooled connection (the pool itself survives)."""
        for client in self._pool.values():
            client.close()

    def __enter__(self) -> "ShardedServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the routed call ------------------------------------------------
    def call(self, op: str, payload: Optional[Dict[str, Any]] = None,
             deadline_s: Optional[float] = None,
             tenant_key: Optional[str] = None) -> Dict[str, Any]:
        """Invoke ``op`` on the tenant's owning shard.

        Raises :class:`ShardUnavailable` when the owner is down (from
        the router) or goes down during the call (from failure
        accounting); other typed service errors pass through unchanged.
        """
        key = tenant_key if tenant_key is not None else self.tenant_key
        shard_id = self.router.route(key)
        for spec in get_injector().fire("shard.call"):
            if spec.kind == "slow-shard":
                get_clock().sleep(max(0.0, spec.magnitude))
        crashed = any(spec.kind == "broker-crash"
                      for spec in get_injector().fire("shard.route"))
        try:
            if crashed:
                raise ConnectionError(
                    f"injected broker crash on {shard_id}")
            result = self.call_shard(shard_id, op, payload,
                                     deadline_s=deadline_s)
        except (ConnectionError, socket.timeout, OSError) as exc:
            tripped = self.router.record_failure(shard_id)
            logger.warning("shard %s transport failure (%s)%s", shard_id,
                           exc, "; shard marked down" if tripped else "")
            raise ShardUnavailable(
                f"shard {shard_id!r} failed transport for tenant "
                f"{key!r}: {exc}",
                details={"shard": shard_id, "tenant": key,
                         "marked_down": tripped}) from exc
        self.router.record_success(shard_id)
        return result

    def call_shard(self, shard_id: str, op: str,
                   payload: Optional[Dict[str, Any]] = None,
                   deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Invoke ``op`` on a *named* shard, bypassing tenant routing
        (fleet operations: metrics, ping, shutdown)."""
        return self.client_for(shard_id).call(op, payload,
                                              deadline_s=deadline_s)

    # -- ServiceClient-compatible surface -------------------------------
    def ping(self, echo: Any = None,
             tenant_key: Optional[str] = None) -> Dict[str, Any]:
        return self.call("ping", {"echo": echo}, tenant_key=tenant_key)

    def estimate(self, problem: EstimationProblem,
                 estimator: Optional[str] = None,
                 deadline_s: Optional[float] = None,
                 tenant_key: Optional[str] = None,
                 **kwargs: Any) -> np.ndarray:
        """Run a remote fit on the tenant's shard; returns the curve.

        Signature-compatible with :meth:`ServiceClient.estimate`, so
        :class:`RemoteEstimator` routes through the fleet untouched.
        """
        payload: Dict[str, Any] = {"problem": problem_to_payload(problem)}
        if estimator is not None:
            payload["estimator"] = estimator
        if kwargs:
            payload["kwargs"] = kwargs
        result = self.call("estimate", payload, deadline_s=deadline_s,
                           tenant_key=tenant_key)
        return decode_array(result["estimate"])

    def calibrate_report(self, app: str, **options: Any) -> Dict[str, Any]:
        """Calibrate on the shard owning ``app`` — the app *is* the
        tenant key, so repeat calibrations hit the same shard's cache
        and coalescing."""
        return self.call("calibrate-report", dict(options, app=app),
                         tenant_key=app)

    def metrics(self, shard_id: Optional[str] = None) -> Dict[str, Any]:
        """One shard's metrics, or every healthy shard's keyed by id."""
        if shard_id is not None:
            return self.call_shard(shard_id, "metrics")
        fleet: Dict[str, Any] = {}
        for member in self.router.shard_ids:
            if not self.router.is_up(member):
                continue
            try:
                fleet[member] = self.call_shard(member, "metrics")
            except (ConnectionError, socket.timeout, OSError) as exc:
                logger.warning("metrics unavailable from %s (%s)",
                               member, exc)
        return fleet

    def shutdown(self) -> None:
        """Stop every reachable shard (fleet teardown)."""
        for member in self.router.shard_ids:
            try:
                self.call_shard(member, "shutdown")
            except (ConnectionError, socket.timeout, OSError):
                pass
        self.close()
