"""Registry replication: leader-append writes, staleness-bounded reads.

The :class:`~repro.service.registry.ModelRegistry` already has the two
properties replication wants: version files are **immutable** once
linked into place, and publishes are **append-only** with atomic
no-clobber allocation.  That makes a read replica trivial and safe: a
replica holds its own registry directory and *pulls* whatever version
files it is missing — ``os.link`` when leader and replica share a
filesystem (the deployment this repo's single-host fleet uses), byte
copy otherwise.  A half-synced replica is never corrupt, merely behind;
there is no record that can change under a reader.

Write path (:class:`ReplicatedRegistry`): every ``publish`` goes to the
**leader** — the single append point, so version numbers stay a single
monotone sequence and two shards can never allocate the same version to
different records.

Read path: ``warm_estimate`` fans out over the replicas round-robin, so
lookup throughput scales with replica count.  Each read is
**staleness-bounded**: a replica re-syncs when its last sync is older
than ``staleness_s``, and a replica that cannot sync (leader partition
— the ``partitioned-replica`` fault) serves what it has, falling back
to a direct leader read only when it has *never* synced.  Strong reads
(``latest``, ``history``, ``known_models``) always go to the leader.
"""

from __future__ import annotations

import itertools
import logging
import os
import pathlib
import shutil
from typing import Any, Dict, List, Optional, Sequence

from repro.clock import get_clock
from repro.errors import PersistenceError
from repro.faults.context import get_injector
from repro.service.registry import (
    _VERSION_FILE,
    ModelRecord,
    ModelRegistry,
    PathLike,
)

logger = logging.getLogger(__name__)

__all__ = ["RegistryReplica", "ReplicatedRegistry"]


class RegistryReplica:
    """One read replica of a leader :class:`ModelRegistry`.

    Args:
        leader: The registry every publish appends to.
        directory: This replica's own registry root.
        staleness_s: Reads older than this re-sync first.  ``0`` syncs
            on every read (read-your-writes against the leader);
            ``float("inf")`` never re-syncs after the first pull.
        clock: Monotonic time source (injectable for tests); ``None``
            reads the ambient :func:`repro.clock.get_clock` per call,
            so replicas age in simulated time under a virtual clock.
    """

    def __init__(self, leader: ModelRegistry, directory: PathLike,
                 staleness_s: float = 1.0,
                 clock=None) -> None:
        if staleness_s < 0:
            raise ValueError(f"staleness_s must be >= 0, got {staleness_s}")
        self.leader = leader
        self.registry = ModelRegistry(directory)
        self.staleness_s = staleness_s
        self._clock = clock

        self._last_sync: Optional[float] = None
        self._pulled_files = 0

    def _now(self) -> float:
        return (self._clock() if self._clock is not None
                else get_clock().now())

    # -- sync -----------------------------------------------------------
    @property
    def last_sync_age_s(self) -> Optional[float]:
        """Seconds since the last successful sync; ``None`` if never."""
        if self._last_sync is None:
            return None
        return self._now() - self._last_sync

    @property
    def pulled_files(self) -> int:
        """Version files pulled over this replica's lifetime."""
        return self._pulled_files

    def sync(self) -> int:
        """Pull every version file the replica is missing.

        Returns the number of files pulled.  Immutability makes this a
        pure fill-in: existing files are never touched, so a crash
        mid-sync leaves a valid (just older) replica.  The
        ``registry.sync`` fault site injects the ``partitioned-replica``
        failure here.
        """
        for spec in get_injector().fire("registry.sync"):
            if spec.kind == "partitioned-replica":
                raise PersistenceError(
                    "injected replica partition: leader unreachable")
        pulled = 0
        leader_models = self.leader._models_dir
        if leader_models.is_dir():
            for key_dir in leader_models.iterdir():
                if not key_dir.is_dir():
                    continue
                target_dir = self.registry._models_dir / key_dir.name
                for entry in key_dir.iterdir():
                    if not _VERSION_FILE.match(entry.name):
                        continue
                    target = target_dir / entry.name
                    if target.exists():
                        continue
                    target_dir.mkdir(parents=True, exist_ok=True)
                    pulled += self._pull(entry, target)
        self._last_sync = self._now()
        self._pulled_files += pulled
        return pulled

    @staticmethod
    def _pull(source: pathlib.Path, target: pathlib.Path) -> int:
        """Link (or copy) one immutable version file; idempotent."""
        try:
            os.link(source, target)
        except FileExistsError:
            return 0  # another reader pulled it concurrently
        except OSError:
            # Cross-filesystem replica: fall back to a byte copy via a
            # temp name so a torn copy is never visible under the
            # version-file name.
            tmp = target.with_name(f".sync.{os.getpid()}.tmp")
            try:
                shutil.copyfile(source, tmp)
                os.replace(tmp, target)
            except FileExistsError:
                return 0
            finally:
                if tmp.exists():
                    tmp.unlink()
        return 1

    def _ensure_fresh(self) -> bool:
        """Sync when stale; returns False when the replica has never
        managed a sync (reads must fall back to the leader)."""
        age = self.last_sync_age_s
        if age is not None and age <= self.staleness_s:
            return True
        try:
            self.sync()
            return True
        except (OSError, PersistenceError) as exc:
            logger.warning("replica sync failed (%s); serving %s", exc,
                           "stale data" if self._last_sync is not None
                           else "from the leader")
            return self._last_sync is not None

    # -- reads ----------------------------------------------------------
    def warm_estimate(self, app: str, num_configs: int, estimator: str):
        """Staleness-bounded warm-start lookup on this replica.

        A replica that has synced at least once answers locally — at
        worst ``staleness_s`` behind.  One that has never synced (e.g.
        partitioned from birth) reads through to the leader rather than
        inventing an empty answer.
        """
        if not self._ensure_fresh():
            return self.leader.warm_estimate(app, num_configs, estimator)
        # The replica pulls version files only (the leader's "latest"
        # npz write-through is mutable, hence not linkable); its own
        # warm_estimate falls back to the version history it holds.
        return self.registry.warm_estimate(app, num_configs, estimator)

    def latest(self, app: str, num_configs: int,
               estimator: str) -> Optional[ModelRecord]:
        if not self._ensure_fresh():
            return self.leader.latest(app, num_configs, estimator)
        return self.registry.latest(app, num_configs, estimator)


class ReplicatedRegistry:
    """Leader-append writes plus round-robin replica reads.

    Duck-types the :class:`ModelRegistry` surface the
    :class:`~repro.service.server.EstimationService` consumes
    (``publish``, ``warm_estimate``, ``known_models``, ``store``), so a
    shard's service runs against replication without knowing it.

    Args:
        leader: The single append point.
        replicas: Read replicas; empty means every read is a leader
            read (replication factor 1).
    """

    def __init__(self, leader: ModelRegistry,
                 replicas: Sequence[RegistryReplica] = ()) -> None:
        self.leader = leader
        self.replicas = list(replicas)
        self._rotation = itertools.cycle(range(len(self.replicas))) \
            if self.replicas else None

    # -- writes (leader only) -------------------------------------------
    @property
    def store(self):
        """The leader's warm-start write-through store."""
        return self.leader.store

    def publish(self, app: str, estimate,
                metadata: Optional[Dict[str, Any]] = None) -> ModelRecord:
        return self.leader.publish(app, estimate, metadata)

    def publish_prior_pool(self, *args, **kwargs):
        return self.leader.publish_prior_pool(*args, **kwargs)

    # -- scaled reads (replicas) ----------------------------------------
    def warm_estimate(self, app: str, num_configs: int, estimator: str):
        if self._rotation is None:
            return self.leader.warm_estimate(app, num_configs, estimator)
        replica = self.replicas[next(self._rotation)]
        return replica.warm_estimate(app, num_configs, estimator)

    # -- strong reads (leader) ------------------------------------------
    def latest(self, app: str, num_configs: int, estimator: str):
        return self.leader.latest(app, num_configs, estimator)

    def history(self, app: str, num_configs: int,
                estimator: str) -> List[ModelRecord]:
        return self.leader.history(app, num_configs, estimator)

    def versions(self, app: str, num_configs: int,
                 estimator: str) -> List[int]:
        return self.leader.versions(app, num_configs, estimator)

    def known_models(self) -> List[Dict[str, Any]]:
        return self.leader.known_models()

    def latest_prior_pool(self, space_key: str):
        return self.leader.latest_prior_pool(space_key)

    def sync_all(self) -> int:
        """Force-sync every replica; returns total files pulled."""
        return sum(replica.sync() for replica in self.replicas)
