"""The shard fleet: N brokers, one replicated registry, one process.

:class:`ShardFleet` is the in-process deployment of the sharded
service: it spins up ``num_shards`` independent
:class:`~repro.service.server.ServerThread` brokers, each fronting its
own :class:`~repro.service.server.EstimationService` backed by a
:class:`~repro.shard.replication.ReplicatedRegistry` — every shard
publishes to the one leader registry and warm-reads from its own
replicas, so a model published through shard 0 warm-starts a tenant on
shard 3 within the staleness bound.

The fleet is the unit the throughput experiment, the chaos gate, and
the ``repro shard`` CLI all drive.  :meth:`stop_shard` kills one broker
in place (the chaos primitive behind the ``shard-loss`` plan): its
tenants start failing with transport errors → the client's failure
accounting trips the router → those tenants shed with the typed
:class:`~repro.errors.ShardUnavailable` while every other shard keeps
serving.
"""

from __future__ import annotations

import contextlib
import pathlib
import tempfile
from typing import Any, Dict, List, Optional

from repro.service.protocol import ServiceAddress
from repro.service.registry import ModelRegistry
from repro.service.server import EstimationService, ServerThread
from repro.shard.replication import RegistryReplica, ReplicatedRegistry
from repro.shard.router import ShardRouter

__all__ = ["ShardFleet"]


class ShardFleet:
    """``num_shards`` service brokers over one replicated registry.

    Args:
        num_shards: Fleet width.
        registry_root: Directory for the leader registry and the
            per-shard replicas; ``None`` uses a temporary directory
            that is removed on :meth:`stop`.
        replicas_per_shard: Read replicas each shard's registry fans
            warm reads over.  ``0`` makes every shard read the leader
            directly.
        staleness_s: Replica staleness bound (see
            :class:`RegistryReplica`).
        max_pending: Per-shard admission budget.
        max_workers: Per-shard handler threads.
        accept_binary: Whether the shards speak protocol v2 (used by
            negotiation tests to raise an all-JSON fleet).
        server_kwargs: Extra :class:`ServiceServer` arguments applied
            to every shard.
    """

    def __init__(self, num_shards: int = 2,
                 registry_root: Optional[pathlib.Path] = None,
                 replicas_per_shard: int = 1,
                 staleness_s: float = 1.0,
                 max_pending: int = 32,
                 max_workers: int = 2,
                 accept_binary: bool = True,
                 **server_kwargs: Any) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replicas_per_shard < 0:
            raise ValueError(f"replicas_per_shard must be >= 0, "
                             f"got {replicas_per_shard}")
        self.num_shards = num_shards
        self.shard_ids = tuple(f"shard-{index}"
                               for index in range(num_shards))
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if registry_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            registry_root = pathlib.Path(self._tmp.name)
        self.registry_root = pathlib.Path(registry_root)
        self.leader = ModelRegistry(self.registry_root / "leader")
        self.replicas: Dict[str, List[RegistryReplica]] = {}
        self._threads: Dict[str, ServerThread] = {}
        for shard_id in self.shard_ids:
            shard_replicas = [
                RegistryReplica(
                    self.leader,
                    self.registry_root / shard_id / f"replica-{index}",
                    staleness_s=staleness_s)
                for index in range(replicas_per_shard)
            ]
            self.replicas[shard_id] = shard_replicas
            service = EstimationService(
                registry=ReplicatedRegistry(self.leader, shard_replicas))
            self._threads[shard_id] = ServerThread(
                service,
                ServiceAddress(host="127.0.0.1", port=0),
                max_pending=max_pending, max_workers=max_workers,
                accept_binary=accept_binary, **server_kwargs)
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> Dict[str, ServiceAddress]:
        """Start every shard; returns the address map."""
        if self._started:
            raise RuntimeError("fleet already started")
        started: List[str] = []
        try:
            for shard_id in self.shard_ids:
                self._threads[shard_id].start()
                started.append(shard_id)
        except Exception:
            for shard_id in started:
                with contextlib.suppress(Exception):
                    self._threads[shard_id].stop()
            raise
        self._started = True
        return self.addresses

    def stop(self) -> None:
        """Stop every still-running shard and drop a temp registry."""
        for thread in self._threads.values():
            with contextlib.suppress(Exception):
                thread.stop()
        self._started = False
        if self._tmp is not None:
            with contextlib.suppress(OSError):
                self._tmp.cleanup()
            self._tmp = None

    def stop_shard(self, shard_id: str) -> None:
        """Kill one broker in place — the shard-loss chaos primitive.

        The listener closes and in-flight connections drop; the fleet
        keeps running.  Routing is *not* updated here: clients discover
        the loss through transport failures, exactly as they would a
        real crash.
        """
        if shard_id not in self._threads:
            raise ValueError(f"unknown shard {shard_id!r} "
                             f"(fleet: {list(self.shard_ids)})")
        self._threads[shard_id].stop()

    def __enter__(self) -> "ShardFleet":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- introspection --------------------------------------------------
    @property
    def addresses(self) -> Dict[str, ServiceAddress]:
        """Bound address per shard (available after :meth:`start`)."""
        return {shard_id: thread.bound_address
                for shard_id, thread in self._threads.items()}

    def router(self, **router_kwargs: Any) -> ShardRouter:
        """A fresh router over this fleet's shard ids."""
        return ShardRouter(self.shard_ids, **router_kwargs)

    def server(self, shard_id: str) -> ServerThread:
        """The underlying thread for one shard (tests, metrics)."""
        return self._threads[shard_id]

    def replication_lag(self) -> Dict[str, Optional[float]]:
        """Seconds since each replica's last sync, keyed
        ``"{shard}/replica-{i}"``; ``None`` means never synced."""
        lag: Dict[str, Optional[float]] = {}
        for shard_id, shard_replicas in self.replicas.items():
            for index, replica in enumerate(shard_replicas):
                lag[f"{shard_id}/replica-{index}"] = replica.last_sync_age_s
        return lag
