"""Horizontal scale for the estimation service: ``repro.shard``.

The single asyncio broker from the service layer is the unit; this
package composes N of them into a fleet:

* :class:`~repro.shard.router.ShardRouter` — consistent-hash tenant
  assignment with per-shard health; a down shard sheds its own tenants
  (typed :class:`~repro.errors.ShardUnavailable`), never the fleet.
* :class:`~repro.shard.replication.RegistryReplica` /
  :class:`~repro.shard.replication.ReplicatedRegistry` — leader-append
  model publishes, staleness-bounded replica reads, built on the
  registry's immutable version files.
* :class:`~repro.shard.fleet.ShardFleet` — N brokers over one
  replicated registry, with :meth:`~repro.shard.fleet.ShardFleet.
  stop_shard` as the chaos primitive.
* :class:`~repro.shard.client.ShardedServiceClient` — routing plus
  connection pooling behind the single-broker client's call surface,
  so ``RemoteEstimator`` works against a fleet unchanged.

See ``docs/SHARDING.md`` for the design walk-through and
``benchmarks/shard_smoke.py`` for the CI gate over all of it.
"""

from repro.errors import ShardUnavailable
from repro.shard.client import ShardedServiceClient
from repro.shard.fleet import ShardFleet
from repro.shard.replication import RegistryReplica, ReplicatedRegistry
from repro.shard.router import DEFAULT_VNODES, ShardRouter

__all__ = [
    "DEFAULT_VNODES",
    "RegistryReplica",
    "ReplicatedRegistry",
    "ShardFleet",
    "ShardRouter",
    "ShardUnavailable",
    "ShardedServiceClient",
]
