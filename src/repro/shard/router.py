"""Consistent-hash routing of tenant keys onto service shards.

The router owns two facts about the fleet: *who owns which tenant*
(a consistent-hash ring) and *who is currently healthy* (per-shard
failure accounting).  Both are deliberately simple and deterministic:

* The ring hashes ``"{shard_id}#{vnode}"`` with SHA-256 — stable across
  processes, platforms, and ``PYTHONHASHSEED`` — so every client in the
  fleet computes the same owner for the same tenant without any
  coordination.  Virtual nodes smooth the key distribution; removing a
  shard remaps only the keys it owned (the consistent-hashing minimal
  disruption property, asserted by ``tests/test_shard_router.py``).
* Health is an explicit mark: ``record_failure`` counts consecutive
  transport failures per shard and trips ``mark_down`` at the
  threshold; ``record_success`` resets the count.

When a tenant's owner is down, :meth:`route` raises the typed
:class:`~repro.errors.ShardUnavailable` — it does **not** fail over to
the next shard.  That is the load-shedding contract from the ROADMAP:
a lost shard sheds *its own* tenants while the rest of the fleet serves
on, rather than dogpiling the survivors with the dead shard's traffic
(the cascade the admission controller would then shed anyway, but from
every tenant instead of the unlucky ones).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ShardUnavailable

__all__ = ["ShardRouter", "DEFAULT_VNODES"]

#: Virtual nodes per shard; enough that a 4-shard ring keeps per-shard
#: load within a few percent of uniform.
DEFAULT_VNODES = 64


def _ring_hash(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class ShardRouter:
    """Deterministic tenant-to-shard assignment with health tracking.

    Args:
        shard_ids: The fleet members.  Order does not matter — the ring
            is a pure function of the id *set* — but ids must be unique.
        vnodes: Virtual nodes per shard on the ring.
        failure_threshold: Consecutive :meth:`record_failure` calls that
            trip a shard to down.
    """

    def __init__(self, shard_ids: Sequence[str],
                 vnodes: int = DEFAULT_VNODES,
                 failure_threshold: int = 3) -> None:
        ids = list(shard_ids)
        if not ids:
            raise ValueError("a router needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold}")
        self.shard_ids: Tuple[str, ...] = tuple(sorted(ids))
        self.vnodes = vnodes
        self.failure_threshold = failure_threshold
        points: List[Tuple[int, str]] = []
        for shard in self.shard_ids:
            for vnode in range(vnodes):
                points.append((_ring_hash(f"{shard}#{vnode}"), shard))
        points.sort()
        self._hashes = [point[0] for point in points]
        self._owners = [point[1] for point in points]
        self._down: set = set()
        self._failures: Dict[str, int] = {shard: 0
                                          for shard in self.shard_ids}

    # -- ownership ------------------------------------------------------
    def owner(self, tenant_key: str) -> str:
        """The shard that owns ``tenant_key``, health ignored."""
        index = bisect.bisect_right(self._hashes, _ring_hash(tenant_key))
        if index == len(self._hashes):
            index = 0  # wrap: the ring is circular
        return self._owners[index]

    def route(self, tenant_key: str) -> str:
        """The healthy owner of ``tenant_key``.

        Raises :class:`ShardUnavailable` when the owner is marked down —
        deliberately without failover, so a lost shard sheds exactly its
        own tenants.
        """
        shard = self.owner(tenant_key)
        if shard in self._down:
            raise ShardUnavailable(
                f"shard {shard!r} owning tenant {tenant_key!r} is down; "
                f"{len(self.healthy)} of {len(self.shard_ids)} shards "
                f"remain up",
                details={"shard": shard, "tenant": tenant_key,
                         "healthy": list(self.healthy)})
        return shard

    def assignments(self, tenant_keys: Iterable[str]) -> Dict[str, str]:
        """Owner per tenant key (health ignored), for capacity planning."""
        return {key: self.owner(key) for key in tenant_keys}

    # -- health ---------------------------------------------------------
    @property
    def healthy(self) -> Tuple[str, ...]:
        return tuple(shard for shard in self.shard_ids
                     if shard not in self._down)

    @property
    def down(self) -> Tuple[str, ...]:
        return tuple(shard for shard in self.shard_ids
                     if shard in self._down)

    def is_up(self, shard_id: str) -> bool:
        self._check_member(shard_id)
        return shard_id not in self._down

    def mark_down(self, shard_id: str) -> None:
        self._check_member(shard_id)
        self._down.add(shard_id)

    def mark_up(self, shard_id: str) -> None:
        """Readmit a shard (health-check recovery); resets its count."""
        self._check_member(shard_id)
        self._down.discard(shard_id)
        self._failures[shard_id] = 0

    def record_failure(self, shard_id: str) -> bool:
        """Count one transport failure; returns True when the shard
        trips to down (at ``failure_threshold`` consecutive failures)."""
        self._check_member(shard_id)
        self._failures[shard_id] += 1
        if self._failures[shard_id] >= self.failure_threshold:
            self._down.add(shard_id)
            return True
        return False

    def record_success(self, shard_id: str) -> None:
        self._check_member(shard_id)
        self._failures[shard_id] = 0

    def _check_member(self, shard_id: str) -> None:
        if shard_id not in self._failures:
            raise ValueError(f"unknown shard {shard_id!r} "
                             f"(fleet: {list(self.shard_ids)})")
