"""Application Heartbeats analog: application-level performance feedback.

The paper instruments every benchmark with the Application Heartbeats
library [22, 27], which lets an application register a heartbeat at each
semantically meaningful unit of progress (a frame encoded, a batch of
samples clustered) and lets observers read the heartbeat rate over a
sliding window.  "All performance results are then estimated and measured
in terms of heartbeats/s" (Section 6.1).

:class:`HeartbeatMonitor` is that interface for the simulated stack: the
machine's execution windows emit heartbeats into it and the runtime reads
windowed rates out of it (including for phase detection, Section 6.6).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Optional

from repro.faults.context import get_injector


@dataclasses.dataclass(frozen=True)
class HeartbeatRecord:
    """One heartbeat batch: timestamp and number of beats it carries."""

    time: float
    beats: float


class HeartbeatMonitor:
    """Sliding-window heartbeat registry.

    Args:
        window: Number of most-recent records the windowed rate uses.
        min_target: Optional lower performance target (heartbeats/s).
        max_target: Optional upper performance target.
    """

    def __init__(self, window: int = 20, min_target: Optional[float] = None,
                 max_target: Optional[float] = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if (min_target is not None and max_target is not None
                and min_target > max_target):
            raise ValueError(
                f"min_target {min_target} exceeds max_target {max_target}"
            )
        self.window = window
        self.min_target = min_target
        self.max_target = max_target
        self._records: Deque[HeartbeatRecord] = collections.deque(maxlen=window)
        self._last_time: Optional[float] = None
        self.total_beats = 0.0

    def heartbeat(self, time: float, beats: float = 1.0) -> None:
        """Register ``beats`` heartbeats completed at simulated ``time``."""
        if beats < 0:
            raise ValueError(f"beats must be non-negative, got {beats}")
        if self._last_time is not None and time < self._last_time:
            raise ValueError(
                f"heartbeat time went backwards: {time} < {self._last_time}"
            )
        if get_injector().active("telemetry.heartbeat", clock=time):
            # Injected heartbeat stall: the application is running but
            # its beats never reach the monitor, so the windowed rate
            # goes stale until the stall clears.
            return
        self._records.append(HeartbeatRecord(time=time, beats=beats))
        self._last_time = time
        self.total_beats += beats

    def window_rate(self) -> float:
        """Heartbeat rate (beats/s) over the sliding window.

        The first record in the window anchors the interval; its beats
        are excluded from the numerator (they completed before the
        window's span started).  Returns 0.0 until two records exist.
        """
        if len(self._records) < 2:
            return 0.0
        first = self._records[0]
        span = self._records[-1].time - first.time
        if span <= 0:
            return 0.0
        beats = sum(r.beats for r in self._records) - first.beats
        return beats / span

    def meets_target(self) -> bool:
        """Whether the current windowed rate satisfies both targets."""
        rate = self.window_rate()
        if self.min_target is not None and rate < self.min_target:
            return False
        if self.max_target is not None and rate > self.max_target:
            return False
        return True

    def reset(self) -> None:
        """Forget all heartbeats (e.g. at a phase boundary)."""
        self._records.clear()
        self._last_time = None
        self.total_beats = 0.0
