"""Energy accounting: integrating power logs and execution records.

Energy is the objective of the paper's optimization (Eq. 1): the sum over
configurations of power times residency.  This module provides the
integration utilities shared by the runtime, the experiments, and the
meters.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.platform.machine import Measurement
from repro.telemetry.power_meter import PowerSample


def integrate_power(times: Sequence[float], watts: Sequence[float]) -> float:
    """Trapezoidal energy (J) of a power-vs-time trace.

    Args:
        times: Monotonically non-decreasing timestamps in seconds.
        watts: Power readings aligned with ``times``.
    """
    t = np.asarray(times, dtype=float)
    p = np.asarray(watts, dtype=float)
    if t.shape != p.shape:
        raise ValueError(f"times {t.shape} and watts {p.shape} must align")
    if t.size == 0:
        return 0.0
    if t.size == 1:
        return 0.0
    if np.any(np.diff(t) < 0):
        raise ValueError("times must be non-decreasing")
    if np.any(p < 0):
        raise ValueError("power readings must be non-negative")
    # np.trapz was removed in NumPy 2.0 in favour of np.trapezoid.
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(p, t))


def energy_of_log(log: Iterable[PowerSample]) -> float:
    """Trapezoidal energy of a meter log."""
    samples = list(log)
    return integrate_power([s.time for s in samples],
                           [s.watts for s in samples])


def energy_of_measurements(measurements: Iterable[Measurement]) -> float:
    """Exact energy of a sequence of machine execution windows."""
    return float(sum(m.energy for m in measurements))


def average_power(log: Iterable[PowerSample]) -> float:
    """Time-weighted mean power of a meter log (W)."""
    samples = list(log)
    if len(samples) < 2:
        if samples:
            return samples[0].watts
        raise ValueError("cannot average an empty log")
    span = samples[-1].time - samples[0].time
    if span <= 0:
        return float(np.mean([s.watts for s in samples]))
    return energy_of_log(samples) / span
