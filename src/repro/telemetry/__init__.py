"""Measurement substrate: power meters, energy integration, heartbeats."""

from repro.telemetry.energy import (
    average_power,
    energy_of_log,
    energy_of_measurements,
    integrate_power,
)
from repro.telemetry.heartbeats import HeartbeatMonitor, HeartbeatRecord
from repro.telemetry.power_meter import PowerSample, RaplMeter, WattsUpMeter

__all__ = [
    "average_power",
    "energy_of_log",
    "energy_of_measurements",
    "integrate_power",
    "HeartbeatMonitor",
    "HeartbeatRecord",
    "PowerSample",
    "RaplMeter",
    "WattsUpMeter",
]
