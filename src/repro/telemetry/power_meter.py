"""Simulated power meters: WattsUp (system) and RAPL (chip).

The paper instruments its testbed with a WattsUp wall meter providing
total-system power at 1 s intervals and Intel's RAPL counters providing
chip power for both sockets at finer grain (Section 6.1).  These classes
reproduce that measurement stack on top of the simulated machine: each
meter samples the machine's ground-truth draw through its own noise and
quantization, and keeps a timestamped log that
:mod:`repro.telemetry.energy` can integrate.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.errors import SensorReadError
from repro.faults.context import get_injector
from repro.platform.machine import Machine


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """One meter reading: simulated timestamp (s) and power (W)."""

    time: float
    watts: float


class _MeterBase:
    """Shared machinery for sampling meters."""

    def __init__(self, machine: Machine, period: float, noise_std: float,
                 quantum: float, seed: int = 0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be non-negative, got {noise_std}")
        if quantum < 0:
            raise ValueError(f"quantum must be non-negative, got {quantum}")
        self.machine = machine
        self.period = period
        self.noise_std = noise_std
        self.quantum = quantum
        self._rng = np.random.default_rng(seed)
        self.log: List[PowerSample] = []

    def _true_watts(self) -> float:
        raise NotImplementedError

    def sample(self) -> PowerSample:
        """Take one reading of the machine's current draw.

        Raises :class:`~repro.errors.SensorReadError` when an injected
        meter dropout eats the reading (the machine itself is
        unaffected; only this sample is lost).
        """
        watts = self._true_watts() + self._rng.normal(0.0, self.noise_std)
        for spec in get_injector().fire("telemetry.meter",
                                        clock=self.machine.clock):
            if spec.kind == "meter-dropout":
                raise SensorReadError("injected meter dropout",
                                      site="telemetry.meter")
            if spec.kind == "meter-outlier":
                watts *= spec.magnitude
            elif spec.kind == "meter-bias":
                watts += spec.magnitude
        if self.quantum > 0:
            watts = round(watts / self.quantum) * self.quantum
        watts = max(watts, 0.0)
        reading = PowerSample(time=self.machine.clock, watts=watts)
        self.log.append(reading)
        return reading

    def record_window(self, duration: float) -> List[PowerSample]:
        """Run the machine for ``duration`` while sampling every period.

        Returns the samples taken during the window.  The machine is
        advanced in whole meter periods plus a fractional remainder, so
        the machine clock ends exactly ``duration`` later.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        taken: List[PowerSample] = []
        remaining = duration
        while remaining > 1e-12:
            step = min(self.period, remaining)
            self.machine.run_for(step)
            taken.append(self.sample())
            remaining -= step
        return taken

    def reset(self) -> None:
        """Clear the sample log."""
        self.log.clear()


class WattsUpMeter(_MeterBase):
    """Wall meter: total system power at 1 s granularity, 0.1 W steps."""

    def __init__(self, machine: Machine, period: float = 1.0,
                 noise_std: float = 1.5, quantum: float = 0.1,
                 seed: int = 0) -> None:
        super().__init__(machine, period, noise_std, quantum, seed)

    def _true_watts(self) -> float:
        profile, config = self.machine.profile, self.machine.config
        if profile is None or config is None:
            return self.machine.idle_power()
        return self.machine.true_power(profile, config)


class RaplMeter(_MeterBase):
    """On-chip energy counters: package power at fine (50 ms) granularity."""

    def __init__(self, machine: Machine, period: float = 0.05,
                 noise_std: float = 0.4, quantum: float = 0.0,
                 seed: int = 0) -> None:
        super().__init__(machine, period, noise_std, quantum, seed)

    def _true_watts(self) -> float:
        profile, config = self.machine.profile, self.machine.config
        if profile is None or config is None:
            # Idle packages: uncore trickle only.
            return 0.25 * (self.machine.topology.sockets
                           * self.machine.power_model.constants.uncore_per_socket)
        return self.machine.power_model.chip_power(profile, config)
