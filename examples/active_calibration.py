#!/usr/bin/env python3
"""Uncertainty-guided calibration and model persistence.

Two production concerns beyond the paper's protocol:

1. *Where to sample?*  LEO's posterior variance says which configuration
   a new measurement would teach the most about.  The active calibrator
   seeds with a coarse grid, then chases uncertainty — reaching random
   sampling's accuracy with fewer measurements on adversarial shapes.
2. *Why recalibrate at all?*  The fitted model outlives the process; an
   EstimateStore persists it so a returning application starts from its
   saved curves.

Run:  python examples/active_calibration.py
"""

import tempfile

import numpy as np

from repro.core.accuracy import accuracy
from repro.experiments.harness import default_context, format_table
from repro.reporting import sparkline
from repro.runtime.active_sampling import ActiveCalibrator
from repro.runtime.controller import RuntimeController
from repro.runtime.persistence import EstimateStore
from repro.runtime.sampling import RandomSampler
from repro.estimators.leo import LEOEstimator


def main() -> None:
    ctx = default_context(space_kind="paper", seed=0)
    target = "kmeans"
    view = ctx.dataset.leave_one_out(target)
    truth = ctx.truth.leave_one_out(target).true_rates
    profile = ctx.profile(target)

    print(f"Calibrating {target} on {len(ctx.space)} configurations\n")

    rows = []
    for budget in (8, 12, 16, 20):
        calibrator = ActiveCalibrator(
            machine=ctx.machine(seed_offset=50), space=ctx.space,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            seed_count=6, batch_size=2)
        active = calibrator.calibrate(profile, budget)

        controller = RuntimeController(
            machine=ctx.machine(seed_offset=51), space=ctx.space,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=1), sample_count=budget)
        passive = controller.calibrate(profile)

        rows.append([budget, accuracy(active.rates, truth),
                     accuracy(passive.rates, truth)])
    print(format_table(
        ["budget", "active accuracy", "random accuracy"], rows,
        title="Active vs random sampling (performance, Eq. 5)"))

    calibrator = ActiveCalibrator(
        machine=ctx.machine(seed_offset=52), space=ctx.space,
        prior_rates=view.prior_rates, prior_powers=view.prior_powers)
    final = calibrator.calibrate(profile, 20)
    print("\nWhere the model remains uncertain (posterior stddev across "
          "the configuration index):")
    print(f"  |{sparkline(final.rate_uncertainty, width=64)}|")
    print(f"  measured {final.indices.size} configurations: "
          f"{sorted(int(i) for i in final.indices)[:10]}...")

    # Persist and reload the model.
    with tempfile.TemporaryDirectory() as tmp:
        store = EstimateStore(tmp)
        controller = RuntimeController(
            machine=ctx.machine(seed_offset=53), space=ctx.space,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=2))
        first = store.get_or_calibrate(target, controller, profile)
        clock_after = controller.machine.clock
        again = store.get_or_calibrate(target, controller, profile)
        print(f"\nEstimateStore: first call sampled for "
              f"{first.sampling_time:.0f}s; second call loaded from disk "
              f"(machine clock unchanged: "
              f"{controller.machine.clock == clock_after}); curves "
              f"identical: {np.array_equal(first.rates, again.rates)}")


if __name__ == "__main__":
    main()
