#!/usr/bin/env python3
"""Quickstart: minimize energy for one application in five lines.

Builds the standard simulated platform (the paper's dual-socket Xeon
with 1024 configurations), profiles the 25-benchmark suite offline once,
then runs the kmeans clustering workload at a 50% utilization demand
with LEO choosing the configurations.

Run:  python examples/quickstart.py
"""

from repro import EnergyManager, get_benchmark


def main() -> None:
    kmeans = get_benchmark("kmeans")
    manager = EnergyManager(estimator="leo", seed=0)

    print("Collecting offline profiling tables (one-time, 25 apps)...")
    _ = manager.dataset

    print("Calibrating: sampling 20 of 1024 configurations...")
    estimate = manager.estimate_tradeoffs(kmeans)
    best = int(estimate.rates.argmax())
    print(f"  estimated peak-performance configuration: #{best}")
    print(f"  model fit took {estimate.fit_seconds:.2f}s wall-clock "
          f"(paper reports ~0.8s per quantity)")

    print("Running kmeans at 50% utilization with a 100s deadline...")
    report = manager.optimize(kmeans, utilization=0.5, deadline=100.0,
                              estimate=estimate)
    print(f"  energy: {report.energy:,.0f} J, demand met: "
          f"{report.met_target}")

    race = manager.race_to_idle(kmeans, utilization=0.5, deadline=100.0)
    savings = 100.0 * (1.0 - report.energy / race.energy)
    print(f"Race-to-idle on the same demand: {race.energy:,.0f} J")
    print(f"LEO saves {savings:.1f}% energy.")


if __name__ == "__main__":
    main()
