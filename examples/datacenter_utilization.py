#!/usr/bin/env python3
"""Datacenter scenario: a server sweeping through utilization levels.

The paper's motivation (Section 1) is that datacenter servers are
chronically underutilized — yet must meet whatever demand arrives.  This
example models a day on one server: a web-search workload (swish) whose
demand follows a diurnal curve from 15% to 95% utilization, re-optimized
each hour.  It compares LEO against race-to-idle, the common production
heuristic, and prints the daily energy bill difference.

Run:  python examples/datacenter_utilization.py
"""

import numpy as np

from repro import EnergyManager, get_benchmark
from repro.experiments.harness import format_table


#: Hourly demand profile: overnight trough, morning ramp, evening peak.
DIURNAL_UTILIZATION = [
    0.20, 0.15, 0.15, 0.15, 0.18, 0.25,   # 00:00 - 05:00
    0.35, 0.50, 0.65, 0.75, 0.80, 0.85,   # 06:00 - 11:00
    0.88, 0.90, 0.85, 0.80, 0.78, 0.82,   # 12:00 - 17:00
    0.92, 0.95, 0.85, 0.60, 0.40, 0.28,   # 18:00 - 23:00
]

#: Each "hour" is compressed to this many simulated seconds.
HOUR_SECONDS = 60.0


def main() -> None:
    swish = get_benchmark("swish")
    manager = EnergyManager(estimator="leo", seed=1)

    print("Calibrating LEO for the search server (one-time)...")
    estimate = manager.estimate_tradeoffs(swish)

    rows = []
    leo_total = 0.0
    race_total = 0.0
    for hour, utilization in enumerate(DIURNAL_UTILIZATION):
        leo = manager.optimize(swish, utilization=utilization,
                               deadline=HOUR_SECONDS, estimate=estimate)
        race = manager.race_to_idle(swish, utilization=utilization,
                                    deadline=HOUR_SECONDS)
        leo_total += leo.energy
        race_total += race.energy
        rows.append([f"{hour:02d}:00", f"{utilization:.0%}",
                     leo.energy, race.energy,
                     100.0 * (1 - leo.energy / race.energy)])

    print(format_table(
        ["hour", "demand", "LEO (J)", "race-to-idle (J)", "savings %"],
        rows, title="A day of demand on one search server"))

    savings = 100.0 * (1.0 - leo_total / race_total)
    print(f"\nDaily total:  LEO {leo_total:,.0f} J   "
          f"race-to-idle {race_total:,.0f} J   ({savings:.1f}% saved)")
    print("Savings concentrate in the underutilized hours — exactly the "
          "regime the paper targets.")

    trough = np.argmin(DIURNAL_UTILIZATION)
    peak = np.argmax(DIURNAL_UTILIZATION)
    print(f"Biggest win at {trough:02d}:00 "
          f"({DIURNAL_UTILIZATION[trough]:.0%} demand); "
          f"smallest near {peak:02d}:00 "
          f"({DIURNAL_UTILIZATION[peak]:.0%} demand).")


if __name__ == "__main__":
    main()
