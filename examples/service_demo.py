#!/usr/bin/env python3
"""The estimation service: two tenants, one calibration.

LEO's Section 6.7 argument is that estimation cost amortizes — once one
application's curves are fitted, later users of the same model pay
nothing.  The ``repro.service`` subsystem turns that from a property of
one process into a property of a deployment: an estimation server owns a
versioned model registry, many clients share it, and a returning tenant
gets published curves back without sampling a single configuration.

This demo stands up a real server (in a background thread, over a real
socket), then:

1. tenant A asks for kmeans curves on the cores-only space — a cold
   start: the server samples, fits LEO, and publishes version 1;
2. tenant B asks for the *same* model — a warm start: the registry
   answers with identical curves and ``samples_used: 0``;
3. the broker's own metrics show both requests, and the registry
   directory shows the published, schema-versioned record.

Run:  python examples/service_demo.py
"""

import tempfile
import time
from pathlib import Path

from repro.service import (
    EstimationService,
    ModelRegistry,
    ServerThread,
    ServiceClient,
)


def main() -> None:
    registry_dir = Path(tempfile.mkdtemp(prefix="leo_registry_"))
    service = EstimationService(registry=ModelRegistry(registry_dir))

    with ServerThread(service, max_pending=8, max_workers=2) as thread:
        address = thread.bound_address
        print(f"Estimation service listening on {address}")
        print(f"Model registry at {registry_dir}\n")

        print("Tenant A: calibrate kmeans on the cores space (cold)...")
        started = time.perf_counter()
        with ServiceClient(address, timeout=300.0) as tenant_a:
            cold = tenant_a.calibrate_report(
                "kmeans", space="cores", samples=6, estimator="leo",
                deadline_s=240.0)
        cold_seconds = time.perf_counter() - started
        print(f"  source={cold['source']}  samples_used="
              f"{cold['samples_used']}  version={cold['version']}  "
              f"perf-accuracy={cold['accuracy_performance']:.3f}  "
              f"({cold_seconds:.1f}s)\n")

        print("Tenant B: request the same model (warm)...")
        started = time.perf_counter()
        with ServiceClient(address, timeout=300.0) as tenant_b:
            warm = tenant_b.calibrate_report(
                "kmeans", space="cores", samples=6, estimator="leo")
        warm_seconds = time.perf_counter() - started
        print(f"  source={warm['source']}  samples_used="
              f"{warm['samples_used']}  ({warm_seconds:.3f}s)")
        identical = (warm["rates"] == cold["rates"]
                     and warm["powers"] == cold["powers"])
        print(f"  curves identical to tenant A's: {identical}")
        if cold_seconds > 0 and warm_seconds > 0:
            print(f"  warm start is ~{cold_seconds / warm_seconds:,.0f}x "
                  f"faster: the sampling cost was paid once\n")

        with ServiceClient(address) as probe:
            snapshot = probe.metrics()
            listing = probe.registry_list()
        print("Broker counters:")
        for name, value in sorted(
                snapshot["metrics"]["counters"].items()):
            print(f"  {name:32s} {value:g}")
        print("\nRegistry contents:")
        for model in listing["models"]:
            print(f"  {model['app']} / {model['estimator']} / "
                  f"{model['num_configs']} configs -> "
                  f"v{model['latest_version']}")

    record = next((registry_dir / "models").rglob("v*.json"))
    print(f"\nPublished record on disk: {record.relative_to(registry_dir)}")
    print("A second server pointed at this directory would warm-start "
          "immediately.")


if __name__ == "__main__":
    main()
