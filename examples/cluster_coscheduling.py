#!/usr/bin/env python3
"""Co-scheduling three applications on one node under a power cap.

One node, three tenants — a heavy scaler (fluidanimate), a throughput
monster (kmeans), and an intermediate (blackscholes) — each with its
own deadline, sharing a global power cap.  The cluster coordinator
partitions the cores, calibrates a LEO model per tenant, and divides
the cap across the learned tradeoff curves; the baseline splits the
cap evenly and lets each tenant fend for itself inside its share.

At a loose cap both policies meet every deadline and the joint
allocator wins on energy (it can grant a tenant the efficient
configurations an equal split prices out); at a tight cap the equal
split pinches the heavy tenant into missing its deadline while the
joint allocator re-balances and still meets all three.

Run:  python examples/cluster_coscheduling.py
"""

from repro.cluster import ClusterCoordinator, Tenant
from repro.experiments.cluster_energy import tenant_workloads
from repro.experiments.harness import default_context, format_table
from repro.experiments.parallel import cell_seed

BENCHMARKS = ("fluidanimate", "kmeans", "blackscholes")
UTILIZATIONS = (0.75, 0.25, 0.35)
DEADLINE = 40.0
CAPS = (260.0, 230.0)


def run_policy(ctx, workloads, cap, policy):
    coordinator = ClusterCoordinator(
        ctx.space, cap_watts=cap, policy=policy,
        seed=cell_seed(ctx.seed, "cluster", cap, policy))
    for name, work in workloads:
        view = ctx.dataset.leave_one_out(name)
        coordinator.admit(Tenant(
            name=name, workload=ctx.profile(name), work=work,
            deadline=DEADLINE,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
    return coordinator.run()


def main() -> None:
    ctx = default_context(space_kind="cores")
    workloads = tenant_workloads(ctx, BENCHMARKS, UTILIZATIONS, DEADLINE)
    print("Tenant demands over a shared node "
          f"({ctx.space.topology.total_cores} cores, {DEADLINE:.0f}s "
          "deadline):")
    for name, work in workloads:
        print(f"  {name:<14} {work:12,.0f} heartbeats")

    rows = []
    for cap in CAPS:
        for policy in ("joint", "static"):
            report = run_policy(ctx, workloads, cap, policy)
            missed = [name for name, t in report.tenants.items()
                      if not t.met_deadline]
            rows.append([cap, policy, report.node_energy,
                         max(report.epoch_peak_watts),
                         "yes" if report.cap_respected else "NO",
                         ",".join(missed) or "-"])

    print()
    print(format_table(
        ["cap (W)", "policy", "energy (J)", "peak (W)", "cap ok",
         "missed deadlines"],
        rows, title="Coordinated vs equal-split power capping"))
    print("\nLoose cap: both policies feasible, joint spends less energy.")
    print("Tight cap: the equal split starves the heavy tenant; the joint")
    print("allocator re-balances the cap and still meets every deadline.")


if __name__ == "__main__":
    main()
