#!/usr/bin/env python3
"""Bringing your own application and estimator to the stack.

Demonstrates the extension points a downstream user touches:

1. define a new application profile (here: a sharded in-memory cache
   with poor hyperthreading behaviour and heavy memory traffic);
2. compare all registered estimators on it, leave-one-out style, even
   though it was never part of the offline suite;
3. register a custom estimator (a nearest-neighbour-in-prior-space
   approach) and run it through the same harness.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import (
    ApplicationProfile,
    EstimationProblem,
    Estimator,
    accuracy,
    register_estimator,
)
from repro.estimators.base import normalize_problem
from repro.estimators.registry import create_estimator
from repro.experiments.harness import default_context, format_table
from repro.runtime.sampling import RandomSampler

MY_APP = ApplicationProfile(
    name="shardcache",
    base_rate=850.0,          # requests/s on one core
    serial_fraction=0.04,
    scaling_peak=12,          # lock contention past 12 threads
    contention_slope=0.06,
    memory_intensity=0.45,    # pointer chasing
    io_intensity=0.05,
    ht_efficiency=-0.1,       # hyperthreads thrash the cache
    memory_parallelism=14,
    activity_factor=0.6,
)


class NearestNeighborEstimator(Estimator):
    """Predict with the prior application most similar at the samples."""

    name = "nearest-neighbor"

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        if problem.prior is None:
            raise ValueError("needs prior applications")
        observed = problem.prior[:, problem.observed_indices]
        distances = np.linalg.norm(
            observed - problem.observed_values, axis=1)
        return problem.prior[int(np.argmin(distances))].copy()


def main() -> None:
    register_estimator("nearest-neighbor", NearestNeighborEstimator)
    ctx = default_context(space_kind="paper", seed=0)

    # Ground truth for the new app (the simulator plays testbed).
    machine = ctx.machine(seed_offset=500)
    truth = np.array([machine.true_rate(MY_APP, c) for c in ctx.space])

    # Sample it online, as the runtime would.
    indices = RandomSampler(seed=4).select(len(ctx.space), 20)
    machine.load(MY_APP)
    observed = []
    for i in indices:
        machine.apply(ctx.space[int(i)])
        observed.append(machine.run_for(1.0).rate)
    observed = np.array(observed)

    problem = EstimationProblem(
        features=ctx.features, prior=ctx.dataset.rates,
        observed_indices=indices, observed_values=observed)
    normalized, scale = normalize_problem(problem)

    rows = []
    for name in ("leo", "online", "offline", "nearest-neighbor"):
        estimator = create_estimator(name)
        estimate = estimator.estimate(normalized) * scale
        rows.append([name, accuracy(estimate, truth),
                     int(np.argmax(estimate)) + 1])
    rows.append(["(truth)", 1.0, int(np.argmax(truth)) + 1])

    print(f"New application '{MY_APP.name}': true performance peaks at "
          f"configuration {int(np.argmax(truth)) + 1} of "
          f"{len(ctx.space)}\n")
    print(format_table(
        ["estimator", "accuracy (Eq. 5)", "estimated best config"],
        rows, title="Estimating an application outside the offline suite"))


if __name__ == "__main__":
    main()
