#!/usr/bin/env python3
"""The Section 2 motivational example, end to end (paper Figure 1).

Kmeans scales well to 8 cores and then degrades sharply — a shape that
is hard to learn from six samples.  This example reproduces the paper's
comparison: observe kmeans at 6 of 32 core allocations and let each
approach (LEO, online regression, offline mean) predict the full curve,
then use each prediction to minimize energy across utilization demands.

Run:  python examples/kmeans_case_study.py
"""

import numpy as np

from repro.experiments.harness import default_context, format_table
from repro.experiments.motivation import OBSERVED_CORES, motivation_experiment
from repro.reporting import sparkline


def main() -> None:
    ctx = default_context(space_kind="cores", seed=0)
    print(f"Observing kmeans at logical CPU counts {list(OBSERVED_CORES)} "
          f"out of 1..32\n")
    result = motivation_experiment(ctx, num_utilizations=12)

    print("Figure 1a — performance vs cores (normalized sparklines):")
    print(f"  {'truth':8s} |{sparkline(result.true_rates)}|  "
          f"peak @ {result.true_peak()} cores")
    for approach, curve in result.est_rates.items():
        print(f"  {approach:8s} |{sparkline(curve)}|  "
              f"peak @ {result.estimated_peak(approach)} cores")

    print("\nFigure 1b — power vs cores:")
    print(f"  {'truth':8s} |{sparkline(result.true_powers)}|")
    for approach, curve in result.est_powers.items():
        print(f"  {approach:8s} |{sparkline(curve)}|")

    print("\nFigure 1c — measured energy vs utilization (Joules):")
    rows = []
    for i, u in enumerate(result.utilizations):
        rows.append([f"{u:.0%}"] + [result.energy[a][i] for a in
                                    ("optimal", "leo", "online", "offline",
                                     "race-to-idle")])
    print(format_table(
        ["utilization", "optimal", "leo", "online", "offline", "race"],
        rows))

    means = {a: float(np.mean(v)) for a, v in result.energy.items()}
    print(f"\nMean energy over the sweep, normalized to optimal:")
    for approach in ("leo", "online", "offline", "race-to-idle"):
        print(f"  {approach:14s} {means[approach] / means['optimal']:.3f}x")


if __name__ == "__main__":
    main()
