#!/usr/bin/env python3
"""Adapting to workload phases: the Section 6.6 scenario.

fluidanimate renders frames against a fixed real-time deadline, but its
input has two phases — the second needs only 2/3 the work per frame.
The runtime cannot see the input; it notices that measured heartbeat
rates stop matching the model, re-calibrates, and settles on a cheaper
configuration for the light phase.

Run:  python examples/phase_adaptation.py
"""

import numpy as np

from repro.experiments.dynamic import dynamic_experiment, table1_rows
from repro.experiments.harness import default_context, format_table


def main() -> None:
    ctx = default_context(space_kind="paper", seed=0)
    print("Running fluidanimate through a two-phase input "
          "(phase 2 needs 2/3 the resources)...\n")
    result = dynamic_experiment(ctx, phase_seconds=30.0)

    workload = result.workload
    print(f"Workload: {workload.total_frames} frames, "
          f"{workload.phases[0].frame_deadline * 1000:.1f} ms/frame "
          f"deadline, phase boundary at frame "
          f"{workload.phase_boundaries()[0]}\n")

    print(format_table(["Algorithm", "Phase#1", "Phase#2", "Overall"],
                       table1_rows(result),
                       title="Table 1: energy relative to optimal"))

    print("\nPower over time (mean Watts per fifth of each phase):")
    for approach, reports in result.reports.items():
        segments = []
        for report in reports:
            trace = np.asarray(report.power_trace)
            for chunk in np.array_split(trace, 5):
                segments.append(f"{chunk.mean():5.0f}")
        print(f"  {approach:8s} {' '.join(segments[:5])} | "
              f"{' '.join(segments[5:])}")

    detections = {a: result.reestimations(a) for a in result.reports}
    print(f"\nPhase-change re-calibrations: {detections}")
    print("Every approach meets the per-frame deadline in both phases; "
          "the difference is how much power it takes them to do it.")


if __name__ == "__main__":
    main()
