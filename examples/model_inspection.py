#!/usr/bin/env python3
"""Looking inside the fitted hierarchy (the paper's Figures 3 and 4).

The model's power comes from two internal structures this example makes
visible:

* **Sigma, the between-configuration covariance** (paper Figure 4):
  which configurations move together across applications.  Observing one
  configuration informs its correlated peers — that is how 20 samples
  pin down 1024 values.
* **The posterior credible band**: where the target's curve is known
  tightly (near samples and strongly-correlated configurations) and
  where uncertainty remains — the signal the active-sampling extension
  acquires on.

Run:  python examples/model_inspection.py
"""

import numpy as np

from repro.core.hbm import HierarchicalBayesianModel
from repro.core.observation import ObservationSet
from repro.experiments.harness import default_context
from repro.reporting import heatmap, sparkline


def main() -> None:
    ctx = default_context(space_kind="cores", seed=0)
    target = "kmeans"
    view = ctx.dataset.leave_one_out(target)
    truth = ctx.truth.leave_one_out(target).true_rates

    # Normalize prior curves to a common scale, observe 6 core counts.
    indices = np.array([4, 9, 14, 19, 24, 29])
    prior = view.prior_rates / view.prior_rates[:, indices].mean(
        axis=1, keepdims=True)
    observed = truth[indices] / truth[indices].mean()
    observations = ObservationSet.from_prior_and_target(
        prior, indices, observed)

    fitted = HierarchicalBayesianModel().fit(observations)
    print(f"Fitted in {fitted.iterations} EM iterations "
          f"(log-likelihood {fitted.loglik:.1f})\n")

    print("Sigma as correlations between core counts (paper Figure 4):")
    print("darker = configurations whose behaviour co-varies across apps")
    corr = fitted.configuration_correlations()
    print(heatmap(corr, width=32, height=16, symmetric=True))

    target_row = observations.target_row
    mean = fitted.curve(target_row)
    lower, upper = fitted.credible_band(target_row, stddevs=2.0)
    print("\nTarget estimate with 2-sigma credible band "
          "(x = core count 1..32):")
    print(f"  upper |{sparkline(upper)}|")
    print(f"  mean  |{sparkline(mean)}|")
    print(f"  lower |{sparkline(lower)}|")
    width = upper - lower
    tightest = int(np.argmin(width)) + 1
    loosest = int(np.argmax(width)) + 1
    print(f"\nBand is tightest at {tightest} cores (sampled region) and "
          f"loosest at {loosest} cores.")
    sampled = ", ".join(str(i + 1) for i in indices)
    print(f"Sampled core counts: {sampled}")

    # How correlated is an unobserved config with its nearest sample?
    unobserved = 7  # 8 cores, the true peak, never sampled
    nearest = indices[np.argmin(np.abs(indices - unobserved))]
    print(f"\nCorrelation between {unobserved + 1} cores (unsampled, the "
          f"true peak) and {nearest + 1} cores (nearest sample): "
          f"{corr[unobserved, nearest]:.2f} — that correlation is what "
          f"lets LEO place the peak without measuring it.")


if __name__ == "__main__":
    main()
