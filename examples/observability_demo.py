#!/usr/bin/env python3
"""Observability: trace the full calibrate + run loop and inspect it.

Installs a recording ``Observability`` bundle around an ``EnergyManager``
run on the small cores-only space, then shows the three artifacts the
layer produces:

* the span tree (``controller.calibrate`` -> ``estimator.fit`` ->
  ``em.iteration``; ``controller.run`` -> ``controller.quantum`` ->
  ``lp.solve``), rendered with ``repro.reporting.render_span_tree``;
* the metrics snapshot (EM iterations, LP re-solves, sampling joules,
  fit-time histogram);
* the JSONL trace file, the same thing ``python -m repro estimate
  --trace`` writes and ``python -m repro obs summarize`` renders.

Run:  python examples/observability_demo.py
"""

import tempfile
from pathlib import Path

from repro import ConfigurationSpace, EnergyManager, get_benchmark
from repro.obs import Observability, read_trace, write_trace
from repro.reporting import render_span_tree, summarize_spans


def main() -> None:
    kmeans = get_benchmark("kmeans")
    ob = Observability.recording()
    manager = EnergyManager(estimator="leo", seed=0, sample_count=8,
                            space=ConfigurationSpace.cores_only(),
                            observability=ob)

    print("Calibrating and running kmeans (32-config space, traced)...")
    estimate = manager.estimate_tradeoffs(kmeans)
    report = manager.optimize(kmeans, utilization=0.6, deadline=50.0,
                              estimate=estimate)
    print(f"  demand met: {report.met_target}, "
          f"energy: {report.energy:,.0f} J\n")

    print("Span tree (eliding long quantum runs):")
    print(render_span_tree(ob.tracer.spans, max_children=6))

    print("\nPer-span aggregates:")
    for name, agg in summarize_spans(ob.tracer.spans).items():
        print(f"  {name:22s} count={agg['count']:4.0f} "
              f"total={agg['total_s'] * 1e3:8.2f}ms")

    print("\nMetrics snapshot:")
    snapshot = ob.metrics.snapshot()
    for name, value in snapshot["counters"].items():
        print(f"  {name:28s} {value:g}")
    for name, value in snapshot["gauges"].items():
        print(f"  {name:28s} {value:g}")
    fit = snapshot["histograms"]["fit_seconds"]
    print(f"  fit_seconds                  count={fit['count']:g} "
          f"mean={fit['mean'] * 1e3:.1f}ms p99={fit['p99'] * 1e3:.1f}ms")

    print("\nSpan-derived estimate bookkeeping (single source of truth):")
    print(f"  sampling_time={estimate.sampling_time:.1f}s  "
          f"sampling_energy={estimate.sampling_energy:,.0f}J  "
          f"fit_seconds={estimate.fit_seconds:.3f}s")

    trace_path = Path(tempfile.gettempdir()) / "leo_demo_trace.jsonl"
    write_trace(trace_path, ob.tracer.spans)
    loaded = read_trace(trace_path)
    print(f"\nWrote {len(loaded)} spans to {trace_path}")
    print(f"Inspect it with:  python -m repro obs summarize {trace_path}")


if __name__ == "__main__":
    main()
