"""Tests for repro.runtime.sampling."""

import numpy as np
import pytest

from repro.runtime.sampling import GridSampler, RandomSampler, StratifiedSampler

ALL_SAMPLERS = [RandomSampler, GridSampler, StratifiedSampler]


class TestCommonContract:
    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_indices_sorted_unique_in_range(self, sampler_cls):
        sampler = sampler_cls()
        picks = sampler.select(100, 20)
        assert (np.diff(picks) > 0).all()
        assert picks.min() >= 0 and picks.max() < 100

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_full_coverage(self, sampler_cls):
        picks = sampler_cls().select(10, 10)
        np.testing.assert_array_equal(picks, np.arange(10))

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_validation(self, sampler_cls):
        sampler = sampler_cls()
        with pytest.raises(ValueError):
            sampler.select(0, 1)
        with pytest.raises(ValueError):
            sampler.select(10, 0)
        with pytest.raises(ValueError):
            sampler.select(10, 11)


class TestRandomSampler:
    def test_seeded_determinism(self):
        a = RandomSampler(seed=3).select(1024, 20)
        b = RandomSampler(seed=3).select(1024, 20)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomSampler(seed=1).select(1024, 20)
        b = RandomSampler(seed=2).select(1024, 20)
        assert not np.array_equal(a, b)

    def test_exact_count(self):
        assert RandomSampler(seed=0).select(1024, 20).size == 20


class TestGridSampler:
    def test_section_2_grid(self):
        """32 configs, 6 samples: uniformly spread like 5, 10, ..., 30."""
        picks = GridSampler().select(32, 6)
        np.testing.assert_array_equal(picks + 1, [3, 9, 14, 19, 25, 30])
        # Evenly spaced, spanning the interior.
        gaps = np.diff(picks)
        assert gaps.max() - gaps.min() <= 1

    def test_deterministic(self):
        np.testing.assert_array_equal(GridSampler().select(100, 7),
                                      GridSampler().select(100, 7))


class TestStratifiedSampler:
    def test_one_pick_per_stratum(self):
        picks = StratifiedSampler(seed=0).select(100, 10)
        strata = picks // 10
        assert len(set(strata)) == 10

    def test_seeded(self):
        a = StratifiedSampler(seed=5).select(64, 8)
        b = StratifiedSampler(seed=5).select(64, 8)
        np.testing.assert_array_equal(a, b)
