"""Checkpoint/recovery tests: crash-resume must be bit-equal.

The acceptance criterion: a run interrupted at a checkpoint boundary
and resumed by a *fresh* controller produces a :class:`RunReport` — and
a machine energy/clock — bit-equal to the uninterrupted run, on a
fault-free plan.  Plus the CheckpointManager's durability contract:
atomic writes, CRC-guarded loads, and tolerant skipping of torn or
corrupt files (including injected partial writes).
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.estimators.leo import LEOEstimator
from repro.faults import FaultInjector, FaultPlan, FaultSpec, use
from repro.platform.machine import Machine
from repro.platform.thermal import ThermalModel
from repro.platform.topology import PAPER_TOPOLOGY
from repro.runtime.controller import RuntimeController
from repro.runtime.persistence import CheckpointManager
from repro.runtime.phase_detector import PhaseDetector
from repro.runtime.sampling import RandomSampler

WORK_FRACTION = 0.4
DEADLINE = 50.0


def build_controller(cores_space, cores_dataset, seed=1234):
    view = cores_dataset.leave_one_out("kmeans")
    return RuntimeController(
        machine=Machine(PAPER_TOPOLOGY, seed=seed), space=cores_space,
        estimator=LEOEstimator(),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=0), sample_count=6)


class _CaptureAt:
    """A checkpointer that records the payload at one boundary."""

    def __init__(self, at_quantum: int) -> None:
        self.at = at_quantum
        self.payload = None

    def maybe_save(self, quantum_index: int, payload_fn) -> bool:
        if quantum_index == self.at and self.payload is None:
            # Round-trip through JSON exactly like the real manager, so
            # the resumed state saw the same serialization the disk
            # format imposes.
            self.payload = json.loads(json.dumps(payload_fn()))
            return True
        return False


def full_and_resumed(cores_space, cores_dataset, kmeans, at_quantum,
                     adapt=False):
    """One uninterrupted run and one fresh-controller resume from the
    ``at_quantum`` boundary of an identically-seeded run."""
    baseline = build_controller(cores_space, cores_dataset)
    estimate = baseline.calibrate(kmeans)
    work = WORK_FRACTION * estimate.rates.max() * DEADLINE
    full = baseline.run(kmeans, work, DEADLINE, estimate, adapt=adapt)

    crashing = build_controller(cores_space, cores_dataset)
    estimate2 = crashing.calibrate(kmeans)
    capture = _CaptureAt(at_quantum)
    crashing.run(kmeans, work, DEADLINE, estimate2, adapt=adapt,
                 checkpointer=capture)
    assert capture.payload is not None, "checkpoint boundary never hit"

    fresh = build_controller(cores_space, cores_dataset)
    resumed = fresh.resume(capture.payload, kmeans)
    return full, resumed, baseline, fresh


class TestBitEqualResume:
    @pytest.mark.parametrize("at_quantum", [5, 11])
    def test_report_bit_equal(self, cores_space, cores_dataset, kmeans,
                              at_quantum):
        full, resumed, baseline, fresh = full_and_resumed(
            cores_space, cores_dataset, kmeans, at_quantum)
        for field in dataclasses.fields(full):
            assert getattr(resumed, field.name) == \
                getattr(full, field.name), field.name
        assert fresh.machine.total_energy == baseline.machine.total_energy
        assert fresh.machine.clock == baseline.machine.clock
        assert fresh.machine.total_heartbeats == \
            baseline.machine.total_heartbeats

    def test_adaptive_run_bit_equal(self, cores_space, cores_dataset,
                                    kmeans):
        # adapt=True carries extra state (the phase detector); it must
        # survive the round trip too.
        full, resumed, _, _ = full_and_resumed(
            cores_space, cores_dataset, kmeans, at_quantum=7, adapt=True)
        assert resumed == full

    def test_resume_through_real_manager(self, cores_space, cores_dataset,
                                         kmeans, tmp_path):
        manager = CheckpointManager(tmp_path / "run.ckpt", every_quanta=4)
        baseline = build_controller(cores_space, cores_dataset)
        estimate = baseline.calibrate(kmeans)
        work = WORK_FRACTION * estimate.rates.max() * DEADLINE
        full = baseline.run(kmeans, work, DEADLINE, estimate,
                            checkpointer=manager)
        assert manager.saves >= 1
        state = manager.load()
        assert state is not None

        fresh = build_controller(cores_space, cores_dataset)
        resumed = fresh.resume(state, kmeans)
        assert resumed == full
        assert fresh.machine.total_energy == baseline.machine.total_energy


class TestSnapshotValidation:
    def test_thermal_machines_refuse_checkpointing(self, cores_space,
                                                   cores_dataset, kmeans):
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=Machine(PAPER_TOPOLOGY, seed=1,
                            thermal=ThermalModel()),
            space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=0), sample_count=6)
        estimate = controller.calibrate(kmeans)
        work = WORK_FRACTION * estimate.rates.max() * DEADLINE
        with pytest.raises(CheckpointError):
            controller.run(kmeans, work, DEADLINE, estimate,
                           checkpointer=CheckpointManager("unused.ckpt"))

    def test_resume_rejects_wrong_profile(self, cores_space, cores_dataset,
                                          kmeans, swish):
        controller = build_controller(cores_space, cores_dataset)
        estimate = controller.calibrate(kmeans)
        work = WORK_FRACTION * estimate.rates.max() * DEADLINE
        capture = _CaptureAt(5)
        controller.run(kmeans, work, DEADLINE, estimate,
                       checkpointer=capture)
        fresh = build_controller(cores_space, cores_dataset)
        with pytest.raises(CheckpointError):
            fresh.resume(capture.payload, swish)

    def test_resume_rejects_future_schema(self, cores_space, cores_dataset,
                                          kmeans):
        controller = build_controller(cores_space, cores_dataset)
        estimate = controller.calibrate(kmeans)
        work = WORK_FRACTION * estimate.rates.max() * DEADLINE
        capture = _CaptureAt(5)
        controller.run(kmeans, work, DEADLINE, estimate,
                       checkpointer=capture)
        state = dict(capture.payload, schema_version=99)
        fresh = build_controller(cores_space, cores_dataset)
        with pytest.raises(CheckpointError):
            fresh.resume(state, kmeans)


class TestCheckpointManager:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path / "x", every_quanta=0)

    def test_due_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path / "x", every_quanta=3)
        assert [i for i in range(10) if manager.due(i)] == [3, 6, 9]

    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "run.ckpt")
        payload = {"schema_version": 1, "work": 12.5,
                   "visited": [1, 2, 3]}
        manager.save(payload)
        assert manager.saves == 1
        assert manager.load() == payload

    def test_missing_file_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "absent.ckpt").load() is None

    def test_corrupt_file_loads_none(self, tmp_path):
        path = tmp_path / "run.ckpt"
        manager = CheckpointManager(path)
        manager.save({"a": 1})
        path.write_text("{ not json")
        assert manager.load() is None

    def test_truncated_file_loads_none(self, tmp_path):
        path = tmp_path / "run.ckpt"
        manager = CheckpointManager(path)
        manager.save({"a": list(range(100))})
        path.write_bytes(path.read_bytes()[:30])
        assert manager.load() is None

    def test_crc_mismatch_loads_none(self, tmp_path):
        path = tmp_path / "run.ckpt"
        manager = CheckpointManager(path)
        manager.save({"a": 1})
        envelope = json.loads(path.read_text())
        envelope["payload"]["a"] = 2  # silent corruption
        path.write_text(json.dumps(envelope))
        assert manager.load() is None

    def test_injected_partial_write_is_detected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        manager = CheckpointManager(path)
        with use(FaultInjector(FaultPlan(name="torn", specs=(
                FaultSpec("partial-write", probability=1.0,
                          magnitude=0.5),)))):
            manager.save({"a": list(range(100))})
        assert path.exists()
        assert manager.load() is None

    def test_clear(self, tmp_path):
        manager = CheckpointManager(tmp_path / "run.ckpt")
        manager.save({"a": 1})
        assert manager.clear() is True
        assert manager.load() is None
        assert manager.clear() is False


class TestResumeUnderShardLoss:
    """Satellite of the soak work: crash-resume must stay bit-equal even
    mid-soak, with the estimator remoted onto a *degraded* fleet under
    the shipped ``shard-loss`` fault plan."""

    def test_resume_against_degraded_fleet_bit_equal(
            self, cores_space, cores_dataset, kmeans, tmp_path):
        from repro.errors import ShardUnavailable
        from repro.faults import get_plan
        from repro.service import RemoteEstimator
        from repro.shard.client import ShardedServiceClient
        from repro.shard.fleet import ShardFleet

        view = cores_dataset.leave_one_out("kmeans")
        fleet = ShardFleet(num_shards=2, registry_root=tmp_path / "fleet")
        fleet.start()
        client = ShardedServiceClient(
            fleet.addresses, tenant_key="runner", retries=0, backoff=0.0)
        try:
            runner_shard = client.router.route("runner")
            victim = next(key for key in (f"v{i}" for i in range(32))
                          if client.router.route(key) != runner_shard)
            injector = FaultInjector(get_plan("shard-loss"))
            with use(injector):
                # "Mid-soak": earlier fleet traffic soaks up the plan's
                # broker-crash budget (max_events=4) and trips the
                # victim's shard down — the runner's estimation traffic
                # must ride out the storm on the surviving shard.
                sheds = 0
                for _ in range(4):  # 3 crashes trip the victim's shard
                    with pytest.raises(ShardUnavailable):
                        client.ping(tenant_key=victim)
                    sheds += 1
                with pytest.raises(ShardUnavailable):
                    client.ping(tenant_key="runner")  # 4th, last crash
                client.ping(tenant_key="runner")  # healthy again
                down = set(client.router.down)
                assert down and runner_shard not in down

                def build():
                    return RuntimeController(
                        machine=Machine(PAPER_TOPOLOGY, seed=1234),
                        space=cores_space,
                        estimator=RemoteEstimator(client,
                                                  estimator="offline"),
                        prior_rates=view.prior_rates,
                        prior_powers=view.prior_powers,
                        sampler=RandomSampler(seed=0), sample_count=6)

                baseline = build()
                estimate = baseline.calibrate(kmeans)
                work = WORK_FRACTION * estimate.rates.max() * DEADLINE
                full = baseline.run(kmeans, work, DEADLINE, estimate)

                manager = CheckpointManager(tmp_path / "run.ckpt",
                                            every_quanta=4)
                crashing = build()
                estimate2 = crashing.calibrate(kmeans)
                crashing.run(kmeans, work, DEADLINE, estimate2,
                             checkpointer=manager)
                assert manager.saves >= 1
                state = manager.load()
                assert state is not None

                resumed = build().resume(state, kmeans)
            assert resumed == full
            # The fleet stayed degraded throughout: the victim's shard
            # never silently recovered under the controller's feet.
            assert set(client.router.down) == down
        finally:
            client.close()
            fleet.stop()
