"""Tests for repro.optimize.schedule."""

import pytest

from repro.optimize.schedule import Schedule, Slot


class TestSlot:
    def test_idle_slot(self):
        slot = Slot(None, 3.0)
        assert slot.config_index is None

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Slot(0, -1.0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Slot(-2, 1.0)


class TestSchedule:
    def test_drops_zero_duration_slots(self):
        schedule = Schedule([Slot(0, 0.0), Slot(1, 2.0)])
        assert len(schedule) == 1

    def test_total_and_busy_time(self):
        schedule = Schedule([Slot(0, 2.0), Slot(None, 3.0), Slot(1, 1.0)])
        assert schedule.total_time == pytest.approx(6.0)
        assert schedule.busy_time == pytest.approx(3.0)

    def test_work_accumulates_rates(self):
        schedule = Schedule([Slot(0, 2.0), Slot(1, 1.0), Slot(None, 5.0)])
        assert schedule.work([10.0, 40.0]) == pytest.approx(60.0)

    def test_energy_charges_idle_power(self):
        schedule = Schedule([Slot(0, 2.0), Slot(None, 3.0)])
        energy = schedule.energy([100.0], idle_power=50.0)
        assert energy == pytest.approx(200.0 + 150.0)

    def test_energy_rejects_negative_idle(self):
        with pytest.raises(ValueError):
            Schedule([Slot(None, 1.0)]).energy([], idle_power=-1.0)

    def test_average_rate(self):
        schedule = Schedule([Slot(0, 5.0), Slot(None, 5.0)])
        assert schedule.average_rate([10.0]) == pytest.approx(5.0)

    def test_average_rate_empty_schedule(self):
        assert Schedule([]).average_rate([1.0]) == 0.0

    def test_padded_to_appends_idle(self):
        schedule = Schedule([Slot(0, 4.0)]).padded_to(10.0)
        assert schedule.total_time == pytest.approx(10.0)
        assert schedule.slots[-1].config_index is None

    def test_padded_to_noop_when_full(self):
        schedule = Schedule([Slot(0, 10.0)]).padded_to(10.0)
        assert len(schedule) == 1

    def test_padded_to_rejects_overflow(self):
        with pytest.raises(ValueError):
            Schedule([Slot(0, 11.0)]).padded_to(10.0)

    def test_repr_mentions_slots(self):
        text = repr(Schedule([Slot(3, 1.0), Slot(None, 2.0)]))
        assert "c3" in text and "idle" in text
