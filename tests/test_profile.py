"""Tests for repro.workloads.profile."""

import dataclasses

import pytest

from repro.workloads.profile import ApplicationProfile


def _make(**overrides):
    base = dict(name="app", base_rate=10.0, serial_fraction=0.1,
                scaling_peak=8, contention_slope=0.05,
                memory_intensity=0.3, io_intensity=0.1, ht_efficiency=0.4,
                memory_parallelism=8, activity_factor=0.7, noise=0.01)
    base.update(overrides)
    return ApplicationProfile(**base)


class TestValidation:
    def test_valid_profile_constructs(self):
        profile = _make()
        assert profile.name == "app"

    @pytest.mark.parametrize("field,value", [
        ("name", ""),
        ("base_rate", 0.0),
        ("base_rate", -1.0),
        ("serial_fraction", -0.1),
        ("serial_fraction", 1.0),
        ("scaling_peak", 0),
        ("contention_slope", -0.01),
        ("memory_intensity", -0.1),
        ("memory_intensity", 1.1),
        ("io_intensity", -0.1),
        ("ht_efficiency", -0.6),
        ("ht_efficiency", 1.1),
        ("memory_parallelism", 0.5),
        ("activity_factor", 0.0),
        ("activity_factor", 1.1),
        ("noise", -0.01),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError):
            _make(**{field: value})

    def test_rejects_mem_plus_io_above_one(self):
        with pytest.raises(ValueError):
            _make(memory_intensity=0.6, io_intensity=0.5)

    def test_compute_intensity_complements(self):
        profile = _make(memory_intensity=0.3, io_intensity=0.1)
        assert profile.compute_intensity == pytest.approx(0.6)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _make().base_rate = 5.0


class TestScaled:
    def test_lighter_work_means_higher_rate(self):
        heavy = _make(base_rate=30.0)
        light = heavy.scaled(2.0 / 3.0)
        assert light.base_rate == pytest.approx(45.0)

    def test_scaled_keeps_other_fields(self):
        heavy = _make()
        light = heavy.scaled(0.5, name="light")
        assert light.name == "light"
        assert light.serial_fraction == heavy.serial_fraction
        assert light.scaling_peak == heavy.scaling_peak

    def test_default_name_mentions_scale(self):
        light = _make(name="fluid").scaled(0.5)
        assert "fluid" in light.name and light.name != "fluid"

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            _make().scaled(0.0)
