"""Tests for repro.experiments.input_drift."""

import pytest

from repro.experiments.harness import default_context
from repro.experiments.input_drift import input_drift_experiment


@pytest.fixture(scope="module")
def cores_ctx():
    return default_context(space_kind="cores", seed=0)


class TestInputDrift:
    def test_structure(self, cores_ctx):
        result = input_drift_experiment(
            cores_ctx, benchmarks=("kmeans",), variants_per_app=2,
            sample_count=8)
        assert set(result.perf) == {"kmeans"}
        scores = result.perf["kmeans"]
        assert set(scores) == {"leo", "online", "offline"}
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_leo_adapts_to_variants(self, cores_ctx):
        result = input_drift_experiment(
            cores_ctx, benchmarks=("kmeans", "swish"), variants_per_app=2,
            sample_count=8)
        means = result.mean_perf()
        assert means["leo"] > 0.7
        assert means["leo"] >= means["offline"]

    def test_validation(self, cores_ctx):
        with pytest.raises(ValueError):
            input_drift_experiment(cores_ctx, variants_per_app=0)
