"""Tests for repro.service.protocol (frames, errors, codecs)."""

import json
import math

import numpy as np
import pytest

from repro.estimators.base import EstimationProblem
from repro.service.protocol import (
    PROTOCOL_VERSION,
    DeadlineExceeded,
    ProtocolError,
    RemoteError,
    Request,
    RequestRejected,
    Response,
    ServiceAddress,
    ServiceOverloaded,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
    exception_for,
    fingerprint,
    problem_from_payload,
    problem_to_payload,
)


class TestFrames:
    def test_roundtrip(self):
        frame = decode_frame(encode_frame({"a": 1, "b": [1.5, None]}))
        assert frame == {"a": 1, "b": [1.5, None]}

    def test_one_line_per_frame(self):
        data = encode_frame({"x": "multi\nline"})
        assert data.count(b"\n") == 1 and data.endswith(b"\n")

    def test_numpy_values_degrade(self):
        frame = decode_frame(encode_frame({"v": np.float64(2.5),
                                           "a": np.arange(3)}))
        assert frame == {"v": 2.5, "a": [0, 1, 2]}

    def test_malformed_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"{not json")

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(b"[1, 2]")


class TestRequest:
    def test_roundtrip(self):
        req = Request(op="estimate", payload={"k": 1}, request_id=7,
                      deadline_s=2.5)
        back = Request.from_wire(req.to_wire())
        assert back == req

    def test_default_deadline_omitted_from_wire(self):
        assert "deadline_s" not in Request(op="ping").to_wire()

    def test_future_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            Request.from_wire({"v": PROTOCOL_VERSION + 1, "op": "ping"})

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="op"):
            Request.from_wire({"v": 1, "payload": {}})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ProtocolError, match="payload"):
            Request.from_wire({"op": "ping", "payload": [1]})

    @pytest.mark.parametrize("deadline", [0, -1, "soon"])
    def test_bad_deadline_rejected(self, deadline):
        with pytest.raises(ProtocolError, match="deadline"):
            Request.from_wire({"op": "ping", "deadline_s": deadline})


class TestResponse:
    def test_success_roundtrip(self):
        resp = Response.success(3, {"x": 1})
        back = Response.from_wire(resp.to_wire())
        assert back.result() == {"x": 1}
        assert back.request_id == 3

    def test_failure_rehydrates_typed_exception(self):
        resp = Response.from_wire(Response.failure(
            4, ServiceOverloaded("full", details={"max_pending": 2})
        ).to_wire())
        with pytest.raises(ServiceOverloaded) as excinfo:
            resp.result()
        assert excinfo.value.details == {"max_pending": 2}

    def test_unexpected_exception_becomes_internal(self):
        resp = Response.failure(1, RuntimeError("boom"))
        assert resp.error["type"] == "internal"
        with pytest.raises(RemoteError, match="boom"):
            resp.result()

    def test_unknown_code_preserved(self):
        exc = exception_for("weird-new-code", "hi")
        assert isinstance(exc, RemoteError)
        assert exc.code == "weird-new-code"

    def test_known_codes_map_to_classes(self):
        assert isinstance(exception_for("overloaded", "m"),
                          ServiceOverloaded)
        assert isinstance(exception_for("deadline-exceeded", "m"),
                          DeadlineExceeded)
        assert isinstance(exception_for("bad-request", "m"),
                          RequestRejected)

    def test_frame_without_ok_rejected(self):
        with pytest.raises(ProtocolError):
            Response.from_wire({"id": 1})


class TestServiceAddress:
    def test_parse_tcp(self):
        addr = ServiceAddress.parse("127.0.0.1:8080")
        assert (addr.host, addr.port, addr.path) == ("127.0.0.1", 8080, None)
        assert str(addr) == "127.0.0.1:8080"

    def test_parse_unix(self):
        addr = ServiceAddress.parse("unix:/tmp/svc.sock")
        assert addr.path == "/tmp/svc.sock"
        assert str(addr) == "unix:/tmp/svc.sock"

    def test_parse_garbage_rejected(self):
        with pytest.raises(ValueError):
            ServiceAddress.parse("no-port-here")

    def test_needs_path_or_host_port(self):
        with pytest.raises(ValueError):
            ServiceAddress()
        with pytest.raises(ValueError):
            ServiceAddress(host="x", port=1, path="/also")


class TestArrayCodec:
    def test_floats_roundtrip_bit_exactly(self):
        rng = np.random.default_rng(3)
        values = np.concatenate([
            rng.random(100) * 1e6, rng.random(100) * 1e-6,
            np.array([1 / 3, math.pi, 0.1 + 0.2])])
        # Through the codec AND through an actual JSON wire hop.
        wire = json.loads(json.dumps(encode_array(values)))
        back = decode_array(wire)
        assert np.array_equal(back, values)  # exact, not allclose

    def test_problem_roundtrip(self):
        rng = np.random.default_rng(5)
        problem = EstimationProblem(
            features=rng.random((8, 3)),
            prior=rng.random((2, 8)) + 0.5,
            observed_indices=np.array([0, 3, 6]),
            observed_values=rng.random(3) + 0.5)
        wire = json.loads(json.dumps(problem_to_payload(problem)))
        back = problem_from_payload(wire)
        assert np.array_equal(back.features, problem.features)
        assert np.array_equal(back.prior, problem.prior)
        assert np.array_equal(back.observed_indices,
                              problem.observed_indices)
        assert np.array_equal(back.observed_values,
                              problem.observed_values)

    def test_problem_without_prior(self):
        problem = EstimationProblem(
            features=np.ones((4, 2)), prior=None,
            observed_indices=np.array([1]),
            observed_values=np.array([2.0]))
        back = problem_from_payload(problem_to_payload(problem))
        assert back.prior is None

    def test_missing_key_rejected(self):
        with pytest.raises(RequestRejected, match="features"):
            problem_from_payload({"observed_indices": [],
                                  "observed_values": []})


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = fingerprint("estimate", {"x": 1, "y": [1.0, 2.0]})
        b = fingerprint("estimate", {"y": [1.0, 2.0], "x": 1})
        assert a == b

    def test_distinguishes_ops_and_payloads(self):
        base = fingerprint("estimate", {"x": 1})
        assert fingerprint("optimize", {"x": 1}) != base
        assert fingerprint("estimate", {"x": 2}) != base
