"""Property-based tests (hypothesis) on the core data structures.

These pin down the invariants the system relies on:

* the accuracy metric is bounded, clipped, and exact on perfect input;
* the Pareto mask and the convex hull satisfy their definitions on any
  input cloud;
* the hull-walk LP solver always produces feasible schedules that match
  the from-scratch simplex on the same instance;
* the masked posterior's Woodbury form equals the literal Eq. (3).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.accuracy import accuracy
from repro.core.linalg import MaskedPosterior, dense_posterior
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.pareto import TradeoffFrontier, pareto_optimal_mask

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False,
                     allow_infinity=False)


def _vec(length, elements):
    return arrays(np.float64, length, elements=elements)


class TestAccuracyProperties:
    @given(st.integers(2, 40).flatmap(
        lambda n: st.tuples(_vec(n, finite), _vec(n, finite))))
    def test_bounded_in_unit_interval(self, pair):
        y_hat, y = pair
        score = accuracy(y_hat, y)
        assert 0.0 <= score <= 1.0

    @given(st.integers(1, 40).flatmap(lambda n: _vec(n, finite)))
    def test_perfect_estimate_scores_one(self, y):
        assert accuracy(y, y) == 1.0

    @given(st.integers(2, 40).flatmap(
        lambda n: st.tuples(_vec(n, positive), _vec(n, positive))),
        st.floats(min_value=0.1, max_value=100.0))
    def test_joint_scale_invariance(self, pair, scale):
        y_hat, y = pair
        assert accuracy(y_hat, y) == pytest.approx(
            accuracy(scale * y_hat, scale * y), abs=1e-9)


class TestParetoProperties:
    @given(st.integers(1, 60).flatmap(
        lambda n: st.tuples(_vec(n, positive), _vec(n, positive))))
    def test_mask_matches_definition(self, cloud):
        rates, powers = cloud
        mask = pareto_optimal_mask(rates, powers)
        assert mask.any()  # something is always undominated
        n = rates.size
        for i in range(n):
            dominated = any(
                rates[j] >= rates[i] and powers[j] <= powers[i]
                and (rates[j] > rates[i] or powers[j] < powers[i])
                for j in range(n))
            assert mask[i] == (not dominated)

    @given(st.integers(1, 60).flatmap(
        lambda n: st.tuples(_vec(n, positive), _vec(n, positive))),
        st.floats(min_value=0.0, max_value=100.0))
    def test_hull_dominates_no_point(self, cloud, idle_power):
        rates, powers = cloud
        frontier = TradeoffFrontier(rates, powers, idle_power=idle_power)
        for r, p in zip(rates, powers):
            assert frontier.power_at(r) <= p + 1e-6 * max(p, 1.0)

    @given(st.integers(2, 60).flatmap(
        lambda n: st.tuples(_vec(n, positive), _vec(n, positive))))
    def test_hull_power_monotone_in_rate(self, cloud):
        """With an idle anchor below every point, hull power rises."""
        rates, powers = cloud
        frontier = TradeoffFrontier(rates, powers,
                                    idle_power=float(powers.min()) * 0.5)
        grid = np.linspace(0.0, frontier.max_rate, 17)
        values = [frontier.power_at(g) for g in grid]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


class TestLPProperties:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(2, 25), st.integers(0, 10_000),
           st.floats(min_value=0.05, max_value=1.0))
    def test_hull_solution_feasible_and_matches_simplex(
            self, n, seed, utilization):
        rng = np.random.default_rng(seed)
        rates = rng.uniform(1.0, 100.0, n)
        powers = rng.uniform(60.0, 400.0, n)
        idle = rng.uniform(10.0, 59.0)
        minimizer = EnergyMinimizer(rates, powers, idle)
        deadline = 10.0
        work = utilization * minimizer.max_rate * deadline

        schedule = minimizer.solve(work, deadline)
        assert schedule.work(rates) == pytest.approx(work, rel=1e-6,
                                                     abs=1e-6)
        assert schedule.total_time <= deadline * (1 + 1e-9)
        assert len(schedule) <= 2

        hull_energy = minimizer.min_energy(work, deadline)
        _, simplex = minimizer.solve_simplex(work, deadline)
        assert hull_energy == pytest.approx(simplex.objective, rel=1e-6,
                                            abs=1e-6)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 20), st.integers(0, 10_000))
    def test_race_to_idle_never_beats_optimal(self, n, seed):
        rng = np.random.default_rng(seed)
        rates = rng.uniform(1.0, 100.0, n)
        powers = rng.uniform(60.0, 400.0, n)
        minimizer = EnergyMinimizer(rates, powers, idle_power=50.0)
        deadline = 10.0
        race_index = int(np.argmax(rates))
        work = 0.5 * rates[race_index] * deadline
        race = minimizer.race_to_idle(work, deadline, race_index)
        race_energy = (race.energy(powers, 50.0))
        assert race_energy >= minimizer.min_energy(work, deadline) - 1e-6


class TestPosteriorProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(2, 12), st.integers(0, 10_000),
           st.floats(min_value=1e-3, max_value=10.0))
    def test_woodbury_equals_dense(self, n, seed, noise_var):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        sigma = a @ a.T + n * np.eye(n)
        mu = rng.standard_normal(n)
        k = int(rng.integers(1, n + 1))
        obs_idx = np.sort(rng.choice(n, size=k, replace=False))
        y_obs = rng.standard_normal(k)

        post = MaskedPosterior(sigma, noise_var, obs_idx)
        z_dense, cov_dense = dense_posterior(sigma, noise_var, obs_idx,
                                             mu, y_obs)
        np.testing.assert_allclose(post.mean(mu, y_obs), z_dense,
                                   rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(post.covariance, cov_dense,
                                   rtol=1e-5, atol=1e-7)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(2, 12), st.integers(0, 10_000))
    def test_posterior_variance_never_exceeds_prior(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        sigma = a @ a.T + n * np.eye(n)
        k = int(rng.integers(1, n + 1))
        obs_idx = np.sort(rng.choice(n, size=k, replace=False))
        post = MaskedPosterior(sigma, 0.5, obs_idx)
        assert (np.diag(post.covariance) <= np.diag(sigma) + 1e-9).all()
