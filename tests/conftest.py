"""Shared fixtures for the test suite.

Most tests run on the 32-configuration cores-only space: it exercises
every code path (the hierarchy, the frontier, the runtime) at a fraction
of the 1024-configuration cost.  The full paper space is used where the
behaviour under test depends on it (flattening order, online regression's
15-coefficient threshold, integration tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.suite import get_benchmark, paper_suite
from repro.workloads.traces import OfflineDataset


@pytest.fixture(scope="session")
def cores_space() -> ConfigurationSpace:
    return ConfigurationSpace.cores_only()


@pytest.fixture(scope="session")
def paper_space() -> ConfigurationSpace:
    return ConfigurationSpace.paper_space()


@pytest.fixture()
def machine() -> Machine:
    return Machine(PAPER_TOPOLOGY, seed=1234)


@pytest.fixture(scope="session")
def suite():
    return paper_suite()


@pytest.fixture(scope="session")
def kmeans():
    return get_benchmark("kmeans")


@pytest.fixture(scope="session")
def swish():
    return get_benchmark("swish")


@pytest.fixture(scope="session")
def cores_dataset(cores_space, suite) -> OfflineDataset:
    """Noisy offline tables for the full suite on the cores-only space."""
    machine = Machine(PAPER_TOPOLOGY, seed=99)
    return OfflineDataset.collect(machine, suite, cores_space, noisy=True)


@pytest.fixture(scope="session")
def cores_truth(cores_space, suite) -> OfflineDataset:
    """Noise-free ground-truth tables on the cores-only space."""
    machine = Machine(PAPER_TOPOLOGY, seed=98)
    return OfflineDataset.collect(machine, suite, cores_space, noisy=False)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
