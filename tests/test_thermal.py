"""Tests for repro.platform.thermal and its Machine integration."""

import numpy as np
import pytest

from repro.platform.machine import Machine
from repro.platform.thermal import ThermalModel
from repro.platform.topology import PAPER_TOPOLOGY
from repro.runtime.phase_detector import PhaseDetector
from repro.workloads.suite import get_benchmark


class TestThermalModel:
    def test_heats_toward_steady_state(self):
        model = ThermalModel()
        for _ in range(50):
            model.advance(chip_power=200.0, duration=5.0)
        steady = model.ambient_celsius + 200.0 * model.resistance
        # Throttling caps below raw steady state; without tripping the
        # limit it approaches P*R above ambient.
        assert model.temperature <= steady + 1e-6
        assert model.temperature > model.ambient_celsius

    def test_cools_to_ambient_when_idle(self):
        model = ThermalModel()
        model.advance(chip_power=200.0, duration=60.0)
        for _ in range(30):
            model.advance(chip_power=0.0, duration=30.0)
        assert model.temperature == pytest.approx(model.ambient_celsius,
                                                  abs=0.5)

    def test_throttles_above_limit_with_hysteresis(self):
        model = ThermalModel(throttle_celsius=60.0, resume_celsius=50.0,
                             resistance=0.5)
        factors = [model.advance(chip_power=150.0, duration=10.0)
                   for _ in range(20)]
        assert factors[0] == 1.0          # starts cool
        assert min(factors) < 1.0          # eventually throttles
        # Once throttled, stays throttled until cooled below resume.
        model.advance(chip_power=0.0, duration=200.0)
        assert model.advance(chip_power=10.0, duration=1.0) == 1.0

    def test_reset(self):
        model = ThermalModel()
        model.advance(chip_power=300.0, duration=100.0)
        model.reset()
        assert model.temperature == model.ambient_celsius
        assert not model.throttled

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalModel(resistance=0.0)
        with pytest.raises(ValueError):
            ThermalModel(time_constant=0.0)
        with pytest.raises(ValueError):
            ThermalModel(throttle_celsius=80.0, resume_celsius=90.0)
        with pytest.raises(ValueError):
            ThermalModel(throttle_factor=1.0)
        model = ThermalModel()
        with pytest.raises(ValueError):
            model.advance(-1.0, 1.0)
        with pytest.raises(ValueError):
            model.advance(1.0, 0.0)


class TestMachineIntegration:
    def _hot_machine(self, seed=0):
        thermal = ThermalModel(throttle_celsius=70.0, resume_celsius=60.0,
                               resistance=0.35, time_constant=10.0)
        return Machine(PAPER_TOPOLOGY, seed=seed, thermal=thermal)

    def test_disabled_by_default(self, cores_space):
        machine = Machine(seed=1)
        assert machine.thermal is None

    def test_sustained_load_throttles_rate(self, paper_space):
        machine = self._hot_machine()
        swaptions = get_benchmark("swaptions")
        machine.load(swaptions)
        machine.apply(paper_space[-1])  # all resources, turbo
        first = machine.run_for(5.0).rate
        for _ in range(30):
            last = machine.run_for(5.0).rate
        assert last < 0.9 * first
        assert machine.thermal.throttled

    def test_throttling_also_cuts_power(self, paper_space):
        machine = self._hot_machine(seed=2)
        swaptions = get_benchmark("swaptions")
        machine.load(swaptions)
        machine.apply(paper_space[-1])
        first = machine.run_for(5.0).system_power
        for _ in range(30):
            last = machine.run_for(5.0).system_power
        assert last < first

    def test_idle_cools_the_package(self, paper_space):
        machine = self._hot_machine(seed=3)
        machine.load(get_benchmark("swaptions"))
        machine.apply(paper_space[-1])
        for _ in range(30):
            machine.run_for(5.0)
        hot = machine.thermal.temperature
        machine.idle_for(120.0)
        assert machine.thermal.temperature < hot

    def test_thermal_event_looks_like_phase_change(self, paper_space):
        """The runtime's detector flags the throttle onset."""
        machine = self._hot_machine(seed=4)
        swaptions = get_benchmark("swaptions")
        machine.load(swaptions)
        config = paper_space[-1]
        machine.apply(config)
        expected = machine.true_rate(swaptions, config)
        detector = PhaseDetector(threshold=0.15, patience=2)
        fired = False
        for _ in range(60):
            measurement = machine.run_for(5.0)
            if detector.update(expected, measurement.rate):
                fired = True
                break
        assert fired
