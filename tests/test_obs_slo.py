"""Tests for the SLO layer: objectives, burn rates, offline rebuild.

Streams carry explicit ``now`` timestamps throughout so every assertion
is deterministic — the wall clock never positions a point.
"""

import math

import pytest

from repro.obs import (
    DEFAULT_OBJECTIVES,
    NULL_SLO,
    MetricsRegistry,
    NullSloTracker,
    Observability,
    SloObjective,
    SloTracker,
    get_slo,
    labeled,
)


def _tracker(*objectives):
    return SloTracker(objectives=objectives)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SloObjective(name="x", kind="throughput", target=1.0)

    def test_hit_rate_target_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="hit-rate"):
            SloObjective(name="x", kind="deadline-hit-rate", target=1.5)

    def test_latency_target_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            SloObjective(name="x", kind="latency", target=0.0)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError, match="percentile"):
            SloObjective(name="x", kind="latency", target=1.0,
                         percentile=0.0)

    def test_defaults_pass_their_own_validation(self):
        assert len(DEFAULT_OBJECTIVES) == 3


class TestLatencyObjective:
    OBJ = SloObjective(name="lat-p95", kind="latency", target=1.0,
                       percentile=95.0)

    def test_vacuously_met_with_no_data(self):
        status, = _tracker(self.OBJ).status()
        assert status.met
        assert status.samples == 0
        assert math.isnan(status.observed)
        assert status.burn_rate == 0.0
        assert status.budget_remaining == 1.0

    def test_met_when_percentile_inside_target(self):
        tracker = _tracker(self.OBJ)
        for i in range(100):
            tracker.record_latency(0.1, now=float(i))
        status, = tracker.status()
        assert status.met
        assert status.samples == 100
        assert status.observed == pytest.approx(0.1)
        assert status.burn_rate == 0.0

    def test_burn_rate_is_bad_fraction_over_allowed(self):
        # 2 bad out of 20 = 10% bad against a 5% allowance: burning at
        # 2x the sustainable rate, and the total budget is gone.
        tracker = _tracker(self.OBJ)
        for i in range(18):
            tracker.record_latency(0.1, now=float(i))
        for i in range(18, 20):
            tracker.record_latency(5.0, now=float(i))
        status, = tracker.status()
        assert status.burn_rate == pytest.approx(2.0)
        assert status.burn_rate_total == pytest.approx(2.0)
        assert status.budget_remaining == 0.0
        assert not status.met

    def test_windowed_objective_forgets_old_badness(self):
        windowed = SloObjective(name="lat-p95", kind="latency",
                                target=1.0, percentile=95.0,
                                window_s=10.0)
        tracker = _tracker(windowed)
        for i in range(20):  # ancient bad points, t = 0..19
            tracker.record_latency(5.0, now=float(i))
        for i in range(100, 200):  # a long healthy stretch
            tracker.record_latency(0.1, now=float(i))
        status, = tracker.status()
        assert status.met, "window should only see the healthy tail"
        assert status.burn_rate == 0.0
        assert status.burn_rate_total > 0.0  # history remembers


class TestDeadlineObjective:
    OBJ = SloObjective(name="deadlines", kind="deadline-hit-rate",
                       target=0.95)

    def test_hit_rate_at_target_is_met(self):
        tracker = _tracker(self.OBJ)
        for i in range(19):
            tracker.record_deadline(True, now=float(i))
        tracker.record_deadline(False, now=19.0)
        status, = tracker.status()
        assert status.observed == pytest.approx(0.95)
        assert status.met
        assert status.burn_rate == pytest.approx(1.0)

    def test_hit_rate_below_target_misses(self):
        tracker = _tracker(self.OBJ)
        for i in range(18):
            tracker.record_deadline(True, now=float(i))
        for i in range(18, 20):
            tracker.record_deadline(False, now=float(i))
        status, = tracker.status()
        assert status.observed == pytest.approx(0.9)
        assert not status.met
        assert status.burn_rate == pytest.approx(2.0)


class TestEnergyOverheadObjective:
    OBJ = SloObjective(name="overhead", kind="energy-overhead",
                       target=0.10)

    def test_mean_ratio_evaluated(self):
        tracker = _tracker(self.OBJ)
        for i, ratio in enumerate((0.05, 0.15)):
            tracker.record_energy_overhead(ratio, now=float(i))
        status, = tracker.status()
        assert status.observed == pytest.approx(0.10)
        assert status.met
        assert status.burn_rate == pytest.approx(1.0)

    def test_over_budget(self):
        tracker = _tracker(self.OBJ)
        tracker.record_energy_overhead(0.30, now=0.0)
        status, = tracker.status()
        assert not status.met
        assert status.burn_rate == pytest.approx(3.0)


class TestEventsAndReport:
    def test_events_count_by_kind(self):
        tracker = SloTracker()
        tracker.record_event("breaker-open")
        tracker.record_event("ladder-demotion")
        tracker.record_event("ladder-demotion")
        assert tracker.events == {"breaker-open": 1,
                                  "ladder-demotion": 2}

    def test_report_shape(self):
        tracker = SloTracker()
        tracker.record_latency(0.2, now=0.0)
        tracker.record_event("cap-violation")
        report = tracker.report()
        assert set(report) == {"objectives", "events", "streams"}
        assert [o["name"] for o in report["objectives"]] == \
            [o.name for o in DEFAULT_OBJECTIVES]
        assert report["events"] == {"cap-violation": 1}
        assert report["streams"]["latency"] == {"points": 1, "last": 0.2}

    def test_status_order_is_configured_order(self):
        objs = (SloObjective(name="b", kind="latency", target=1.0),
                SloObjective(name="a", kind="latency", target=2.0))
        assert [s.objective.name for s in _tracker(*objs).status()] \
            == ["b", "a"]

    def test_named_streams_via_observe(self):
        tracker = SloTracker()
        tracker.observe("power_watts", 42.0, now=1.0)
        assert tracker.stream("power_watts").last_value == 42.0


class TestFromMetrics:
    def _dump(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 3.0):
            registry.observe("service_request_seconds", value)
        registry.inc(labeled("cluster_deadline_met_total",
                             tenant="kmeans"), 3)
        registry.inc(labeled("cluster_deadline_missed_total",
                             tenant="blackscholes"), 1)
        registry.inc("fault_injected_total", 5)
        registry.inc("fault_power_spike_total", 2)
        registry.inc("resilience_demotions_total", 1)
        registry.set_gauge("slo_energy_overhead", 0.04)
        return registry.dump()

    def test_streams_and_events_rebuilt(self):
        tracker = SloTracker.from_metrics(self._dump())
        assert len(tracker.stream(SloTracker.LATENCY)) == 3
        assert tracker.stream(SloTracker.DEADLINE).values() == \
            [1.0, 1.0, 1.0, 0.0]
        assert tracker.stream(SloTracker.ENERGY_OVERHEAD).last_value \
            == pytest.approx(0.04)
        # fault_injected_total is the per-kind counters' sum, not a kind.
        assert tracker.events == {"power_spike": 2, "ladder-demotion": 1}

    def test_objectives_evaluate_over_rebuilt_streams(self):
        statuses = {s.objective.name: s
                    for s in SloTracker.from_metrics(self._dump()).status()}
        assert statuses["latency-p95"].samples == 3
        assert statuses["deadline-hit-rate"].observed == pytest.approx(0.75)
        assert statuses["energy-overhead"].met

    def test_tolerates_summary_shaped_histograms(self):
        # A snapshot()-shaped dump carries summary dicts, not raw
        # values; reconstruction must skip them rather than crash.
        dump = {"histograms": {"service_request_seconds":
                               {"count": 3, "p50": 0.2}},
                "counters": {}, "gauges": {}}
        tracker = SloTracker.from_metrics(dump)
        assert len(tracker.stream(SloTracker.LATENCY)) == 0

    def test_empty_dump(self):
        tracker = SloTracker.from_metrics({})
        assert all(s.met for s in tracker.status())


class TestNullTracker:
    def test_ambient_default_is_null(self):
        assert get_slo() is NULL_SLO
        assert not NULL_SLO.is_recording

    def test_recording_bundle_has_live_tracker(self):
        assert Observability.recording().slo.is_recording

    def test_null_records_nothing(self):
        null = NullSloTracker()
        null.record_latency(1.0)
        null.record_deadline(False)
        null.record_energy_overhead(9.0)
        null.record_event("breaker-open")
        null.observe("power", 1.0)
        assert null.status() == []
        assert null.report() == {"objectives": [], "events": {},
                                 "streams": {}}


class TestDayScaleWindows:
    """Burn-rate windows positioned by the ambient virtual clock.

    The soak harness evaluates day-long SLO windows over multi-day
    simulated horizons; the tracker must window on the injected clock's
    timeline, not the wall's, or every point would land in the same
    instant and the window would be meaningless.
    """

    DAY = 86400.0

    def test_window_slides_over_simulated_days(self):
        from repro.clock import VirtualClock, use

        objective = SloObjective(name="daily", kind="deadline-hit-rate",
                                 target=0.9, window_s=self.DAY)
        clock = VirtualClock()
        with use(clock):
            tracker = SloTracker(objectives=(objective,))
            # Day 1: a bad day — half the deadlines missed.
            for i in range(10):
                tracker.record_deadline(met=(i % 2 == 0))
                clock.advance(3600.0)
            status = tracker.status()[0]
            assert not status.met
            # Fast-forward through a quiet day, then a clean day 3.
            clock.advance(self.DAY)
            for _ in range(10):
                tracker.record_deadline(met=True)
                clock.advance(3600.0)
        status = tracker.status()[0]
        assert status.met  # the bad day has left the window
        assert status.observed == 1.0

    def test_full_history_objective_still_sees_the_bad_day(self):
        from repro.clock import VirtualClock, use

        windowed = SloObjective(name="daily", kind="deadline-hit-rate",
                                target=0.9, window_s=self.DAY)
        total = SloObjective(name="total", kind="deadline-hit-rate",
                             target=0.9)
        clock = VirtualClock()
        with use(clock):
            tracker = SloTracker(objectives=(windowed, total))
            tracker.record_deadline(met=False)
            clock.advance(2 * self.DAY)
            for _ in range(5):
                tracker.record_deadline(met=True)
                clock.advance(60.0)
        by_name = {s.objective.name: s for s in tracker.status()}
        assert by_name["daily"].met          # miss aged out of the day
        assert not by_name["total"].met      # 5/6 < 0.9 over everything

    def test_explicit_clock_callable_beats_ambient(self):
        from repro.clock import VirtualClock, use

        objective = SloObjective(name="daily", kind="deadline-hit-rate",
                                 target=0.9, window_s=self.DAY)
        explicit = VirtualClock()
        tracker = SloTracker(objectives=(objective,), clock=explicit.now)
        with use(VirtualClock()):
            tracker.record_deadline(met=False)
            explicit.advance(2 * self.DAY)
            tracker.record_deadline(met=True)
        series = tracker.stream(tracker.DEADLINE)
        assert series.values(None) == [0.0, 1.0]
        # Windowed view keyed to the explicit clock: only the second
        # point is inside the last day.
        assert series.values(self.DAY, now=explicit.now()) == [1.0]
