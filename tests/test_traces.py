"""Tests for repro.workloads.traces."""

import numpy as np
import pytest

from repro.platform.machine import Machine
from repro.workloads.suite import paper_suite
from repro.workloads.traces import OfflineDataset, cached_dataset


class TestConstructionValidation:
    def test_shape_mismatch_rejected(self, cores_space):
        with pytest.raises(ValueError):
            OfflineDataset(cores_space, ["a"], np.ones((2, 32)),
                           np.ones((2, 32)))

    def test_power_shape_must_match(self, cores_space):
        with pytest.raises(ValueError):
            OfflineDataset(cores_space, ["a"], np.ones((1, 32)),
                           np.ones((1, 31)))

    def test_duplicate_names_rejected(self, cores_space):
        with pytest.raises(ValueError):
            OfflineDataset(cores_space, ["a", "a"], np.ones((2, 32)),
                           np.ones((2, 32)))

    def test_nonpositive_entries_rejected(self, cores_space):
        rates = np.ones((1, 32))
        rates[0, 3] = 0.0
        with pytest.raises(ValueError):
            OfflineDataset(cores_space, ["a"], rates, np.ones((1, 32)))


class TestCollect:
    def test_collect_dimensions(self, cores_dataset, cores_space, suite):
        assert len(cores_dataset) == 25
        assert cores_dataset.rates.shape == (25, len(cores_space))

    def test_row_lookup(self, cores_dataset):
        rates, powers = cores_dataset.row("kmeans")
        assert rates.shape == powers.shape == (32,)

    def test_unknown_row_raises(self, cores_dataset):
        with pytest.raises(KeyError):
            cores_dataset.row("nope")

    def test_noise_free_matches_machine_truth(self, cores_truth,
                                              cores_space, kmeans):
        machine = Machine()
        rates, _ = cores_truth.row("kmeans")
        for i, config in enumerate(cores_space):
            assert rates[i] == machine.true_rate(kmeans, config)


class TestLeaveOneOut:
    def test_excludes_target(self, cores_dataset):
        view = cores_dataset.leave_one_out("kmeans")
        assert "kmeans" not in view.prior_names
        assert len(view.prior_names) == 24
        assert view.prior_rates.shape == (24, 32)

    def test_truth_matches_row(self, cores_dataset):
        view = cores_dataset.leave_one_out("swish")
        rates, powers = cores_dataset.row("swish")
        np.testing.assert_array_equal(view.true_rates, rates)
        np.testing.assert_array_equal(view.true_powers, powers)

    def test_truth_is_a_copy(self, cores_dataset):
        view = cores_dataset.leave_one_out("swish")
        view.true_rates[0] = 1e9
        assert cores_dataset.row("swish")[0][0] != 1e9


class TestPersistence:
    def test_save_load_roundtrip(self, cores_dataset, cores_space, tmp_path):
        path = str(tmp_path / "traces.npz")
        cores_dataset.save(path)
        loaded = OfflineDataset.load(path, cores_space)
        assert loaded.names == cores_dataset.names
        np.testing.assert_allclose(loaded.rates, cores_dataset.rates)
        np.testing.assert_allclose(loaded.powers, cores_dataset.powers)


class TestCache:
    def test_cached_dataset_reuses_instance(self, cores_space):
        suite = paper_suite()[:3]
        a = cached_dataset(5, suite, cores_space)
        b = cached_dataset(5, suite, cores_space)
        assert a is b

    def test_different_seed_rebuilds(self, cores_space):
        suite = paper_suite()[:3]
        a = cached_dataset(5, suite, cores_space)
        b = cached_dataset(6, suite, cores_space)
        assert a is not b
