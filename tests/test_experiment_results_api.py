"""Unit tests for experiment result dataclasses and their arithmetic."""

import numpy as np
import pytest

from repro.experiments.energy import (
    EnergyCurve,
    overall_normalized,
    summarize_normalized,
)
from repro.experiments.frontier import FrontierComparison


def _curve(benchmark="app", energy_scale=1.0, fractions=(1.0, 1.0)):
    approaches = ("leo", "online", "offline", "race-to-idle")
    return EnergyCurve(
        benchmark=benchmark,
        utilizations=np.array([0.5, 1.0]),
        energy={**{a: [100.0 * energy_scale, 200.0 * energy_scale]
                   for a in approaches},
                "optimal": [100.0, 200.0]},
        met={a: [True, True] for a in approaches},
        work_fraction={a: list(fractions) for a in approaches},
    )


class TestEnergyCurve:
    def test_normalized_mean_exact(self):
        curve = _curve(energy_scale=1.1)
        assert curve.normalized_mean("leo") == pytest.approx(1.1)

    def test_work_shortfall_penalized(self):
        """Half the work done doubles the effective energy ratio."""
        curve = _curve(energy_scale=1.0, fractions=(0.5, 0.5))
        assert curve.normalized_mean("leo") == pytest.approx(2.0)

    def test_overwork_not_rewarded(self):
        """work_fraction is clipped at 1: overshooting earns no credit."""
        curve = _curve(energy_scale=1.0, fractions=(1.5, 1.5))
        assert curve.normalized_mean("leo") == pytest.approx(1.0)

    def test_summaries(self):
        curves = [_curve("a", 1.2), _curve("b", 1.4)]
        table = summarize_normalized(curves)
        assert table["a"]["leo"] == pytest.approx(1.2)
        overall = overall_normalized(curves)
        assert overall["leo"] == pytest.approx(1.3)


class TestFrontierComparison:
    def test_hull_gap_zero_for_identical(self):
        hull = np.array([[0.0, 80.0], [1.0, 100.0], [2.0, 150.0]])
        comparison = FrontierComparison(
            benchmark="x", hulls={"true": hull, "leo": hull.copy()})
        assert comparison.hull_area_error("leo") == pytest.approx(0.0)

    def test_constant_offset_measured_exactly(self):
        hull = np.array([[0.0, 80.0], [1.0, 100.0], [2.0, 150.0]])
        shifted = hull.copy()
        shifted[:, 1] += 5.0
        comparison = FrontierComparison(
            benchmark="x", hulls={"true": hull, "leo": shifted})
        assert comparison.hull_area_error("leo") == pytest.approx(5.0)

    def test_non_overlapping_hulls_raise(self):
        low = np.array([[0.0, 80.0], [1.0, 100.0]])
        high = np.array([[2.0, 80.0], [3.0, 100.0]])
        comparison = FrontierComparison(
            benchmark="x", hulls={"true": low, "leo": high})
        with pytest.raises(ValueError, match="overlap"):
            comparison.hull_area_error("leo")
