"""Schema guards for the benchmark result artifacts.

``benchmarks/results/*.json`` is the interface between the benchmark
suite and EXPERIMENTS.md (and any downstream analysis).  When the
results directory exists — i.e. after a benchmark pass — these tests
pin the schema every renderer section relies on, so a refactor cannot
silently produce unrenderable artifacts.  They skip cleanly on a fresh
checkout.
"""

import json
import pathlib

import pytest

RESULTS = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"

pytestmark = pytest.mark.skipif(
    not RESULTS.is_dir() or not any(RESULTS.glob("*.json")),
    reason="no benchmark results present (run pytest benchmarks/ first)",
)


def _load(name):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        pytest.skip(f"{name} not in this results set")
    return json.loads(path.read_text())


APPROACHES = ("leo", "online", "offline")


class TestAccuracyFigures:
    @pytest.mark.parametrize("name", ["fig05_perf_accuracy",
                                      "fig06_power_accuracy"])
    def test_schema(self, name):
        data = _load(name)
        assert set(data) >= {"per_benchmark", "mean", "paper"}
        for approach in APPROACHES:
            assert 0.0 <= data["mean"][approach] <= 1.0
        assert len(data["per_benchmark"]) == 25

    def test_paper_shape_held(self):
        perf = _load("fig05_perf_accuracy")["mean"]
        power = _load("fig06_power_accuracy")["mean"]
        assert perf["leo"] > perf["online"] > perf["offline"]
        assert power["leo"] > max(power["online"], power["offline"])


class TestEnergyFigures:
    def test_fig11_schema_and_shape(self):
        data = _load("fig11_energy_summary")
        overall = data["overall"]
        assert set(overall) == {"leo", "online", "offline",
                                "race-to-idle"}
        assert overall["leo"] == min(overall.values())
        assert overall["race-to-idle"] == max(overall.values())
        assert len(data["per_benchmark"]) == 25

    def test_fig10_curves_complete(self):
        data = _load("fig10_energy_curves")
        assert set(data) == {"kmeans", "swish", "x264"}
        for bench in data.values():
            lengths = {len(v) for v in bench["energy"].values()}
            assert len(lengths) == 1  # all series aligned


class TestSensitivityAndPhases:
    def test_fig12_cliff(self):
        data = _load("fig12_sensitivity")
        for size, online in zip(data["sizes"], data["perf"]["online"]):
            if size < 15:
                assert online == 0.0
            else:
                assert online > 0.0
        assert data["perf"]["leo"][0] == pytest.approx(
            data["offline_perf"])

    def test_table1_rows(self):
        data = _load("fig13_table1_phases")
        for approach in APPROACHES:
            rel = data["relative"][approach]
            assert len(rel) == 3
            assert all(r > 0.9 for r in rel)
        overall = {a: data["relative"][a][2] for a in APPROACHES}
        assert overall["leo"] == min(overall.values())


class TestEveryResultRenderable:
    def test_render_covers_all_files(self):
        from repro.reporting.experiment_report import (_SECTIONS,
                                                       render_markdown)
        known = {name for name, _ in _SECTIONS}
        present = {p.stem for p in RESULTS.glob("*.json")}
        # Every present artifact has a dedicated renderer section.
        assert present <= known, present - known
        text = render_markdown(RESULTS)
        for stem in present:
            title = dict(_SECTIONS)[stem]
            assert title in text
