"""Tests for repro.workloads.generator."""

import pytest

from repro.workloads.generator import ProfileGenerator


class TestDeterminism:
    def test_same_seed_same_profiles(self):
        a = ProfileGenerator(seed=42).sample_suite(10)
        b = ProfileGenerator(seed=42).sample_suite(10)
        assert [p.base_rate for p in a] == [p.base_rate for p in b]
        assert [p.scaling_peak for p in a] == [p.scaling_peak for p in b]

    def test_different_seeds_differ(self):
        a = ProfileGenerator(seed=1).sample()
        b = ProfileGenerator(seed=2).sample()
        assert a.base_rate != b.base_rate


class TestValidityAndDiversity:
    def test_all_samples_validate(self):
        # ApplicationProfile.__post_init__ would raise on any invalid draw.
        generator = ProfileGenerator(seed=7)
        profiles = generator.sample_suite(200)
        assert len(profiles) == 200

    def test_names_are_sequential(self):
        profiles = ProfileGenerator(seed=0).sample_suite(3, prefix="load")
        assert [p.name for p in profiles] == [
            "load-001", "load-002", "load-003"]

    def test_custom_name(self):
        assert ProfileGenerator(seed=0).sample(name="mine").name == "mine"

    def test_peaks_cover_range(self):
        profiles = ProfileGenerator(seed=3).sample_suite(120)
        peaks = {p.scaling_peak for p in profiles}
        assert any(p <= 8 for p in peaks)
        assert any(p >= 28 for p in peaks)

    def test_some_io_bound_apps_appear(self):
        profiles = ProfileGenerator(seed=11).sample_suite(120)
        assert any(p.io_intensity > 0.1 for p in profiles)

    def test_rate_range_spans_suite(self):
        profiles = ProfileGenerator(seed=5).sample_suite(200)
        rates = [p.base_rate for p in profiles]
        assert min(rates) < 5.0
        assert max(rates) > 500.0

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            ProfileGenerator(seed=0).sample_suite(0)
