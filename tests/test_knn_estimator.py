"""Tests for repro.estimators.knn."""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.knn import KNNEstimator


def _problem(prior, indices, values, n=None):
    n = prior.shape[1] if n is None else n
    return EstimationProblem(
        features=np.ones((n, 1)), prior=prior,
        observed_indices=np.asarray(indices),
        observed_values=np.asarray(values, dtype=float))


class TestBasics:
    def test_k1_copies_nearest(self):
        prior = np.array([[1.0, 2.0, 3.0],
                          [10.0, 20.0, 30.0]])
        problem = _problem(prior, [0, 2], [9.5, 29.0])
        estimate = KNNEstimator(k=1).estimate(problem)
        np.testing.assert_allclose(estimate, prior[1])

    def test_blend_between_neighbours(self):
        prior = np.array([[1.0, 1.0], [3.0, 3.0], [100.0, 100.0]])
        problem = _problem(prior, [0], [2.0])
        estimate = KNNEstimator(k=2).estimate(problem)
        # Equidistant from rows 0 and 1: the blend sits between them.
        assert 1.0 < estimate[0] < 3.0

    def test_exact_match_dominates(self):
        prior = np.array([[5.0, 6.0], [50.0, 60.0]])
        problem = _problem(prior, [0, 1], [5.0, 6.0])
        estimate = KNNEstimator(k=2).estimate(problem)
        np.testing.assert_allclose(estimate, prior[0], rtol=1e-6)

    def test_k_clamped_to_library_size(self):
        prior = np.array([[1.0, 2.0]])
        problem = _problem(prior, [0], [1.0])
        estimate = KNNEstimator(k=10).estimate(problem)
        np.testing.assert_allclose(estimate, prior[0])

    def test_requires_prior(self):
        problem = EstimationProblem(
            features=np.ones((2, 1)), prior=None,
            observed_indices=np.array([0]),
            observed_values=np.array([1.0]))
        with pytest.raises(ValueError):
            KNNEstimator().estimate(problem)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNEstimator(k=0)
        with pytest.raises(ValueError):
            KNNEstimator(epsilon=0.0)


class TestOnSuite:
    def test_finds_kmeans_like_shape(self, cores_dataset, cores_truth,
                                     cores_space):
        """kmeansnf is in the library; knn should exploit it for kmeans."""
        view = cores_dataset.leave_one_out("kmeans")
        truth = cores_truth.leave_one_out("kmeans").true_rates
        indices = np.array([4, 9, 14, 19, 24, 29])
        problem = EstimationProblem(
            features=cores_space.feature_matrix(), prior=view.prior_rates,
            observed_indices=indices, observed_values=truth[indices])
        normalized, scale = normalize_problem(problem)
        estimate = KNNEstimator(k=1).estimate(normalized) * scale
        # The nearest neighbour gives the right shape family: early peak.
        assert np.argmax(estimate) < 12

    def test_between_offline_and_leo(self, cores_dataset, cores_truth,
                                     cores_space):
        from repro.estimators.leo import LEOEstimator
        from repro.estimators.offline import OfflineEstimator
        view = cores_dataset.leave_one_out("kmeans")
        truth = cores_truth.leave_one_out("kmeans").true_rates
        indices = np.array([4, 9, 14, 19, 24, 29])
        problem = EstimationProblem(
            features=cores_space.feature_matrix(), prior=view.prior_rates,
            observed_indices=indices, observed_values=truth[indices])
        normalized, scale = normalize_problem(problem)
        scores = {}
        for est in (KNNEstimator(), LEOEstimator(), OfflineEstimator()):
            scores[est.name] = accuracy(est.estimate(normalized) * scale,
                                        truth)
        assert scores["knn"] > scores["offline"]
        assert scores["leo"] >= scores["knn"] - 0.05
