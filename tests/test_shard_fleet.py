"""End-to-end tests for the shard fleet and the sharded client.

The acceptance-shaped properties, at test scale: estimates through the
fleet are bit-identical to local execution on either wire; wire
negotiation degrades to JSON against a pre-binary fleet; a stopped
broker sheds exactly its own tenants with the typed
:class:`ShardUnavailable`; and a model published through one shard
warm-starts the same app on a *different* shard via registry
replication.
"""

import numpy as np
import pytest

from repro.errors import ProtocolError, ShardUnavailable
from repro.estimators.base import EstimationProblem
from repro.estimators.registry import create_estimator
from repro.service import RemoteEstimator
from repro.shard import ShardFleet, ShardedServiceClient


def _problem(seed=0, num_configs=24):
    rng = np.random.default_rng(seed)
    indices = np.arange(0, num_configs, 4)
    return EstimationProblem(
        features=rng.random((num_configs, 3)),
        prior=rng.random((4, num_configs)) + 0.5,
        observed_indices=indices,
        observed_values=rng.random(len(indices)) + 0.5)


def _tenant_on(router, shard_id):
    for index in range(10_000):
        tenant = f"tenant-{index}"
        if router.owner(tenant) == shard_id:
            return tenant
    raise AssertionError(f"no tenant hashes to {shard_id}")


@pytest.fixture(scope="module")
def fleet():
    with ShardFleet(num_shards=3, replicas_per_shard=1,
                    staleness_s=0.0) as running:
        yield running


class TestFleetCalls:
    def test_ping_routes_and_answers(self, fleet):
        with ShardedServiceClient(fleet.addresses) as client:
            for index in range(6):
                reply = client.ping(echo=index,
                                    tenant_key=f"tenant-{index}")
                assert reply["pong"] is True and reply["echo"] == index

    def test_estimate_bit_equal_to_local_on_both_wires(self, fleet):
        problem = _problem(seed=3)
        local = create_estimator("offline").estimate(problem)
        for wire in ("json", "binary"):
            with ShardedServiceClient(fleet.addresses,
                                      wire=wire) as client:
                remote = client.estimate(problem, estimator="offline")
            assert np.array_equal(remote, local), wire

    def test_remote_estimator_drops_onto_the_fleet(self, fleet):
        problem = _problem(seed=5)
        local = create_estimator("offline").estimate(problem)
        with ShardedServiceClient(fleet.addresses) as client:
            remote = RemoteEstimator(client,
                                     estimator="offline").estimate(problem)
        assert np.array_equal(remote, local)

    def test_metrics_covers_every_healthy_shard(self, fleet):
        with ShardedServiceClient(fleet.addresses) as client:
            client.ping(tenant_key="metrics-tenant")
            fleet_metrics = client.metrics()
        assert set(fleet_metrics) == set(fleet.shard_ids)
        total = sum(
            shard["metrics"]["counters"].get("service_requests_total", 0)
            for shard in fleet_metrics.values())
        assert total >= 1

    def test_auto_negotiation_lands_on_binary(self, fleet):
        with ShardedServiceClient(fleet.addresses, wire="auto") as client:
            client.ping(tenant_key="nego")
            shard_id = client.router.route("nego")
            assert client.client_for(shard_id).wire_mode == "binary"


class TestLegacyFleet:
    def test_auto_downgrades_against_a_json_only_fleet(self):
        with ShardFleet(num_shards=2, replicas_per_shard=0,
                        accept_binary=False) as fleet:
            with ShardedServiceClient(fleet.addresses,
                                      wire="auto") as client:
                assert client.ping(tenant_key="t")["pong"] is True
                shard_id = client.router.route("t")
                assert client.client_for(shard_id).wire_mode == "json"

    def test_forced_binary_is_rejected_with_a_typed_error(self):
        with ShardFleet(num_shards=1, replicas_per_shard=0,
                        accept_binary=False) as fleet:
            with ShardedServiceClient(fleet.addresses, wire="binary",
                                      retries=0) as client:
                with pytest.raises((ProtocolError, ShardUnavailable)):
                    client.ping(tenant_key="t")


class TestShardLoss:
    def test_stopped_shard_sheds_only_its_tenants(self):
        with ShardFleet(num_shards=3, replicas_per_shard=0) as fleet:
            with ShardedServiceClient(fleet.addresses, timeout=5.0,
                                      retries=0) as client:
                victim = _tenant_on(client.router, "shard-1")
                survivor = _tenant_on(client.router, "shard-0")
                assert client.ping(tenant_key=victim)["pong"] is True
                fleet.stop_shard("shard-1")
                for _ in range(client.router.failure_threshold):
                    with pytest.raises(ShardUnavailable) as err:
                        client.ping(tenant_key=victim)
                    assert err.value.details["shard"] == "shard-1"
                assert not client.router.is_up("shard-1")
                # The rest of the fleet never noticed.
                assert client.ping(tenant_key=survivor)["pong"] is True
                assert set(client.metrics()) == {"shard-0", "shard-2"}


class TestReplicationThroughTheFleet:
    def test_publish_on_one_shard_warm_starts_another(self):
        with ShardFleet(num_shards=2, replicas_per_shard=1,
                        staleness_s=0.0) as fleet:
            with ShardedServiceClient(fleet.addresses,
                                      timeout=300.0) as client:
                cold = client.call_shard(
                    "shard-0", "calibrate-report",
                    {"app": "kmeans", "space": "cores", "samples": 6,
                     "estimator": "leo"}, deadline_s=240.0)
                warm = client.call_shard(
                    "shard-1", "calibrate-report",
                    {"app": "kmeans", "space": "cores", "samples": 6,
                     "estimator": "leo"}, deadline_s=240.0)
        assert cold["source"] == "calibration" and cold["version"] == 1
        assert warm["source"] == "registry", warm
        assert warm["samples_used"] == 0
        assert warm["rates"] == cold["rates"]
        assert warm["powers"] == cold["powers"]

    def test_replication_lag_is_reported(self, fleet):
        with ShardedServiceClient(fleet.addresses) as client:
            client.ping(tenant_key="lag")
        lag = fleet.replication_lag()
        assert set(lag) == {f"{shard}/replica-0"
                            for shard in fleet.shard_ids}
