"""Tests for repro.workloads.phases."""

import pytest

from repro.workloads.phases import Phase, PhasedWorkload, fluidanimate_two_phase
from repro.workloads.suite import get_benchmark


class TestPhase:
    def test_target_rate_is_deadline_inverse(self, kmeans):
        phase = Phase(kmeans, frames=10, frame_deadline=0.25)
        assert phase.target_rate == pytest.approx(4.0)

    def test_duration(self, kmeans):
        phase = Phase(kmeans, frames=40, frame_deadline=0.5)
        assert phase.duration == pytest.approx(20.0)

    def test_rejects_zero_frames(self, kmeans):
        with pytest.raises(ValueError):
            Phase(kmeans, frames=0, frame_deadline=0.25)

    def test_rejects_nonpositive_deadline(self, kmeans):
        with pytest.raises(ValueError):
            Phase(kmeans, frames=10, frame_deadline=0.0)


class TestPhasedWorkload:
    def test_totals(self, kmeans):
        workload = PhasedWorkload([
            Phase(kmeans, frames=10, frame_deadline=1.0),
            Phase(kmeans, frames=20, frame_deadline=0.5),
        ])
        assert workload.total_frames == 30
        assert workload.total_duration == pytest.approx(20.0)
        assert len(workload) == 2

    def test_phase_boundaries(self, kmeans):
        workload = PhasedWorkload([
            Phase(kmeans, frames=10, frame_deadline=1.0),
            Phase(kmeans, frames=20, frame_deadline=1.0),
            Phase(kmeans, frames=5, frame_deadline=1.0),
        ])
        assert workload.phase_boundaries() == [10, 30]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PhasedWorkload([])


class TestFluidanimateTwoPhase:
    def test_section_6_6_structure(self):
        fluid = get_benchmark("fluidanimate")
        workload = fluidanimate_two_phase(fluid, frames_per_phase=100,
                                          frame_deadline=0.25)
        assert len(workload) == 2
        heavy, light = workload.phases
        # Both phases share the deadline; phase 2 needs 2/3 the resources,
        # i.e. its per-frame work is 2/3 and its rate capability 3/2.
        assert heavy.frame_deadline == light.frame_deadline
        assert light.profile.base_rate == pytest.approx(
            heavy.profile.base_rate * 1.5)

    def test_custom_work_ratio(self):
        fluid = get_benchmark("fluidanimate")
        workload = fluidanimate_two_phase(fluid, work_ratio=0.5)
        heavy, light = workload.phases
        assert light.profile.base_rate == pytest.approx(
            2.0 * heavy.profile.base_rate)

    def test_rejects_bad_ratio(self):
        fluid = get_benchmark("fluidanimate")
        with pytest.raises(ValueError):
            fluidanimate_two_phase(fluid, work_ratio=0.0)
        with pytest.raises(ValueError):
            fluidanimate_two_phase(fluid, work_ratio=1.5)
