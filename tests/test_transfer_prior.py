"""Tests for cross-platform transfer priors and TransferAwareLEO.

Two guarantees matter: same-platform blocks pass through *bit-identical*
(so the homogeneous path cannot drift), and ``psi_blend=0`` makes
``TransferAwareLEO`` produce exactly the plain ``LEOEstimator``'s
output.
"""

import numpy as np
import pytest

from repro.core.transfer import (
    TransferPrior,
    alignment_features,
    block_psi,
    map_indices,
    platform_distance,
    platform_similarity,
    signature_of,
)
from repro.estimators import (
    EstimationProblem,
    LEOEstimator,
    TransferAwareLEO,
    create_estimator,
    normalize_problem,
)
from repro.experiments.harness import random_indices
from repro.platform.config_space import ConfigurationSpace
from repro.platform.hetero import BIG_LITTLE, HeteroTopology, hetero_space
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.suite import get_benchmark, paper_suite
from repro.workloads.traces import OfflineDataset


@pytest.fixture(scope="module")
def paper_space() -> ConfigurationSpace:
    return ConfigurationSpace.paper_space(PAPER_TOPOLOGY)


@pytest.fixture(scope="module")
def prior_tables(paper_space):
    machine = Machine(PAPER_TOPOLOGY, seed=3)
    profiles = paper_suite()[:6]
    dataset = OfflineDataset.collect(machine, profiles, paper_space,
                                     noisy=True)
    return dataset.rates, dataset.powers


class TestSimilarityKernel:
    def test_identity_is_exactly_one(self):
        sig = signature_of(PAPER_TOPOLOGY)
        assert platform_distance(sig, sig) == 0.0
        assert platform_similarity(sig, sig) == 1.0

    def test_symmetric_and_bounded(self):
        a = signature_of(PAPER_TOPOLOGY)
        b = signature_of(BIG_LITTLE)
        assert platform_similarity(a, b) == platform_similarity(b, a)
        assert 0.0 < platform_similarity(a, b) < 1.0

    def test_shorter_length_scale_shrinks_weight(self):
        a = signature_of(PAPER_TOPOLOGY)
        b = signature_of(BIG_LITTLE)
        near = platform_similarity(a, b, length_scale=1.0)
        far = platform_similarity(a, b, length_scale=0.2)
        assert far < near


class TestAlignment:
    def test_same_space_maps_to_itself(self, paper_space):
        idx = map_indices(paper_space, paper_space)
        assert np.array_equal(idx, np.arange(len(paper_space)))

    def test_alignment_features_shape(self, paper_space):
        feats = alignment_features(paper_space)
        assert feats.shape == (len(paper_space), 5)
        assert np.all(np.isfinite(feats))

    def test_mapped_indices_in_range(self, paper_space):
        target = hetero_space(BIG_LITTLE, speed_indices=([0, 4], [0]))
        idx = map_indices(paper_space, target)
        assert idx.shape == (len(target),)
        assert idx.min() >= 0 and idx.max() < len(paper_space)


class TestTransferPrior:
    def test_native_passthrough_bit_identical(self, paper_space,
                                              prior_tables):
        rates, powers = prior_tables
        transfer = TransferPrior()
        transfer.add_platform(PAPER_TOPOLOGY, paper_space, rates, powers)
        built = transfer.build(PAPER_TOPOLOGY, paper_space)
        assert np.array_equal(built.rates, rates)
        assert np.array_equal(built.powers, powers)
        assert built.blocks == ((0, rates.shape[0], 1.0),)

    def test_foreign_block_is_weight_shrunk(self, paper_space,
                                            prior_tables):
        rates, powers = prior_tables
        transfer = TransferPrior()
        transfer.add_platform(PAPER_TOPOLOGY, paper_space, rates, powers)
        # No offload in the target so the device response does not
        # reshape the aligned curves before the shrinkage under test.
        target = hetero_space(BIG_LITTLE, speed_indices=([0, 4], [0]),
                              include_offload=False)
        built = transfer.build(BIG_LITTLE, target)
        assert built.rates.shape == (rates.shape[0], len(target))
        (start, stop, weight), = built.blocks
        assert (start, stop) == (0, rates.shape[0])
        assert 0.0 < weight < 1.0
        # Shrinkage compresses per-app spread relative to raw alignment.
        idx = map_indices(paper_space, target)
        raw = rates[:, idx]
        raw_spread = raw.max(axis=1) - raw.min(axis=1)
        built_spread = built.rates.max(axis=1) - built.rates.min(axis=1)
        assert np.all(built_spread <= raw_spread + 1e-9)

    def test_offload_columns_capped_by_device_response(
            self, paper_space, prior_tables):
        rates, powers = prior_tables
        transfer = TransferPrior()
        transfer.add_platform(PAPER_TOPOLOGY, paper_space, rates, powers)
        target = hetero_space(BIG_LITTLE, speed_indices=([0, 4], [0]))
        built = transfer.build(BIG_LITTLE, target)
        device = BIG_LITTLE.offload
        cap = 1.0 / device.transfer_seconds
        offload_cols = [j for j, c in enumerate(target) if c.offload]
        assert offload_cols
        # _shrink mixes toward the row mean, so allow the mean's pull
        # above the hard cap but require the raw aligned value capped.
        idx = map_indices(paper_space, target)
        raw = rates[:, idx]
        transformed = 1.0 / (1.0 / (device.speedup * raw[:, offload_cols])
                             + device.transfer_seconds)
        assert np.all(transformed <= cap + 1e-9)
        assert np.all(built.rates[:, offload_cols]
                      < raw[:, offload_cols].max() + 1e-9)

    def test_build_without_platforms_raises(self, paper_space):
        with pytest.raises(ValueError):
            TransferPrior().build(PAPER_TOPOLOGY, paper_space)


class TestBlockPsi:
    def test_blend_zero_is_scalar_identity(self):
        std = np.random.default_rng(0).normal(size=(5, 12))
        psi = block_psi(std, ((0, 5, 1.0),), 0.0)
        assert np.isscalar(psi) and psi == 1.0

    def test_blended_psi_is_symmetric_psd(self):
        std = np.random.default_rng(1).normal(size=(6, 10))
        psi = block_psi(std, ((0, 3, 1.0), (3, 6, 0.4)), 0.35)
        assert psi.shape == (10, 10)
        assert np.array_equal(psi, psi.T)
        eigenvalues = np.linalg.eigvalsh(psi)
        assert eigenvalues.min() > 0.0


class TestTransferAwareLEO:
    def _problem(self, paper_space, prior_tables):
        rates, _ = prior_tables
        machine = Machine(PAPER_TOPOLOGY, seed=9)
        truth, _ = machine.sweep(get_benchmark("swish"), paper_space,
                                 noisy=False)
        indices = random_indices(len(paper_space), 20, 5)
        problem = EstimationProblem(
            features=paper_space.feature_matrix(), prior=rates,
            observed_indices=indices, observed_values=truth[indices])
        return normalize_problem(problem)

    def test_blend_zero_bit_identical_to_leo(self, paper_space,
                                             prior_tables):
        normalized, scale = self._problem(paper_space, prior_tables)
        plain = LEOEstimator().estimate(normalized) * scale
        zero = TransferAwareLEO(
            blocks=((0, 6, 1.0),), psi_blend=0.0).estimate(normalized)
        assert np.array_equal(plain, zero * scale)

    def test_no_blocks_bit_identical_to_leo(self, paper_space,
                                            prior_tables):
        normalized, scale = self._problem(paper_space, prior_tables)
        plain = LEOEstimator().estimate(normalized)
        none = TransferAwareLEO(blocks=(), psi_blend=0.5).estimate(
            normalized)
        assert np.array_equal(plain, none)

    def test_blend_changes_estimate(self, paper_space, prior_tables):
        normalized, _ = self._problem(paper_space, prior_tables)
        plain = LEOEstimator().estimate(normalized)
        blended = TransferAwareLEO(
            blocks=((0, 6, 1.0),), psi_blend=0.35).estimate(normalized)
        assert not np.array_equal(plain, blended)
        assert np.all(np.isfinite(blended))

    def test_invalid_blend_rejected(self):
        with pytest.raises(ValueError):
            TransferAwareLEO(psi_blend=1.5)

    def test_registry_constructs_transfer_estimator(self):
        estimator = create_estimator("leo-transfer", psi_blend=0.2)
        assert estimator.name == "leo-transfer"
        assert estimator.psi_blend == 0.2


class TestHomogeneousDegenerateTransfer:
    def test_degenerate_topology_counts_as_native(self, paper_space,
                                                  prior_tables):
        rates, powers = prior_tables
        topo = HeteroTopology.from_topology(PAPER_TOPOLOGY)
        transfer = TransferPrior()
        transfer.add_platform(PAPER_TOPOLOGY, paper_space, rates, powers)
        built = transfer.build(topo, hetero_space(topo))
        assert np.array_equal(built.rates, rates)
        assert np.array_equal(built.powers, powers)
