"""Golden numerical-regression suite.

The ``.npz`` fixtures under ``tests/golden/`` were captured against the
serial, unbatched implementation of the EM engine, the hull geometry and
the Eq. (1) LP (see ``tests/golden/generate_golden.py``).  These tests
assert that the current code — including the batched E-step and the
Cholesky-factor cache — reproduces those numbers to ``rtol=1e-9``, so
every hot-path optimisation is provably behaviour-preserving.

If one of these fails after an intentional modelling change, regenerate
with ``PYTHONPATH=src python tests/golden/generate_golden.py`` and
explain the change in the commit; never regenerate to make a pure
optimisation pass.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.core.em import EMConfig, EMEngine
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.estimators.base import EstimationProblem
from repro.estimators.leo import LEOEstimator
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.pareto import TradeoffFrontier, pareto_optimal_mask

from golden.generate_golden import EM_CASES

GOLDEN = pathlib.Path(__file__).parent / "golden"
RTOL = 1e-9


def _load(name: str):
    path = GOLDEN / f"{name}.npz"
    if not path.exists():
        pytest.fail(f"missing golden fixture {path}; regenerate with "
                    f"PYTHONPATH=src python tests/golden/generate_golden.py")
    return np.load(path)


@pytest.mark.parametrize("case", sorted(EM_CASES))
def test_em_matches_golden(case):
    """EM posterior means/covariances match the pre-optimisation runs."""
    seed, m, n, layout, use_prior, woodbury = EM_CASES[case]
    fixture = _load(case)
    obs = ObservationSet(fixture["values"], fixture["mask"])
    prior = NIWPrior.paper_default() if use_prior else None
    engine = EMEngine(prior=prior,
                      config=EMConfig(max_iterations=25, tol=1e-8,
                                      use_woodbury=woodbury))
    result = engine.fit(obs)

    np.testing.assert_allclose(result.mu, fixture["mu"], rtol=RTOL)
    np.testing.assert_allclose(result.sigma_mat, fixture["sigma_mat"],
                               rtol=RTOL, atol=1e-12)
    np.testing.assert_allclose(result.noise_var, fixture["noise_var"],
                               rtol=RTOL)
    np.testing.assert_allclose(result.zhat, fixture["zhat"], rtol=RTOL,
                               atol=1e-12)
    np.testing.assert_allclose(result.zvar, fixture["zvar"], rtol=RTOL,
                               atol=1e-12)
    np.testing.assert_allclose(result.loglik_history,
                               fixture["loglik_history"], rtol=RTOL)
    assert result.iterations == int(fixture["iterations"])
    assert bool(result.converged) == bool(fixture["converged"])


def test_leo_estimate_matches_golden():
    """End-to-end LEO curve (standardize -> EM -> map back) is pinned."""
    fixture = _load("leo_estimate")
    problem = EstimationProblem(features=fixture["features"],
                                prior=fixture["prior"],
                                observed_indices=fixture["indices"],
                                observed_values=fixture["observed"])
    curve = LEOEstimator().estimate(problem)
    np.testing.assert_allclose(curve, fixture["curve"], rtol=RTOL)


def test_hull_matches_golden():
    """Hull vertices (and the Pareto mask) are byte-stable geometry."""
    fixture = _load("hull_lp")
    frontier = TradeoffFrontier(fixture["rates"], fixture["powers"],
                                idle_power=float(fixture["idle"]))
    verts = np.array([[v.rate, v.power,
                       -1 if v.config_index is None else v.config_index]
                      for v in frontier.vertices])
    np.testing.assert_allclose(verts, fixture["hull_vertices"], rtol=RTOL)
    mask = pareto_optimal_mask(fixture["rates"], fixture["powers"])
    assert np.array_equal(mask, fixture["pareto_mask"])


def test_lp_schedules_match_golden():
    """Eq. (1) schedules and energies across modes and demand levels."""
    fixture = _load("hull_lp")
    deadline = float(fixture["deadline"])
    works = fixture["works"]
    energies = fixture["energies"]
    slots = fixture["slots"]
    row = 0
    for mode in ("deadline-energy", "active-energy"):
        minimizer = EnergyMinimizer(fixture["rates"], fixture["powers"],
                                    float(fixture["idle"]), mode=mode)
        for _ in range(5):
            schedule = minimizer.solve(works[row], deadline)
            got = np.array(
                [[-1 if s.config_index is None else s.config_index,
                  s.duration] for s in schedule])
            want = slots[row][~np.isnan(slots[row]).any(axis=1)]
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(
                minimizer.min_energy(works[row], deadline),
                energies[row], rtol=RTOL)
            row += 1
