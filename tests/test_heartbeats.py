"""Tests for repro.telemetry.heartbeats."""

import pytest

from repro.telemetry.heartbeats import HeartbeatMonitor


class TestRegistration:
    def test_total_beats_accumulate(self):
        monitor = HeartbeatMonitor()
        monitor.heartbeat(0.0, beats=3)
        monitor.heartbeat(1.0, beats=2)
        assert monitor.total_beats == 5

    def test_rejects_time_travel(self):
        monitor = HeartbeatMonitor()
        monitor.heartbeat(5.0)
        with pytest.raises(ValueError):
            monitor.heartbeat(4.0)

    def test_rejects_negative_beats(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor().heartbeat(0.0, beats=-1)


class TestWindowRate:
    def test_zero_before_two_records(self):
        monitor = HeartbeatMonitor()
        assert monitor.window_rate() == 0.0
        monitor.heartbeat(0.0)
        assert monitor.window_rate() == 0.0

    def test_steady_rate(self):
        monitor = HeartbeatMonitor(window=10)
        for t in range(5):
            monitor.heartbeat(float(t), beats=2)
        # 4 intervals of 1 s carrying 2 beats each (first record excluded).
        assert monitor.window_rate() == pytest.approx(2.0)

    def test_sliding_window_forgets_old_rates(self):
        monitor = HeartbeatMonitor(window=3)
        monitor.heartbeat(0.0, beats=100)
        for t in (1.0, 2.0, 3.0, 4.0):
            monitor.heartbeat(t, beats=1)
        assert monitor.window_rate() == pytest.approx(1.0)

    def test_zero_span_is_zero_rate(self):
        monitor = HeartbeatMonitor()
        monitor.heartbeat(1.0)
        monitor.heartbeat(1.0)
        assert monitor.window_rate() == 0.0


class TestTargets:
    def test_meets_min_target(self):
        monitor = HeartbeatMonitor(min_target=1.5)
        for t in range(4):
            monitor.heartbeat(float(t), beats=2)
        assert monitor.meets_target()

    def test_misses_min_target(self):
        monitor = HeartbeatMonitor(min_target=3.0)
        for t in range(4):
            monitor.heartbeat(float(t), beats=2)
        assert not monitor.meets_target()

    def test_max_target(self):
        monitor = HeartbeatMonitor(max_target=1.0)
        for t in range(4):
            monitor.heartbeat(float(t), beats=2)
        assert not monitor.meets_target()

    def test_rejects_inverted_targets(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(min_target=5.0, max_target=1.0)


class TestReset:
    def test_reset_clears_everything(self):
        monitor = HeartbeatMonitor()
        monitor.heartbeat(0.0)
        monitor.heartbeat(1.0)
        monitor.reset()
        assert monitor.total_beats == 0.0
        assert monitor.window_rate() == 0.0
        monitor.heartbeat(0.5)  # earlier time OK after reset
