"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListAndShow:
    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "kmeans" in out and "swish" in out
        assert out.count("\n") >= 26  # 25 rows + header

    def test_show_benchmark(self, capsys):
        assert main(["show-benchmark", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "scaling_peak" in out and "8" in out

    def test_show_unknown_benchmark_fails(self, capsys):
        assert main(["show-benchmark", "doom"]) == 1
        assert "unknown" in capsys.readouterr().err


class TestEstimate:
    def test_estimate_on_cores_space(self, capsys):
        code = main(["estimate", "--benchmark", "kmeans",
                     "--space", "cores", "--samples", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "leo" in out and "perf accuracy" in out
        assert "(truth)" in out

    def test_estimate_unknown_benchmark(self, capsys):
        assert main(["estimate", "--benchmark", "doom",
                     "--space", "cores"]) == 1

    def test_infeasible_online_reported(self, capsys):
        # 6 samples on the cores space: online works (2 varying knobs);
        # the infeasible path needs the paper space below 15 samples.
        code = main(["estimate", "--benchmark", "x264",
                     "--space", "paper", "--samples", "10"])
        assert code == 0
        assert "infeasible" in capsys.readouterr().out


class TestOptimize:
    def test_optimize_reports_energy(self, capsys):
        code = main(["optimize", "--benchmark", "swish",
                     "--space", "cores", "--utilization", "0.4",
                     "--deadline", "30", "--samples", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "race-to-idle" in out and "optimal" in out
        assert "vs optimal" in out

    def test_rejects_bad_utilization(self, capsys):
        assert main(["optimize", "--utilization", "1.5",
                     "--space", "cores"]) == 1

    def test_estimator_choice(self, capsys):
        code = main(["optimize", "--benchmark", "x264",
                     "--space", "cores", "--estimator", "offline",
                     "--utilization", "0.3", "--deadline", "30",
                     "--samples", "8"])
        assert code == 0
        assert "offline" in capsys.readouterr().out


class TestReproduce:
    def test_fig1(self, capsys):
        assert main(["reproduce", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "true peak = 8" in out

    def test_invalid_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])


class TestChaos:
    def test_default_plan_reports_survival(self, capsys):
        code = main(["chaos", "--benchmark", "kmeans", "--space", "cores",
                     "--windows", "2", "--deadline", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan" in out
        assert "survived" in out
        assert "recovered to tier 0" in out

    def test_unknown_plan_rejected(self, capsys):
        assert main(["chaos", "--plan", "mayhem",
                     "--space", "cores"]) == 1
        assert "mayhem" in capsys.readouterr().err

    def test_rejects_bad_utilization(self, capsys):
        assert main(["chaos", "--utilization", "0",
                     "--space", "cores"]) == 1


class TestSoakCommand:
    def test_quiet_soak_passes(self, capsys, tmp_path):
        out = tmp_path / "soak.json"
        code = main(["soak", "--plan", "quiet", "--horizon", "14400",
                     "--tenants", "4", "--json", str(out),
                     "--slo", str(tmp_path / "slo.json")])
        captured = capsys.readouterr()
        assert code == 0
        assert "soak" in captured.out
        assert "fingerprint" in captured.out
        import json
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        assert payload["fingerprint"]
        slo = json.loads((tmp_path / "slo.json").read_text())
        assert set(slo) == {"objectives", "events", "streams"}

    def test_horizon_accepts_days_suffix(self, capsys):
        code = main(["soak", "--plan", "none", "--horizon", "0.1d",
                     "--tenants", "2"])
        assert code == 0
        assert "0.10 days" in capsys.readouterr().out

    def test_unknown_plan_rejected(self, capsys):
        assert main(["soak", "--plan", "mayhem",
                     "--horizon", "7200"]) == 1
        assert "profile" in capsys.readouterr().err

    def test_bad_horizon_rejected(self, capsys):
        assert main(["soak", "--horizon", "soon"]) == 1
        assert "horizon" in capsys.readouterr().err
