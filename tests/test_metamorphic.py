"""Metamorphic tests: transformations with known effects on outputs.

Each test applies a transformation to an estimation problem whose effect
on the correct answer is known exactly — permutation invariance, scale
equivariance, idempotent duplication — and checks the estimators honour
it.  These catch subtle bugs (index mix-ups, hidden state, asymmetric
normalization) that pointwise accuracy tests miss.
"""

import numpy as np
import pytest

from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.knn import KNNEstimator
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import OnlineEstimator


@pytest.fixture()
def problem(cores_dataset, cores_space):
    view = cores_dataset.leave_one_out("kmeans")
    indices = np.array([2, 8, 14, 20, 26, 31])
    truth = cores_dataset.row("kmeans")[0]
    return EstimationProblem(
        features=cores_space.feature_matrix(), prior=view.prior_rates,
        observed_indices=indices, observed_values=truth[indices])


class TestPriorRowPermutation:
    """Shuffling the order of prior applications must not matter."""

    def _permuted(self, problem, seed=3):
        rng = np.random.default_rng(seed)
        order = rng.permutation(problem.prior.shape[0])
        return EstimationProblem(
            features=problem.features, prior=problem.prior[order],
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values)

    def test_offline_invariant(self, problem):
        a = OfflineEstimator().estimate(problem)
        b = OfflineEstimator().estimate(self._permuted(problem))
        np.testing.assert_allclose(a, b)

    def test_leo_invariant(self, problem):
        a = LEOEstimator().estimate(problem)
        b = LEOEstimator().estimate(self._permuted(problem))
        np.testing.assert_allclose(a, b, rtol=1e-7, atol=1e-9)

    def test_knn_invariant(self, problem):
        a = KNNEstimator(k=3).estimate(problem)
        b = KNNEstimator(k=3).estimate(self._permuted(problem))
        np.testing.assert_allclose(a, b, rtol=1e-10)


class TestScaleEquivariance:
    """Scaling all data by c > 0 must scale the estimate by c."""

    def _scaled(self, problem, c):
        return EstimationProblem(
            features=problem.features, prior=problem.prior * c,
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values * c)

    @pytest.mark.parametrize("c", [0.01, 3.0, 1000.0])
    def test_leo_equivariant(self, problem, c):
        a = LEOEstimator().estimate(problem)
        b = LEOEstimator().estimate(self._scaled(problem, c))
        np.testing.assert_allclose(b, c * a, rtol=1e-6)

    @pytest.mark.parametrize("c", [0.01, 1000.0])
    def test_offline_equivariant(self, problem, c):
        a = OfflineEstimator().estimate(problem)
        b = OfflineEstimator().estimate(self._scaled(problem, c))
        np.testing.assert_allclose(b, c * a, rtol=1e-12)

    @pytest.mark.parametrize("c", [0.01, 1000.0])
    def test_online_equivariant(self, problem, c):
        # Online ignores the prior, so scale only the observations.
        scaled = EstimationProblem(
            features=problem.features, prior=None,
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values * c)
        base = EstimationProblem(
            features=problem.features, prior=None,
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values)
        a = OnlineEstimator().estimate(base)
        b = OnlineEstimator().estimate(scaled)
        np.testing.assert_allclose(b, c * a, rtol=1e-8)

    def test_normalization_makes_leo_scale_free(self, problem):
        """Through normalize_problem, target-scale changes cancel."""
        a_norm, a_scale = normalize_problem(problem)
        scaled = EstimationProblem(
            features=problem.features, prior=problem.prior,
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values * 7.0)
        b_norm, b_scale = normalize_problem(scaled)
        a = LEOEstimator().estimate(a_norm) * a_scale
        b = LEOEstimator().estimate(b_norm) * b_scale
        np.testing.assert_allclose(b, 7.0 * a, rtol=1e-6)


class TestDuplication:
    """Duplicating a prior application shifts weight, never breaks."""

    def test_offline_mean_shifts_toward_duplicate(self, problem):
        doubled = np.vstack([problem.prior, problem.prior[:1]])
        duplicated = EstimationProblem(
            features=problem.features, prior=doubled,
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values)
        base = OfflineEstimator().estimate(problem)
        shifted = OfflineEstimator().estimate(duplicated)
        direction = problem.prior[0] - base
        # Where the duplicated row differs from the mean, the new mean
        # moves toward it.
        mask = np.abs(direction) > 1e-9
        assert np.all(np.sign(shifted - base)[mask]
                      == np.sign(direction)[mask])

    def test_leo_stable_under_duplicate(self, problem):
        doubled = np.vstack([problem.prior, problem.prior[:1]])
        duplicated = EstimationProblem(
            features=problem.features, prior=doubled,
            observed_indices=problem.observed_indices,
            observed_values=problem.observed_values)
        a = LEOEstimator().estimate(problem)
        b = LEOEstimator().estimate(duplicated)
        # Not identical (the library changed) but nowhere wild.
        assert np.all(np.isfinite(b))
        assert np.median(np.abs(b - a) / np.abs(a)) < 0.25


class TestObservationConsistency:
    """More observations of the truth never make LEO much worse."""

    def test_superset_observations(self, cores_dataset, cores_truth,
                                   cores_space):
        from repro.core.accuracy import accuracy
        view = cores_dataset.leave_one_out("swish")
        truth = cores_truth.leave_one_out("swish").true_rates
        small = np.array([4, 14, 24])
        large = np.array([4, 9, 14, 19, 24, 29])

        def run(indices):
            problem = EstimationProblem(
                features=cores_space.feature_matrix(),
                prior=view.prior_rates, observed_indices=indices,
                observed_values=truth[indices])
            normalized, scale = normalize_problem(problem)
            return accuracy(LEOEstimator().estimate(normalized) * scale,
                            truth)

        assert run(large) >= run(small) - 0.05
