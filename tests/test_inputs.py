"""Tests for repro.workloads.inputs (input-dependent behaviour)."""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.platform.machine import Machine
from repro.workloads.inputs import REFERENCE_INPUT, InputSpec, input_sweep
from repro.workloads.suite import get_benchmark


class TestInputSpec:
    def test_reference_is_identity_on_rate(self, kmeans):
        applied = REFERENCE_INPUT.apply(kmeans)
        assert applied.base_rate == kmeans.base_rate
        assert applied.scaling_peak == kmeans.scaling_peak

    def test_heavier_input_lowers_rate(self, kmeans):
        heavy = InputSpec(name="big", work_scale=2.0).apply(kmeans)
        assert heavy.base_rate == pytest.approx(kmeans.base_rate / 2.0)

    def test_memory_shift_clipped_valid(self, kmeans):
        shifted = InputSpec(name="m", memory_shift=0.9).apply(kmeans)
        assert (shifted.memory_intensity + shifted.io_intensity) < 1.0

    def test_peak_shift_floored_at_one(self, kmeans):
        early = InputSpec(name="p", peak_shift=-100).apply(kmeans)
        assert early.scaling_peak == 1

    def test_name_annotated(self, kmeans):
        assert InputSpec(name="v2").apply(kmeans).name == "kmeans@v2"

    def test_validation(self):
        with pytest.raises(ValueError):
            InputSpec(name="")
        with pytest.raises(ValueError):
            InputSpec(name="x", work_scale=0.0)
        with pytest.raises(ValueError):
            InputSpec(name="x", noise_scale=0.0)


class TestInputSweep:
    def test_seeded_and_sized(self, kmeans):
        a = input_sweep(kmeans, 10, seed=5)
        b = input_sweep(kmeans, 10, seed=5)
        assert len(a) == 10
        assert [p.base_rate for p in a] == [p.base_rate for p in b]

    def test_variants_differ_from_reference(self, kmeans):
        variants = input_sweep(kmeans, 8, seed=1)
        assert any(p.base_rate != kmeans.base_rate for p in variants)

    def test_all_variants_valid_profiles(self, kmeans, swish):
        # Profile validation runs in the constructor; no raise = valid.
        assert len(input_sweep(kmeans, 50, seed=2)) == 50
        assert len(input_sweep(swish, 50, seed=3)) == 50

    def test_validation(self, kmeans):
        with pytest.raises(ValueError):
            input_sweep(kmeans, 0)
        with pytest.raises(ValueError):
            input_sweep(kmeans, 5, max_work_scale=1.0)


class TestEstimationAcrossInputs:
    def test_leo_tracks_input_variants(self, cores_dataset, cores_space):
        """Priors profiled on reference inputs still support accurate
        estimation of a shifted input — the core input-dependence claim."""
        kmeans = get_benchmark("kmeans")
        variant = InputSpec(name="shifted", work_scale=1.7,
                            memory_shift=0.1, peak_shift=2).apply(kmeans)
        machine = Machine(seed=33)
        truth = np.array([machine.true_rate(variant, c)
                          for c in cores_space])
        view = cores_dataset.leave_one_out("kmeans")
        indices = np.array([2, 8, 14, 20, 26, 31])
        problem = EstimationProblem(
            features=cores_space.feature_matrix(), prior=view.prior_rates,
            observed_indices=indices, observed_values=truth[indices])
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        assert accuracy(estimate, truth) > 0.8
