"""Tests for repro.estimators.leo: the LEO estimator itself."""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.core.em import EMConfig
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator


def _leave_one_out_problem(dataset, space, name, indices, values):
    view = dataset.leave_one_out(name)
    return EstimationProblem(
        features=space.feature_matrix(), prior=view.prior_rates,
        observed_indices=indices, observed_values=values), view


class TestBasics:
    def test_requires_prior(self):
        problem = EstimationProblem(
            features=np.ones((4, 2)), prior=None,
            observed_indices=np.array([0]), observed_values=np.array([1.0]))
        with pytest.raises(ValueError):
            LEOEstimator().estimate(problem)

    def test_rejects_bad_init(self):
        with pytest.raises(ValueError):
            LEOEstimator(init="sideways")

    def test_estimate_shape(self, cores_dataset, cores_space):
        indices = np.array([4, 9, 14, 19, 24, 29])
        view = cores_dataset.leave_one_out("kmeans")
        values = view.true_rates[indices]
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "kmeans", indices, values)
        estimate = LEOEstimator().estimate(problem)
        assert estimate.shape == (32,)

    def test_last_fit_introspection(self, cores_dataset, cores_space):
        indices = np.array([0, 10, 20, 30])
        view = cores_dataset.leave_one_out("swish")
        values = view.true_rates[indices]
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "swish", indices, values)
        estimator = LEOEstimator()
        with pytest.raises(RuntimeError):
            _ = estimator.iterations
        estimator.estimate(problem)
        assert estimator.iterations >= 1
        assert estimator.last_fit is not None


class TestPaperBehaviours:
    def test_finds_kmeans_early_peak(self, cores_dataset, cores_truth,
                                     cores_space):
        """Section 2: LEO places the peak near 8 cores from 6 samples."""
        indices = np.array([4, 9, 14, 19, 24, 29])
        truth = cores_truth.leave_one_out("kmeans").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "kmeans", indices, truth[indices])
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        assert abs(int(np.argmax(estimate)) - int(np.argmax(truth))) <= 3

    def test_beats_offline_on_unusual_app(self, cores_dataset, cores_truth,
                                          cores_space):
        from repro.estimators.offline import OfflineEstimator
        indices = np.array([4, 9, 14, 19, 24, 29])
        truth = cores_truth.leave_one_out("kmeans").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "kmeans", indices, truth[indices])
        normalized, scale = normalize_problem(problem)
        leo = LEOEstimator().estimate(normalized) * scale
        offline = OfflineEstimator().estimate(normalized) * scale
        assert accuracy(leo, truth) > accuracy(offline, truth) + 0.2

    def test_high_accuracy_with_sparse_samples(self, cores_dataset,
                                               cores_truth, cores_space):
        indices = np.array([2, 8, 15, 22, 28])
        for name in ("swish", "x264", "jacobi"):
            truth = cores_truth.leave_one_out(name).true_rates
            problem, _ = _leave_one_out_problem(
                cores_dataset, cores_space, name, indices, truth[indices])
            normalized, scale = normalize_problem(problem)
            estimate = LEOEstimator().estimate(normalized) * scale
            assert accuracy(estimate, truth) > 0.8, name

    def test_interpolates_observations(self, cores_dataset, cores_truth,
                                       cores_space):
        indices = np.array([0, 7, 15, 23, 31])
        truth = cores_truth.leave_one_out("swish").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "swish", indices, truth[indices])
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        rel = np.abs(estimate[indices] - truth[indices]) / truth[indices]
        assert rel.max() < 0.15


class TestInitialization:
    def test_offline_init_at_least_as_good_as_random(self, cores_dataset,
                                                     cores_truth,
                                                     cores_space):
        """Section 5.5: initializing mu from the offline estimate helps."""
        indices = np.array([4, 9, 14, 19, 24, 29])
        truth = cores_truth.leave_one_out("kmeans").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "kmeans", indices, truth[indices])
        normalized, scale = normalize_problem(problem)
        config = EMConfig(max_iterations=2, tol=1e-9)
        offline_init = LEOEstimator(em_config=config, init="offline")
        random_init = LEOEstimator(em_config=config, init="random", seed=0)
        acc_offline = accuracy(offline_init.estimate(normalized) * scale,
                               truth)
        acc_random = accuracy(random_init.estimate(normalized) * scale,
                              truth)
        assert acc_offline >= acc_random - 0.02

    def test_online_init_runs_and_is_accurate(self, cores_dataset,
                                              cores_truth, cores_space):
        indices = np.array([4, 9, 14, 19, 24, 29])
        truth = cores_truth.leave_one_out("kmeans").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "kmeans", indices, truth[indices])
        normalized, scale = normalize_problem(problem)
        estimator = LEOEstimator(init="online")
        estimate = estimator.estimate(normalized) * scale
        assert accuracy(estimate, truth) > 0.85

    def test_online_init_falls_back_below_coefficients(self, cores_dataset,
                                                       cores_truth,
                                                       cores_space):
        """With too few samples for regression, online init degrades to
        the offline initialization instead of failing."""
        indices = np.array([7, 23])
        truth = cores_truth.leave_one_out("swish").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "swish", indices, truth[indices])
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator(init="online").estimate(normalized) * scale
        assert np.all(np.isfinite(estimate))

    def test_random_init_is_seeded(self, cores_dataset, cores_truth,
                                   cores_space):
        indices = np.array([4, 9, 14, 19, 24, 29])
        truth = cores_truth.leave_one_out("swish").true_rates
        problem, _ = _leave_one_out_problem(
            cores_dataset, cores_space, "swish", indices, truth[indices])
        config = EMConfig(max_iterations=1, tol=1e-9)
        a = LEOEstimator(em_config=config, init="random", seed=3).estimate(
            problem)
        b = LEOEstimator(em_config=config, init="random", seed=3).estimate(
            problem)
        np.testing.assert_allclose(a, b)
