"""Tests for repro.core.priors."""

import numpy as np
import pytest

from repro.core.priors import NIWPrior


class TestPaperDefault:
    def test_matches_section_5_2(self):
        prior = NIWPrior.paper_default()
        assert prior.mu0 == 0.0
        assert prior.pi == 1.0
        assert prior.psi == 1.0
        assert prior.nu == 1.0


class TestMaterialization:
    def test_scalar_mu0_broadcasts(self):
        prior = NIWPrior(mu0=2.5)
        np.testing.assert_allclose(prior.mu0_vector(4), [2.5] * 4)

    def test_vector_mu0_validated(self):
        prior = NIWPrior(mu0=np.array([1.0, 2.0]))
        np.testing.assert_allclose(prior.mu0_vector(2), [1.0, 2.0])
        with pytest.raises(ValueError):
            prior.mu0_vector(3)

    def test_scalar_psi_scales_identity(self):
        prior = NIWPrior(psi=3.0)
        np.testing.assert_allclose(prior.psi_matrix(2), 3.0 * np.eye(2))

    def test_matrix_psi_validated(self):
        psi = np.array([[2.0, 0.5], [0.5, 2.0]])
        prior = NIWPrior(psi=psi)
        np.testing.assert_allclose(prior.psi_matrix(2), psi)
        with pytest.raises(ValueError):
            prior.psi_matrix(3)

    def test_materialized_copies_are_independent(self):
        prior = NIWPrior(mu0=np.array([1.0, 2.0]))
        vec = prior.mu0_vector(2)
        vec[0] = 99.0
        np.testing.assert_allclose(prior.mu0_vector(2), [1.0, 2.0])


class TestValidation:
    def test_rejects_negative_pi(self):
        with pytest.raises(ValueError):
            NIWPrior(pi=-0.1)

    def test_rejects_negative_nu(self):
        with pytest.raises(ValueError):
            NIWPrior(nu=-1.0)

    def test_rejects_negative_scalar_psi(self):
        with pytest.raises(ValueError):
            NIWPrior(psi=-1.0)

    def test_rejects_nonsquare_psi(self):
        with pytest.raises(ValueError):
            NIWPrior(psi=np.ones((2, 3)))

    def test_rejects_asymmetric_psi(self):
        with pytest.raises(ValueError):
            NIWPrior(psi=np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_zero_pi_allowed(self):
        assert NIWPrior(pi=0.0).pi == 0.0
