"""Regenerate the golden numerical-regression fixtures.

Usage (from the repository root)::

    PYTHONPATH=src python tests/golden/generate_golden.py

The fixtures pin down the numerical behaviour of the EM engine, the
Pareto/hull geometry and the Eq. (1) LP *before* any hot-path
optimisation: ``tests/test_golden_regression.py`` asserts that the
current code reproduces these arrays to ``rtol=1e-9``.  They were first
captured against the serial, unbatched implementation, so any batched or
cached rewrite of the same math is provably behaviour-preserving.

Only regenerate them when the *intended* numerics change (a new model,
a different convergence rule), never to make an optimisation pass.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.em import EMConfig, EMEngine
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.estimators.leo import LEOEstimator
from repro.estimators.base import EstimationProblem
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.pareto import TradeoffFrontier, pareto_optimal_mask

HERE = pathlib.Path(__file__).parent


def _spd_covariance(rng: np.random.Generator, n: int) -> np.ndarray:
    """A well-conditioned random SPD matrix with unit-scale diagonal."""
    a = rng.standard_normal((n, n))
    return a @ a.T / n + 0.5 * np.eye(n)


def make_observation_set(seed: int, num_apps: int, num_configs: int,
                         layout: str) -> ObservationSet:
    """Seeded synthetic data in one of the fixture layouts.

    ``"paper"`` mimics the paper's setting (fully observed priors plus a
    sparse target row); ``"multimask"`` gives three distinct observation
    masks shared across the applications, exercising the mask-group
    batching in the E-step.
    """
    rng = np.random.default_rng(seed)
    sigma = _spd_covariance(rng, num_configs)
    chol = np.linalg.cholesky(sigma)
    mu = rng.normal(scale=2.0, size=num_configs)
    curves = mu + rng.standard_normal((num_apps, num_configs)) @ chol.T
    values = curves + 0.1 * rng.standard_normal(curves.shape)

    mask = np.ones((num_apps, num_configs), dtype=bool)
    if layout == "paper":
        target_idx = np.sort(rng.choice(num_configs, size=5, replace=False))
        mask[-1] = False
        mask[-1, target_idx] = True
    elif layout == "multimask":
        patterns = []
        for _ in range(3):
            k = int(rng.integers(3, num_configs))
            idx = np.sort(rng.choice(num_configs, size=k, replace=False))
            pattern = np.zeros(num_configs, dtype=bool)
            pattern[idx] = True
            patterns.append(pattern)
        for i in range(num_apps):
            mask[i] = patterns[i % len(patterns)]
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return ObservationSet(values, mask)


#: The EM fixture cases: name -> (seed, M, n, layout, prior?, woodbury).
EM_CASES = {
    "em_paper_ml": (7, 9, 12, "paper", False, True),
    "em_paper_niw": (7, 9, 12, "paper", True, True),
    "em_multimask_niw": (21, 9, 10, "multimask", True, True),
    "em_paper_dense": (7, 6, 8, "paper", True, False),
}


def generate_em() -> None:
    for name, (seed, m, n, layout, use_prior, woodbury) in EM_CASES.items():
        obs = make_observation_set(seed, m, n, layout)
        prior = NIWPrior.paper_default() if use_prior else None
        engine = EMEngine(prior=prior,
                          config=EMConfig(max_iterations=25, tol=1e-8,
                                          use_woodbury=woodbury))
        result = engine.fit(obs)
        np.savez_compressed(
            HERE / f"{name}.npz",
            values=obs.values, mask=obs.mask,
            mu=result.mu, sigma_mat=result.sigma_mat,
            noise_var=np.float64(result.noise_var),
            zhat=result.zhat, zvar=result.zvar,
            loglik_history=np.asarray(result.loglik_history),
            iterations=np.int64(result.iterations),
            converged=np.bool_(result.converged),
        )


def generate_leo() -> None:
    """An end-to-end LEO estimate on a synthetic problem."""
    rng = np.random.default_rng(1234)
    n, m_prior = 24, 10
    features = rng.uniform(0.5, 4.0, size=(n, 4))
    base = np.linspace(1.0, 6.0, n)
    prior = base * rng.uniform(0.7, 1.3, size=(m_prior, 1))
    prior += 0.1 * rng.standard_normal(prior.shape)
    truth = base * 1.1
    idx = np.sort(rng.choice(n, size=8, replace=False))
    observed = truth[idx] + 0.05 * rng.standard_normal(idx.size)
    problem = EstimationProblem(features=features, prior=prior,
                                observed_indices=idx,
                                observed_values=observed)
    curve = LEOEstimator().estimate(problem)
    np.savez_compressed(HERE / "leo_estimate.npz",
                        features=features, prior=prior, indices=idx,
                        observed=observed, curve=curve)


def generate_hull_lp() -> None:
    rng = np.random.default_rng(99)
    n = 64
    rates = rng.uniform(0.5, 40.0, size=n)
    powers = 5.0 + 2.0 * rates ** 0.8 + rng.uniform(0.0, 8.0, size=n)
    idle = 4.0
    frontier = TradeoffFrontier(rates, powers, idle_power=idle)
    verts = np.array([[v.rate, v.power,
                       -1 if v.config_index is None else v.config_index]
                      for v in frontier.vertices])
    mask = pareto_optimal_mask(rates, powers)

    deadline = 50.0
    works, energies, slot_tables = [], [], []
    for mode in ("deadline-energy", "active-energy"):
        minimizer = EnergyMinimizer(rates, powers, idle, mode=mode)
        for frac in (0.1, 0.35, 0.6, 0.85, 1.0):
            work = frac * minimizer.max_rate * deadline
            schedule = minimizer.solve(work, deadline)
            works.append(work)
            energies.append(minimizer.min_energy(work, deadline))
            slot_tables.append(np.array(
                [[-1 if s.config_index is None else s.config_index,
                  s.duration] for s in schedule]))
    slots = np.full((len(slot_tables), max(len(t) for t in slot_tables), 2),
                    np.nan)
    for i, table in enumerate(slot_tables):
        slots[i, :len(table)] = table
    np.savez_compressed(HERE / "hull_lp.npz",
                        rates=rates, powers=powers,
                        idle=np.float64(idle), hull_vertices=verts,
                        pareto_mask=mask, deadline=np.float64(deadline),
                        works=np.asarray(works),
                        energies=np.asarray(energies), slots=slots)


def main() -> None:
    generate_em()
    generate_leo()
    generate_hull_lp()
    print(f"fixtures written to {HERE}")


if __name__ == "__main__":
    main()
