"""Cluster fault tests: tenant crashes, cap transients, infeasible caps.

The coordinator's resilience contract (docs/RESILIENCE.md): injected
tenant crashes become ordinary departures at the next epoch boundary,
cap transients rebuild the allocator at the scaled cap and respect it,
per-tenant epoch faults idle one tenant for one epoch instead of taking
the node down, and demand beyond the cap degrades through the
allocator's typed ``InfeasibleConstraintError`` handling rather than
crashing the run.
"""

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, Tenant
from repro.cluster.allocator import PowerCapAllocator, TenantDemand
from repro.cluster.partition import PartitionedMachine
from repro.errors import InfeasibleConstraintError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, use
from repro.obs import Observability
from repro.workloads.suite import get_benchmark

CAP = 220.0
DEADLINE = 15.0
SEED = 3
NAMES = ("kmeans", "blackscholes")


def plan(*specs, seed=0):
    return FaultPlan(name="test", seed=seed, specs=specs)


def sized_work(cores_space, names, utilizations, deadline=DEADLINE):
    share = cores_space.topology.total_cores // len(names)
    node = PartitionedMachine(cores_space, [(n, share) for n in names])
    for name in names:
        node.set_profile(name, get_benchmark(name))
    work = {}
    for name, utilization in zip(names, utilizations):
        view = node.view(name)
        profile = get_benchmark(name)
        max_rate = max(view.true_rate(profile, c)
                       for c in node.space_for(name).space)
        work[name] = utilization * max_rate * deadline
    return work


def build(cores_space, cores_dataset, cap=CAP, observability=None,
          utilizations=(0.3, 0.4)):
    coordinator = ClusterCoordinator(
        cores_space, cap_watts=cap, policy="joint", seed=SEED,
        observability=observability)
    work = sized_work(cores_space, NAMES, utilizations)
    for name in NAMES:
        view = cores_dataset.leave_one_out(name)
        coordinator.admit(Tenant(
            name=name, workload=get_benchmark(name), work=work[name],
            deadline=DEADLINE,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
    return coordinator


class TestTenantCrash:
    def test_crash_departs_victim_at_epoch_boundary(self, cores_space,
                                                    cores_dataset):
        observability = Observability.recording()
        coordinator = build(cores_space, cores_dataset,
                            observability=observability)
        with use(FaultInjector(plan(
                FaultSpec("tenant-crash", target="kmeans", start=3.0,
                          max_events=1)))):
            report = coordinator.run()
        counters = observability.metrics.snapshot()["counters"]
        assert counters["cluster_tenant_crashes_total"] == 1
        # The victim's report records its incomplete work; the survivor
        # still finishes under the cap.
        assert set(report.tenants) == set(NAMES)
        assert not report.tenants["kmeans"].met_deadline
        assert report.tenants["blackscholes"].met_deadline
        assert report.cap_respected

    def test_crash_of_unknown_target_picks_a_victim(self, cores_space,
                                                    cores_dataset):
        coordinator = build(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("tenant-crash", target="no-such-tenant",
                          start=3.0, max_events=1)))):
            report = coordinator.run()
        crashed = [name for name, t in report.tenants.items()
                   if not t.met_deadline]
        assert len(crashed) == 1


class TestCapTransient:
    def test_transient_scales_the_cap_and_recovers(self, cores_space,
                                                   cores_dataset):
        observability = Observability.recording()
        coordinator = build(cores_space, cores_dataset,
                            observability=observability)
        with use(FaultInjector(plan(
                FaultSpec("cap-transient", start=2.0, end=8.0,
                          magnitude=0.7)))):
            report = coordinator.run()
        counters = observability.metrics.snapshot()["counters"]
        assert counters["cluster_cap_transients_total"] == 1
        # The full-cap invariant still holds everywhere, and the run
        # survives the brown-out and the restore.
        assert report.cap_respected
        assert report.reallocations >= 2
        # After the window the allocator is back at the full cap.
        assert coordinator.allocator.cap_watts == pytest.approx(CAP)

    def test_scale_clamped_to_a_floor(self, cores_space, cores_dataset):
        # A pathological magnitude cannot zero the cap: the coordinator
        # clamps the scale so the allocator stays constructible.
        coordinator = build(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("cap-transient", start=2.0, end=5.0,
                          magnitude=0.0)))):
            report = coordinator.run()
        assert report.epochs > 0
        assert coordinator.allocator.cap_watts == pytest.approx(CAP)


class TestEpochFaults:
    def test_mid_epoch_dropouts_never_take_down_the_node(
            self, cores_space, cores_dataset):
        # Sensor dropouts strike tenants mid-epoch; each faulty epoch
        # idles that tenant for the epoch instead of crashing the run.
        observability = Observability.recording()
        coordinator = build(cores_space, cores_dataset,
                            observability=observability)
        with use(FaultInjector(plan(
                FaultSpec("sensor-dropout", end=10.0, probability=0.2)))):
            report = coordinator.run()
        assert report.epochs > 0
        assert set(report.tenants) == set(NAMES)
        # Faulty sensors can bias the power estimates the budgets rest
        # on, so the hard cap guarantee is out of reach — but the
        # allocation must stay near it, not run open-loop.
        for peak in report.epoch_peak_watts:
            assert peak <= CAP * 1.15

    def test_full_cluster_plan_survives(self, cores_space, cores_dataset):
        from repro.faults.plans import get_plan
        coordinator = build(cores_space, cores_dataset)
        with use(FaultInjector(get_plan("cluster", seed=SEED))) as injector:
            report = coordinator.run()
        assert report.epochs > 0
        assert report.cap_respected
        assert injector.total_fired > 0


class TestInfeasibleDemand:
    def _demand(self, name, required):
        rates = np.array([1.0, 2.0, 4.0])
        powers = np.array([40.0, 60.0, 100.0])
        return TenantDemand(name=name, rates=rates, powers=powers,
                            idle_power=10.0, required_rate=required)

    def test_lp_raises_typed_error_beyond_capacity(self):
        from repro.optimize.lp import EnergyMinimizer
        minimizer = EnergyMinimizer(np.array([1.0, 2.0]),
                                    np.array([50.0, 80.0]), 10.0)
        with pytest.raises(InfeasibleConstraintError) as exc:
            minimizer.solve(work=30.0, deadline=10.0)  # needs 3 hb/s
        assert exc.value.required == pytest.approx(3.0)
        assert exc.value.max_rate == pytest.approx(2.0)

    def test_allocator_degrades_instead_of_raising(self):
        # Demand above any tenant's curve: the allocator clamps the
        # target to the achievable rate (catching the typed error
        # internally) and marks the allocation infeasible.
        allocator = PowerCapAllocator(cap_watts=300.0)
        allocation = allocator.allocate([
            self._demand("greedy", required=100.0),
            self._demand("modest", required=1.0),
        ])
        greedy = allocation.tenant("greedy")
        assert not greedy.feasible
        assert not allocation.all_feasible
        assert greedy.target_rate <= 4.0 + 1e-9
        assert allocation.tenant("modest").feasible

    def test_tight_cap_degrades_proportionally(self):
        # Even the minimal feasible budgets exceed a starved cap: the
        # proportional mode still returns a valid allocation under it.
        allocator = PowerCapAllocator(cap_watts=50.0)
        allocation = allocator.allocate([
            self._demand("a", required=4.0),
            self._demand("b", required=4.0),
        ])
        assert allocation.total_budget_watts <= allocator.usable_watts + 1e-9
        assert not allocation.all_feasible

    def test_overdemand_under_faults_still_completes(self, cores_space,
                                                     cores_dataset):
        # Both tenants demand near-peak rates under a tight cap while
        # the cluster plan injects a crash and a brown-out: the run
        # must finish and report honest deadline misses, not raise.
        coordinator = build(cores_space, cores_dataset, cap=180.0,
                            utilizations=(0.95, 0.95))
        from repro.faults.plans import get_plan
        with use(FaultInjector(get_plan("cluster", seed=1))):
            report = coordinator.run()
        assert report.epochs > 0
        for peak in report.epoch_peak_watts:
            assert peak <= 180.0 * (1.0 + 1e-6)
