"""Tests for repro.runtime.persistence (the estimate store)."""

import numpy as np
import pytest

from repro.estimators.leo import LEOEstimator
from repro.platform.machine import Machine
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.persistence import EstimateStore
from repro.runtime.sampling import RandomSampler
from repro.workloads.suite import get_benchmark


def _estimate(n=8, name="leo"):
    return TradeoffEstimate(
        rates=np.linspace(10.0, 100.0, n),
        powers=np.linspace(100.0, 300.0, n),
        estimator_name=name, sampling_time=5.0, sampling_energy=700.0,
        fit_seconds=0.8)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        store = EstimateStore(tmp_path)
        original = _estimate()
        store.save("kmeans", original)
        loaded = store.load("kmeans", 8, "leo")
        np.testing.assert_allclose(loaded.rates, original.rates)
        np.testing.assert_allclose(loaded.powers, original.powers)
        assert loaded.estimator_name == "leo"
        assert loaded.sampling_time == 5.0
        assert loaded.fit_seconds == 0.8

    def test_missing_returns_none(self, tmp_path):
        store = EstimateStore(tmp_path)
        assert store.load("kmeans", 8, "leo") is None

    def test_keyed_by_estimator_and_size(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("kmeans", _estimate(n=8, name="leo"))
        store.save("kmeans", _estimate(n=8, name="online"))
        store.save("kmeans", _estimate(n=16, name="leo"))
        assert store.load("kmeans", 8, "leo") is not None
        assert store.load("kmeans", 8, "online") is not None
        assert store.load("kmeans", 16, "leo") is not None
        assert store.load("kmeans", 32, "leo") is None

    def test_delete(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("kmeans", _estimate())
        assert store.delete("kmeans", 8, "leo")
        assert not store.delete("kmeans", 8, "leo")
        assert store.load("kmeans", 8, "leo") is None

    def test_known_applications(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("kmeans", _estimate())
        store.save("swish", _estimate())
        assert store.known_applications() == ["kmeans", "swish"]

    def test_awkward_names_sanitized(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("my app/v2", _estimate())
        assert store.load("my app/v2", 8, "leo") is not None

    def test_unsanitizable_name_rejected(self, tmp_path):
        store = EstimateStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("///", _estimate())

    def test_creates_directory(self, tmp_path):
        store = EstimateStore(tmp_path / "deep" / "models")
        store.save("kmeans", _estimate())
        assert store.load("kmeans", 8, "leo") is not None


class TestGetOrCalibrate:
    def test_first_call_calibrates_second_loads(self, tmp_path,
                                                cores_space,
                                                cores_dataset):
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=Machine(seed=31), space=cores_space,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=0), sample_count=6)
        store = EstimateStore(tmp_path)
        kmeans = get_benchmark("kmeans")

        first = store.get_or_calibrate("kmeans", controller, kmeans)
        clock_after_first = controller.machine.clock
        second = store.get_or_calibrate("kmeans", controller, kmeans)
        # Second call did not touch the machine (no new sampling).
        assert controller.machine.clock == clock_after_first
        np.testing.assert_allclose(second.rates, first.rates)
