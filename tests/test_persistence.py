"""Tests for repro.runtime.persistence (the estimate store)."""

import json
import threading
import zipfile

import numpy as np
import pytest

from repro.estimators.leo import LEOEstimator
from repro.platform.machine import Machine
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.persistence import SCHEMA_VERSION, EstimateStore
from repro.runtime.sampling import RandomSampler
from repro.workloads.suite import get_benchmark


def _estimate(n=8, name="leo"):
    return TradeoffEstimate(
        rates=np.linspace(10.0, 100.0, n),
        powers=np.linspace(100.0, 300.0, n),
        estimator_name=name, sampling_time=5.0, sampling_energy=700.0,
        fit_seconds=0.8)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        store = EstimateStore(tmp_path)
        original = _estimate()
        store.save("kmeans", original)
        loaded = store.load("kmeans", 8, "leo")
        np.testing.assert_allclose(loaded.rates, original.rates)
        np.testing.assert_allclose(loaded.powers, original.powers)
        assert loaded.estimator_name == "leo"
        assert loaded.sampling_time == 5.0
        assert loaded.fit_seconds == 0.8

    def test_missing_returns_none(self, tmp_path):
        store = EstimateStore(tmp_path)
        assert store.load("kmeans", 8, "leo") is None

    def test_keyed_by_estimator_and_size(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("kmeans", _estimate(n=8, name="leo"))
        store.save("kmeans", _estimate(n=8, name="online"))
        store.save("kmeans", _estimate(n=16, name="leo"))
        assert store.load("kmeans", 8, "leo") is not None
        assert store.load("kmeans", 8, "online") is not None
        assert store.load("kmeans", 16, "leo") is not None
        assert store.load("kmeans", 32, "leo") is None

    def test_delete(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("kmeans", _estimate())
        assert store.delete("kmeans", 8, "leo")
        assert not store.delete("kmeans", 8, "leo")
        assert store.load("kmeans", 8, "leo") is None

    def test_known_applications(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("kmeans", _estimate())
        store.save("swish", _estimate())
        assert store.known_applications() == ["kmeans", "swish"]

    def test_awkward_names_sanitized(self, tmp_path):
        store = EstimateStore(tmp_path)
        store.save("my app/v2", _estimate())
        assert store.load("my app/v2", 8, "leo") is not None

    def test_unsanitizable_name_rejected(self, tmp_path):
        store = EstimateStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("///", _estimate())

    def test_creates_directory(self, tmp_path):
        store = EstimateStore(tmp_path / "deep" / "models")
        store.save("kmeans", _estimate())
        assert store.load("kmeans", 8, "leo") is not None


class TestSchemaVersioning:
    def test_records_carry_schema_version(self, tmp_path):
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate())
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
        assert meta["schema_version"] == SCHEMA_VERSION

    def test_version1_record_without_key_still_loads(self, tmp_path):
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate())
        with np.load(path, allow_pickle=False) as data:
            rates, powers = data["rates"], data["powers"]
            meta = json.loads(str(data["meta"]))
        del meta["schema_version"]  # a pre-versioning record
        np.savez_compressed(path, rates=rates, powers=powers,
                            meta=np.array(json.dumps(meta)))
        assert store.load("kmeans", 8, "leo") is not None

    def test_future_schema_version_skipped(self, tmp_path, caplog):
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate())
        with np.load(path, allow_pickle=False) as data:
            rates, powers = data["rates"], data["powers"]
            meta = json.loads(str(data["meta"]))
        meta["schema_version"] = SCHEMA_VERSION + 10
        np.savez_compressed(path, rates=rates, powers=powers,
                            meta=np.array(json.dumps(meta)))
        with caplog.at_level("WARNING"):
            assert store.load("kmeans", 8, "leo") is None
        assert "schema_version" in caplog.text

    def test_corrupt_archive_returns_none(self, tmp_path, caplog):
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate())
        path.write_bytes(b"this is not a zip archive")
        with caplog.at_level("WARNING"):
            assert store.load("kmeans", 8, "leo") is None
        assert "unreadable" in caplog.text

    def test_truncated_archive_returns_none(self, tmp_path):
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate())
        path.write_bytes(path.read_bytes()[:40])
        assert store.load("kmeans", 8, "leo") is None

    def test_missing_array_key_returns_none(self, tmp_path):
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate())
        np.savez_compressed(path, rates=np.ones(8))  # no powers/meta
        assert store.load("kmeans", 8, "leo") is None

    def test_size_mismatch_still_raises(self, tmp_path):
        # A readable record under the wrong key is a bug, not corruption.
        store = EstimateStore(tmp_path)
        path = store.save("kmeans", _estimate(n=8))
        path.rename(store.directory / "kmeans--16--leo.npz")
        with pytest.raises(ValueError, match="covers 8"):
            store.load("kmeans", 16, "leo")

    def test_corrupt_record_recovers_via_get_or_calibrate(self, tmp_path,
                                                          cores_space,
                                                          cores_dataset):
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=Machine(seed=31), space=cores_space,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=0), sample_count=6)
        store = EstimateStore(tmp_path)
        kmeans = get_benchmark("kmeans")
        first = store.get_or_calibrate("kmeans", controller, kmeans)
        # Corrupt the record: the next call re-calibrates instead of
        # crashing mid-load.
        path = store._path("kmeans", len(cores_space), "leo")
        path.write_bytes(b"garbage")
        second = store.get_or_calibrate("kmeans", controller, kmeans)
        assert second.rates.size == first.rates.size
        assert store.load("kmeans", len(cores_space), "leo") is not None


class TestConcurrentAccess:
    def test_two_writers_atomic_replace(self, tmp_path):
        """Racing writers on one key: the survivor is one complete
        record, and no torn read is ever observed."""
        store = EstimateStore(tmp_path)
        n = 64
        variants = {
            1.0: _full_estimate(n, 1.0),
            2.0: _full_estimate(n, 2.0),
        }
        errors = []
        stop = threading.Event()

        def writer(fill):
            try:
                while not stop.is_set():
                    store.save("racy", variants[fill])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    loaded = store.load("racy", n, "leo")
                    if loaded is None:
                        continue
                    # A torn record would mix fills within one curve.
                    fill = loaded.rates[0]
                    assert fill in variants
                    np.testing.assert_array_equal(
                        loaded.rates, variants[fill].rates)
                    np.testing.assert_array_equal(
                        loaded.powers, variants[fill].powers)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(1.0,)),
                   threading.Thread(target=writer, args=(2.0,)),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(1.0, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(10.0)
        stop_timer.cancel()
        stop.set()
        assert not errors, errors
        survivor = store.load("racy", n, "leo")
        assert survivor is not None
        assert zipfile.is_zipfile(store._path("racy", n, "leo"))

    def test_tmp_files_do_not_leak_or_pollute_listing(self, tmp_path):
        store = EstimateStore(tmp_path)
        for _ in range(5):
            store.save("kmeans", _estimate())
        leftovers = [p for p in store.directory.iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []
        assert store.known_applications() == ["kmeans"]


def _full_estimate(n, fill):
    return TradeoffEstimate(rates=np.full(n, fill),
                            powers=np.full(n, fill * 10.0),
                            estimator_name="leo")


class TestGetOrCalibrate:
    def test_first_call_calibrates_second_loads(self, tmp_path,
                                                cores_space,
                                                cores_dataset):
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=Machine(seed=31), space=cores_space,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=0), sample_count=6)
        store = EstimateStore(tmp_path)
        kmeans = get_benchmark("kmeans")

        first = store.get_or_calibrate("kmeans", controller, kmeans)
        clock_after_first = controller.machine.clock
        second = store.get_or_calibrate("kmeans", controller, kmeans)
        # Second call did not touch the machine (no new sampling).
        assert controller.machine.clock == clock_after_first
        np.testing.assert_allclose(second.rates, first.rates)
