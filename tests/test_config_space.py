"""Tests for repro.platform.config_space."""

import numpy as np
import pytest

from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.dvfs import speed_ladder


def _config(cores=1, threads=None, mem=1, speed_idx=0):
    ladder = speed_ladder()
    return Configuration(cores=cores,
                         threads=threads if threads is not None else cores,
                         memory_controllers=mem, speed=ladder[speed_idx])


class TestConfiguration:
    def test_hyperthreading_flag(self):
        assert not _config(cores=4, threads=4).hyperthreading
        assert _config(cores=4, threads=8).hyperthreading
        assert _config(cores=4, threads=5).hyperthreading

    def test_rejects_threads_below_cores(self):
        with pytest.raises(ValueError):
            _config(cores=4, threads=3)

    def test_rejects_threads_above_double(self):
        with pytest.raises(ValueError):
            _config(cores=4, threads=9)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            _config(cores=0)

    def test_rejects_zero_memory_controllers(self):
        with pytest.raises(ValueError):
            _config(mem=0)

    def test_feature_vector_contents(self):
        config = _config(cores=4, threads=8, mem=2, speed_idx=3)
        np.testing.assert_allclose(config.feature_vector(),
                                   [4.0, 8.0, 2.0, 3.0])

    def test_frozen(self):
        config = _config()
        with pytest.raises(AttributeError):
            config.cores = 2


class TestPaperSpace:
    def test_has_1024_configurations(self, paper_space):
        assert len(paper_space) == 1024

    def test_no_duplicates(self, paper_space):
        keys = {(c.cores, c.threads, c.memory_controllers, c.speed.index)
                for c in paper_space}
        assert len(keys) == 1024

    def test_flattening_order(self, paper_space):
        """Memory controllers fastest, then speed, then HT, then cores."""
        c0, c1 = paper_space[0], paper_space[1]
        assert c0.memory_controllers == 1 and c1.memory_controllers == 2
        assert c0.speed.index == c1.speed.index == 0
        # After the two memory settings, speed advances.
        assert paper_space[2].speed.index == 1
        # Cores are the slowest-changing dimension.
        assert paper_space[0].cores == 1
        assert paper_space[-1].cores == 16

    def test_last_config_is_all_resources(self, paper_space):
        last = paper_space[-1]
        assert last.cores == 16
        assert last.threads == 32
        assert last.memory_controllers == 2
        assert last.speed.turbo

    def test_index_of_roundtrip(self, paper_space):
        for i in (0, 1, 511, 1023):
            assert paper_space.index_of(paper_space[i]) == i

    def test_contains(self, paper_space):
        assert paper_space[10] in paper_space
        foreign = _config(cores=3, threads=5)  # partial HT not in the space
        assert foreign not in paper_space

    def test_index_of_raises_for_foreign(self, paper_space):
        with pytest.raises(KeyError):
            paper_space.index_of(_config(cores=3, threads=5))

    def test_feature_matrix_shape(self, paper_space):
        features = paper_space.feature_matrix()
        assert features.shape == (1024, 4)
        assert features[:, 0].max() == 16  # cores
        assert features[:, 1].max() == 32  # threads
        assert features[:, 3].max() == 15  # speed index


class TestCoresOnlySpace:
    def test_has_32_configurations(self, cores_space):
        assert len(cores_space) == 32

    def test_logical_cpu_semantics(self, cores_space):
        """Config c allocates c+1 logical CPUs, HT beyond 16."""
        assert cores_space[0].cores == 1 and cores_space[0].threads == 1
        assert cores_space[15].cores == 16 and cores_space[15].threads == 16
        assert cores_space[16].cores == 16 and cores_space[16].threads == 17
        assert cores_space[31].cores == 16 and cores_space[31].threads == 32

    def test_fixed_speed_and_memory(self, cores_space):
        speeds = {c.speed.index for c in cores_space}
        mems = {c.memory_controllers for c in cores_space}
        assert len(speeds) == 1
        assert mems == {2}

    def test_uses_top_non_turbo_speed(self, cores_space):
        assert not cores_space[0].speed.turbo
        assert cores_space[0].speed.base_ghz == pytest.approx(2.9)


class TestSpaceValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConfigurationSpace([])

    def test_rejects_duplicates(self):
        config = _config()
        with pytest.raises(ValueError):
            ConfigurationSpace([config, config])

    def test_iteration_matches_indexing(self, cores_space):
        listed = list(cores_space)
        assert all(listed[i] is cores_space[i] for i in range(len(listed)))
