"""End-to-end generalization test on a non-paper platform.

Everything above the platform layer is supposed to be
topology-agnostic.  This exercises the whole stack — space construction,
profiling, leave-one-out estimation, LP, closed-loop run — on a small
single-socket embedded-class machine instead of the paper's dual-socket
server.
"""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.optimize.lp import EnergyMinimizer
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.platform.topology import Topology
from repro.runtime.controller import RuntimeController
from repro.runtime.sampling import RandomSampler
from repro.workloads.generator import ProfileGenerator
from repro.workloads.traces import OfflineDataset

EMBEDDED = Topology(sockets=1, cores_per_socket=4, threads_per_core=2,
                    memory_controllers=1, tdp_watts=15.0)


@pytest.fixture(scope="module")
def embedded_space():
    return ConfigurationSpace.paper_space(EMBEDDED)


@pytest.fixture(scope="module")
def embedded_setup(embedded_space):
    profiles = ProfileGenerator(seed=11).sample_suite(12)
    # Clamp generated scaling peaks into the small machine's range so the
    # suite is meaningful there.
    machine = Machine(EMBEDDED, seed=5)
    dataset = OfflineDataset.collect(machine, profiles, embedded_space,
                                     noisy=True)
    return profiles, dataset


class TestEmbeddedPlatform:
    def test_space_dimensions(self, embedded_space):
        # 4 cores x 2 ht x 1 mc x 16 speeds = 128 configurations.
        assert len(embedded_space) == 128
        assert max(c.threads for c in embedded_space) == 8
        assert max(c.memory_controllers for c in embedded_space) == 1

    def test_profiling_tables(self, embedded_setup, embedded_space):
        _, dataset = embedded_setup
        assert dataset.rates.shape == (12, 128)
        assert (dataset.rates > 0).all()
        assert (dataset.powers > 0).all()

    def test_leave_one_out_estimation(self, embedded_setup,
                                      embedded_space):
        profiles, dataset = embedded_setup
        target = profiles[0]
        view = dataset.leave_one_out(target.name)
        machine = Machine(EMBEDDED, seed=6)
        truth = np.array([machine.true_rate(target, c)
                          for c in embedded_space])
        rng = np.random.default_rng(2)
        indices = np.sort(rng.choice(128, 12, replace=False))
        problem = EstimationProblem(
            features=embedded_space.feature_matrix(),
            prior=view.prior_rates, observed_indices=indices,
            observed_values=truth[indices])
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        assert accuracy(estimate, truth) > 0.6

    def test_closed_loop_run(self, embedded_setup, embedded_space):
        profiles, dataset = embedded_setup
        target = profiles[1]
        view = dataset.leave_one_out(target.name)
        machine = Machine(EMBEDDED, seed=7)
        controller = RuntimeController(
            machine=machine, space=embedded_space,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=3), sample_count=12)
        estimate = controller.calibrate(target)
        truth_max = max(machine.true_rate(target, c)
                        for c in embedded_space)
        work = 0.4 * truth_max * 30.0
        report = controller.run(target, work, 30.0, estimate)
        assert report.met_target

        optimal = EnergyMinimizer(
            np.array([machine.true_rate(target, c)
                      for c in embedded_space]),
            np.array([machine.true_power(target, c)
                      for c in embedded_space]),
            machine.idle_power())
        assert report.energy <= 1.2 * optimal.min_energy(work, 30.0)

    def test_power_envelope_scales_with_tdp(self, embedded_setup,
                                            embedded_space):
        """The small machine draws far less than the server."""
        profiles, _ = embedded_setup
        machine = Machine(EMBEDDED, seed=8)
        peak = max(machine.true_power(profiles[0], c)
                   for c in embedded_space)
        server = Machine(seed=8)
        server_space = ConfigurationSpace.paper_space()
        server_peak = max(server.true_power(profiles[0], c)
                          for c in server_space)
        assert peak < server_peak
