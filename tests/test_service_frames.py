"""Property tests for the binary wire codec (protocol v2).

The codec's whole reason to exist is bit-exactness: every float64 —
subnormals, NaN payloads, ``-0.0``, ``±inf`` — must survive a frame
round trip with its exact bit pattern, something the JSON wire only
achieves for the values JSON can spell.  Hypothesis drives the value
universe; ``struct.pack('>d')`` is the bit-level oracle.  The negative
half of the contract matters just as much: every way a frame can be
damaged — truncation, bit flips, bad magic, future versions, trailing
bytes, unknown tags — must surface as the typed :class:`FrameError`,
never a raw struct/unicode/numpy exception.
"""

import io
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.frames import (
    BINARY_PROTOCOL_VERSION,
    MAGIC,
    MAX_FRAME_BYTES,
    PREFIX_SIZE,
    FrameError,
    decode_binary_frame,
    encode_binary_frame,
    encode_value,
    parse_prefix,
    read_binary_frame,
)

# Every float64, including NaNs (Hypothesis varies their payloads),
# infinities, signed zeros, and subnormals.
_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2 ** 70, max_value=2 ** 70),
    _floats,
    st.text(max_size=20),
    st.binary(max_size=20),
)

# The registry-record-shaped universe: scalars nested in lists and
# str-keyed dicts, the way model records and responses actually look.
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)

_bodies = st.dictionaries(st.text(max_size=8), _values, max_size=6)


def _bits(value: float) -> bytes:
    return struct.pack(">d", value)


def assert_bit_equal(left, right) -> None:
    """Structural equality with floats compared by bit pattern."""
    assert type(left) is type(right), (left, right)
    if isinstance(left, float):
        assert _bits(left) == _bits(right), (left, right)
    elif isinstance(left, dict):
        assert left.keys() == right.keys()
        for key in left:
            assert_bit_equal(left[key], right[key])
    elif isinstance(left, list):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert_bit_equal(a, b)
    else:
        assert left == right


class TestRoundTrip:
    @settings(deadline=None, max_examples=200)
    @given(_bodies)
    def test_any_body_round_trips_bit_exactly(self, body):
        assert_bit_equal(decode_binary_frame(encode_binary_frame(body)),
                         body)

    @settings(deadline=None, max_examples=200)
    @given(_floats)
    def test_every_float64_is_bit_exact(self, value):
        decoded = decode_binary_frame(
            encode_binary_frame({"x": value}))["x"]
        assert _bits(decoded) == _bits(value)

    @pytest.mark.parametrize("raw", [
        b"\x80\x00\x00\x00\x00\x00\x00\x00",  # -0.0
        b"\x00\x00\x00\x00\x00\x00\x00\x01",  # smallest subnormal
        b"\x7f\xf8\x00\x00\x00\x00\x12\x34",  # NaN with a payload
        b"\xff\xf8\xde\xad\xbe\xef\x00\x01",  # negative NaN, payload
        b"\x7f\xf0\x00\x00\x00\x00\x00\x00",  # +inf
    ])
    def test_adversarial_bit_patterns(self, raw):
        value = struct.unpack(">d", raw)[0]
        decoded = decode_binary_frame(
            encode_binary_frame({"x": value}))["x"]
        assert _bits(decoded) == raw

    @settings(deadline=None, max_examples=50)
    @given(st.dictionaries(st.text(max_size=8), _values, max_size=3))
    def test_trace_travels_in_the_header(self, trace):
        body = {"op": "ping", "trace": trace}
        frame = encode_binary_frame(body)
        decoded = decode_binary_frame(frame)
        if trace is None:
            assert "trace" not in decoded
        else:
            assert_bit_equal(decoded["trace"], trace)
        assert decoded["op"] == "ping"
        # The input dict must not lose its trace to encoding.
        assert body["trace"] is trace

    def test_registry_record_shape(self):
        record = {
            "app": "kmeans", "version": 3, "samples": 20,
            "rates": [1.5, float("nan"), -0.0, 5e-324],
            "meta": {"estimator": "leo", "warm": True, "extra": None},
            "blob": b"\x00\xff", "big": 2 ** 80,
        }
        assert_bit_equal(
            decode_binary_frame(encode_binary_frame(record)), record)

    def test_ndarray_round_trips_bit_exactly(self):
        array = np.array([[1.5, np.nan, -0.0], [np.inf, 5e-324, -2.25]])
        decoded = decode_binary_frame(
            encode_binary_frame({"a": array}))["a"]
        assert decoded.shape == array.shape
        assert decoded.dtype == np.float64
        assert decoded.tobytes() == array.tobytes()


class TestRejection:
    def _frame(self):
        return encode_binary_frame({"op": "ping", "value": 1.5})

    @settings(deadline=None, max_examples=60)
    @given(st.data())
    def test_any_truncation_is_typed(self, data):
        frame = self._frame()
        cut = data.draw(st.integers(min_value=1, max_value=len(frame) - 1))
        with pytest.raises(FrameError):
            decode_binary_frame(frame[:cut])

    @settings(deadline=None, max_examples=60)
    @given(st.data())
    def test_any_payload_bit_flip_is_typed(self, data):
        frame = bytearray(self._frame())
        # Corrupt anywhere past the prefix (flipping prefix bytes is
        # covered by the magic/version/length tests).
        offset = data.draw(st.integers(min_value=PREFIX_SIZE,
                                       max_value=len(frame) - 2))
        frame[offset] ^= 0x41
        with pytest.raises(FrameError):
            decode_binary_frame(bytes(frame))

    def test_bad_magic(self):
        with pytest.raises(FrameError, match="magic"):
            decode_binary_frame(b"{" + self._frame()[1:])

    def test_future_version(self):
        frame = bytearray(self._frame())
        frame[1] = BINARY_PROTOCOL_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_binary_frame(bytes(frame))

    def test_length_bound(self):
        prefix = MAGIC + bytes((BINARY_PROTOCOL_VERSION, 0)) + \
            struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="bound"):
            parse_prefix(prefix)

    def test_trailing_bytes(self):
        with pytest.raises(FrameError, match="trailing"):
            decode_binary_frame(self._frame() + b"x")

    def test_unknown_tag(self):
        parts = []
        encode_value({"op": "ping"}, parts)
        payload = b"".join(parts)
        # Splice an unknown tag into an otherwise valid frame body.
        bad = payload[:5] + b"?" + payload[6:]
        import zlib
        frame = (MAGIC + bytes((BINARY_PROTOCOL_VERSION, 0))
                 + struct.pack(">I", len(bad)) + bad
                 + struct.pack(">I", zlib.crc32(bad)) + b"\n")
        with pytest.raises(FrameError):
            decode_binary_frame(frame)

    def test_unencodable_type_is_typed(self):
        with pytest.raises(FrameError, match="not encodable"):
            encode_binary_frame({"x": object()})

    def test_non_str_dict_key_is_typed(self):
        with pytest.raises(FrameError, match="keys must be str"):
            encode_binary_frame({"x": {1: 2}})

    def test_terminator_keeps_v1_readline_alive(self):
        # The escape hatch behind wire negotiation: a JSON-lines peer
        # doing readline() on any binary frame must terminate.
        frame = self._frame()
        assert frame.endswith(b"\n")
        assert io.BytesIO(frame).readline() != b""


class TestStreamReads:
    def test_reads_one_frame_exactly(self):
        frame = encode_binary_frame({"op": "ping"})
        stream = io.BytesIO(frame + b"extra")
        assert read_binary_frame(stream) == frame
        assert stream.read() == b"extra"

    def test_sniffed_first_byte(self):
        frame = encode_binary_frame({"op": "ping"})
        stream = io.BytesIO(frame[1:])
        assert read_binary_frame(stream, first=frame[:1]) == frame

    def test_clean_eof_is_connection_error(self):
        with pytest.raises(ConnectionError):
            read_binary_frame(io.BytesIO(b""))

    def test_mid_frame_eof_is_typed(self):
        frame = encode_binary_frame({"op": "ping"})
        with pytest.raises(FrameError, match="truncated"):
            read_binary_frame(io.BytesIO(frame[:-3]))
