"""Tests for repro.telemetry.energy."""

import numpy as np
import pytest

from repro.telemetry.energy import (
    average_power,
    energy_of_log,
    energy_of_measurements,
    integrate_power,
)
from repro.telemetry.power_meter import PowerSample, WattsUpMeter


class TestIntegratePower:
    def test_constant_power(self):
        assert integrate_power([0, 10], [100, 100]) == pytest.approx(1000.0)

    def test_linear_ramp(self):
        assert integrate_power([0, 2], [0, 100]) == pytest.approx(100.0)

    def test_empty_and_single(self):
        assert integrate_power([], []) == 0.0
        assert integrate_power([1.0], [50.0]) == 0.0

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            integrate_power([0, 1], [10])

    def test_rejects_decreasing_time(self):
        with pytest.raises(ValueError):
            integrate_power([1, 0], [10, 10])

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            integrate_power([0, 1], [10, -1])

    def test_matches_numpy_trapezoid(self, rng):
        times = np.sort(rng.uniform(0, 100, 50))
        watts = rng.uniform(50, 300, 50)
        assert integrate_power(times, watts) == pytest.approx(
            float(np.trapezoid(watts, times)))


class TestLogIntegration:
    def test_energy_of_log(self):
        log = [PowerSample(0.0, 100.0), PowerSample(1.0, 100.0),
               PowerSample(2.0, 200.0)]
        assert energy_of_log(log) == pytest.approx(100.0 + 150.0)

    def test_meter_log_energy_close_to_machine(self, machine, kmeans,
                                               cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[7])
        meter = WattsUpMeter(machine, noise_std=0.0, quantum=0.0)
        meter.sample()  # anchor at t=0
        meter.record_window(10.0)
        logged = energy_of_log(meter.log)
        assert logged == pytest.approx(machine.total_energy, rel=0.05)

    def test_average_power(self):
        log = [PowerSample(0.0, 100.0), PowerSample(2.0, 200.0)]
        assert average_power(log) == pytest.approx(150.0)

    def test_average_power_single_sample(self):
        assert average_power([PowerSample(0.0, 42.0)]) == 42.0

    def test_average_power_empty_raises(self):
        with pytest.raises(ValueError):
            average_power([])


class TestMeasurementEnergy:
    def test_sums_window_energies(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[3])
        measurements = [machine.run_for(1.0) for _ in range(4)]
        assert energy_of_measurements(measurements) == pytest.approx(
            machine.total_energy)
