"""Documentation-vs-code consistency guards.

DESIGN.md's module map, README's example table, and the CLI's help are
promises; these tests fail when a rename or deletion would silently
break them.
"""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestDesignModuleMap:
    def test_every_mapped_module_exists(self):
        """Each `name.py` mentioned in DESIGN.md's inventory exists."""
        text = (ROOT / "DESIGN.md").read_text()
        block = text.split("```")[1]  # the module-map code block
        missing = []
        current_pkg = None
        for line in block.splitlines():
            pkg = re.match(r"\s{2}(\w+)/", line)
            if pkg:
                current_pkg = pkg.group(1)
            mod = re.match(r"\s{4}(\w+)\.py", line)
            if mod and current_pkg:
                path = ROOT / "src" / "repro" / current_pkg / (
                    mod.group(1) + ".py")
                if not path.exists():
                    missing.append(str(path))
        assert not missing, missing

    def test_every_bench_mentioned_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        for name in re.findall(r"benchmarks/(test_\w+\.py)", text):
            assert (ROOT / "benchmarks" / name).exists(), name


class TestReadme:
    def test_example_table_matches_directory(self):
        text = (ROOT / "README.md").read_text()
        mentioned = set(re.findall(r"`examples/(\w+\.py)`", text))
        present = {p.name for p in (ROOT / "examples").glob("*.py")}
        assert mentioned == present

    def test_reproduce_targets_match_cli(self):
        from repro.cli import _build_parser
        text = (ROOT / "README.md").read_text()
        # README advertises: `python -m repro reproduce fig5` (also ...)
        advertised = {"fig1", "fig5", "fig6", "fig11", "fig12", "table1"}
        for target in advertised:
            assert target in text
        parser = _build_parser()
        args = parser.parse_args(["reproduce", "fig5"])
        assert args.target == "fig5"
        with pytest.raises(SystemExit):
            parser.parse_args(["reproduce", "fig99"])


class TestReproducingDoc:
    def test_every_listed_bench_exists(self):
        text = (ROOT / "docs" / "REPRODUCING.md").read_text()
        for name in re.findall(r"`(test_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_all_benches_are_listed(self):
        text = (ROOT / "docs" / "REPRODUCING.md").read_text()
        for path in (ROOT / "benchmarks").glob("test_*.py"):
            assert path.name in text, f"{path.name} undocumented"


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list-benchmarks"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0
        assert "kmeans" in result.stdout

    def test_bad_command_exits_nonzero(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True, text=True, timeout=60)
        assert result.returncode != 0
