"""Tests for repro.core.observation."""

import numpy as np
import pytest

from repro.core.observation import ObservationSet


class TestConstruction:
    def test_basic_properties(self):
        values = np.arange(12, dtype=float).reshape(3, 4) + 1
        mask = np.ones((3, 4), dtype=bool)
        obs = ObservationSet(values, mask)
        assert obs.num_applications == 3
        assert obs.num_configs == 4
        assert obs.total_observations == 12

    def test_unobserved_entries_zeroed(self):
        values = np.full((1, 3), 7.0)
        mask = np.array([[True, False, True]])
        obs = ObservationSet(values, mask)
        np.testing.assert_allclose(obs.values[0], [7.0, 0.0, 7.0])

    def test_nan_allowed_when_unobserved(self):
        values = np.array([[1.0, np.nan]])
        mask = np.array([[True, False]])
        obs = ObservationSet(values, mask)
        assert obs.values[0, 1] == 0.0

    def test_nan_rejected_when_observed(self):
        with pytest.raises(ValueError):
            ObservationSet(np.array([[np.nan]]), np.array([[True]]))

    def test_empty_row_rejected(self):
        values = np.ones((2, 3))
        mask = np.array([[True, True, True], [False, False, False]])
        with pytest.raises(ValueError):
            ObservationSet(values, mask)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ObservationSet(np.ones((2, 3)), np.ones((2, 4), dtype=bool))


class TestAccessors:
    def test_observed_indices_and_values(self):
        values = np.array([[1.0, 2.0, 3.0, 4.0]])
        mask = np.array([[True, False, False, True]])
        obs = ObservationSet(values, mask)
        np.testing.assert_array_equal(obs.observed_indices(0), [0, 3])
        np.testing.assert_allclose(obs.observed_values(0), [1.0, 4.0])

    def test_frobenius_count_matches_paper_definition(self):
        """||L||_F^2 equals the total observation count (Eq. 4)."""
        mask = np.array([[True, True], [True, False]])
        obs = ObservationSet(np.ones((2, 2)), mask)
        l_matrix = mask.astype(float)
        assert obs.total_observations == pytest.approx(
            np.linalg.norm(l_matrix, "fro") ** 2)


class TestMaskGroups:
    def test_paper_layout_has_two_groups(self):
        prior = np.ones((4, 6))
        obs = ObservationSet.from_prior_and_target(
            prior, [1, 3], [5.0, 6.0])
        groups = obs.mask_groups()
        assert len(groups) == 2
        sizes = sorted(len(apps) for _, apps in groups)
        assert sizes == [1, 4]

    def test_group_indices_match_masks(self):
        prior = np.ones((2, 5))
        obs = ObservationSet.from_prior_and_target(prior, [0, 4], [1.0, 2.0])
        for obs_idx, apps in obs.mask_groups():
            for app in apps:
                np.testing.assert_array_equal(
                    obs.observed_indices(app), obs_idx)

    def test_identical_sparse_masks_grouped(self):
        values = np.ones((3, 4))
        mask = np.array([[True, False, True, False]] * 3)
        obs = ObservationSet(values, mask)
        assert len(obs.mask_groups()) == 1


class TestFromPriorAndTarget:
    def test_layout(self):
        prior = np.arange(8, dtype=float).reshape(2, 4) + 1
        obs = ObservationSet.from_prior_and_target(prior, [2], [9.0])
        assert obs.num_applications == 3
        assert obs.target_row == 2
        np.testing.assert_allclose(obs.values[:2], prior)
        assert obs.values[2, 2] == 9.0
        assert obs.mask[2].sum() == 1

    def test_empty_prior_needs_num_configs(self):
        obs = ObservationSet.from_prior_and_target(
            np.empty((0, 0)), [1], [2.0], num_configs=4)
        assert obs.num_applications == 1
        assert obs.num_configs == 4

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ValueError):
            ObservationSet.from_prior_and_target(
                np.ones((1, 4)), [1, 1], [2.0, 3.0])

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            ObservationSet.from_prior_and_target(np.ones((1, 4)), [4], [2.0])

    def test_rejects_no_target_observations(self):
        with pytest.raises(ValueError):
            ObservationSet.from_prior_and_target(np.ones((1, 4)), [], [])

    def test_rejects_misaligned_target(self):
        with pytest.raises(ValueError):
            ObservationSet.from_prior_and_target(
                np.ones((1, 4)), [1, 2], [2.0])
