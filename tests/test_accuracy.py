"""Tests for repro.core.accuracy: the Eq. (5) metric and friends."""

import numpy as np
import pytest

from repro.core.accuracy import accuracy, mape, normalized_to, rmse


class TestAccuracy:
    def test_perfect_estimate_scores_one(self):
        y = np.array([1.0, 2.0, 3.0])
        assert accuracy(y, y) == 1.0

    def test_mean_estimate_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert accuracy(np.full(3, y.mean()), y) == 0.0

    def test_worse_than_mean_clipped_to_zero(self):
        """Eq. (5) has an explicit max(..., 0)."""
        y = np.array([1.0, 2.0, 3.0])
        awful = np.array([100.0, -50.0, 7.0])
        assert accuracy(awful, y) == 0.0

    def test_matches_r_squared_when_positive(self):
        rng = np.random.default_rng(0)
        y = rng.uniform(1, 10, 50)
        y_hat = y + rng.normal(0, 0.5, 50)
        sse = np.sum((y_hat - y) ** 2)
        sst = np.sum((y - y.mean()) ** 2)
        assert accuracy(y_hat, y) == pytest.approx(1 - sse / sst)

    def test_scale_invariance_of_pairs(self):
        """Scaling estimate and truth together leaves accuracy unchanged."""
        rng = np.random.default_rng(1)
        y = rng.uniform(1, 10, 30)
        y_hat = y * rng.uniform(0.9, 1.1, 30)
        assert accuracy(y_hat, y) == pytest.approx(
            accuracy(1000 * y_hat, 1000 * y))

    def test_constant_truth_edge_case(self):
        y = np.full(4, 5.0)
        assert accuracy(y, y) == 1.0
        assert accuracy(y + 0.1, y) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            accuracy([], [])
        with pytest.raises(ValueError):
            accuracy([np.nan], [1.0])


class TestCompanionMetrics:
    def test_rmse(self):
        assert rmse([1.0, 3.0], [0.0, 0.0]) == pytest.approx(
            np.sqrt(5.0))

    def test_rmse_zero_for_perfect(self):
        assert rmse([2.0, 2.0], [2.0, 2.0]) == 0.0

    def test_mape(self):
        assert mape([110.0, 90.0], [100.0, 100.0]) == pytest.approx(0.1)

    def test_mape_rejects_zero_truth(self):
        with pytest.raises(ValueError):
            mape([1.0], [0.0])

    def test_normalized_to(self):
        np.testing.assert_allclose(normalized_to([2.0, 4.0], 2.0),
                                   [1.0, 2.0])

    def test_normalized_to_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalized_to([1.0], 0.0)
