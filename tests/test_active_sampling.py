"""Tests for repro.runtime.active_sampling (uncertainty-guided calibration)."""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.platform.machine import Machine
from repro.runtime.active_sampling import ActiveCalibrator
from repro.workloads.suite import get_benchmark


@pytest.fixture()
def calibrator(cores_space, cores_dataset):
    view = cores_dataset.leave_one_out("kmeans")
    return ActiveCalibrator(
        machine=Machine(seed=21), space=cores_space,
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        seed_count=4, batch_size=2)


class TestValidation:
    def test_constructor_bounds(self, cores_space, cores_dataset):
        view = cores_dataset.leave_one_out("kmeans")
        kwargs = dict(machine=Machine(), space=cores_space,
                      prior_rates=view.prior_rates,
                      prior_powers=view.prior_powers)
        with pytest.raises(ValueError):
            ActiveCalibrator(seed_count=1, **kwargs)
        with pytest.raises(ValueError):
            ActiveCalibrator(batch_size=0, **kwargs)
        with pytest.raises(ValueError):
            ActiveCalibrator(sample_window=0.0, **kwargs)

    def test_budget_bounds(self, calibrator, kmeans):
        with pytest.raises(ValueError):
            calibrator.calibrate(kmeans, budget=3)  # below seed_count
        with pytest.raises(ValueError):
            calibrator.calibrate(kmeans, budget=33)  # above space size


class TestCalibration:
    def test_exact_budget_spent(self, calibrator, kmeans):
        result = calibrator.calibrate(kmeans, budget=10)
        assert result.indices.size == 10
        assert len(np.unique(result.indices)) == 10
        assert result.sampling_time == pytest.approx(10.0)

    def test_curves_positive_and_complete(self, calibrator, kmeans,
                                          cores_space):
        result = calibrator.calibrate(kmeans, budget=10)
        assert result.rates.shape == (len(cores_space),)
        assert (result.rates > 0).all()
        assert (result.powers > 0).all()
        assert (result.rate_uncertainty >= 0).all()

    def test_accurate_with_modest_budget(self, calibrator, kmeans,
                                         cores_space):
        result = calibrator.calibrate(kmeans, budget=10)
        machine = Machine()
        truth = np.array([machine.true_rate(kmeans, c) for c in cores_space])
        assert accuracy(result.rates, truth) > 0.85

    def test_uncertainty_lower_at_measured_configs(self, calibrator,
                                                   kmeans):
        result = calibrator.calibrate(kmeans, budget=12)
        measured = result.rate_uncertainty[result.indices]
        unmeasured_mask = np.ones(32, dtype=bool)
        unmeasured_mask[result.indices] = False
        unmeasured = result.rate_uncertainty[unmeasured_mask]
        assert measured.mean() < unmeasured.mean()

    def test_acquisition_targets_uncertainty(self, cores_space,
                                             cores_dataset):
        """Acquired (non-seed) points favour high-variance regions."""
        view = cores_dataset.leave_one_out("kmeans")
        calibrator = ActiveCalibrator(
            machine=Machine(seed=22), space=cores_space,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            seed_count=4, batch_size=1)
        result = calibrator.calibrate(get_benchmark("kmeans"), budget=8)
        seeds = set(result.indices[:4])
        acquired = [i for i in result.indices if i not in seeds]
        assert len(acquired) == 4

    def test_energy_charged(self, calibrator, kmeans):
        result = calibrator.calibrate(kmeans, budget=6)
        assert result.sampling_energy > 6 * 50.0  # > 50 W for 6 s


class TestComparisonWithRandom:
    def test_at_least_random_quality_at_equal_budget(self, cores_space,
                                                     cores_dataset):
        """Active sampling matches random sampling's accuracy (usually
        beats it on adversarial shapes; never collapses)."""
        from repro.estimators.base import (EstimationProblem,
                                           normalize_problem)
        from repro.estimators.leo import LEOEstimator
        from repro.runtime.sampling import RandomSampler

        budget = 8
        kmeans = get_benchmark("kmeans")
        view = cores_dataset.leave_one_out("kmeans")
        machine = Machine()
        truth = np.array([machine.true_rate(kmeans, c) for c in cores_space])

        active = ActiveCalibrator(
            machine=Machine(seed=23), space=cores_space,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            seed_count=4, batch_size=2)
        active_acc = accuracy(active.calibrate(kmeans, budget).rates, truth)

        random_accs = []
        for seed in range(3):
            indices = RandomSampler(seed=seed).select(32, budget)
            sampler = Machine(seed=24 + seed)
            sampler.load(kmeans)
            observed = []
            for i in indices:
                sampler.apply(cores_space[int(i)])
                observed.append(sampler.run_for(1.0).rate)
            problem = EstimationProblem(
                features=cores_space.feature_matrix(),
                prior=view.prior_rates, observed_indices=indices,
                observed_values=np.array(observed))
            normalized, scale = normalize_problem(problem)
            estimate = LEOEstimator().estimate(normalized) * scale
            random_accs.append(accuracy(estimate, truth))

        assert active_acc > np.mean(random_accs) - 0.1
