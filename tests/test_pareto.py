"""Tests for repro.optimize.pareto."""

import numpy as np
import pytest

from repro.optimize.pareto import TradeoffFrontier, pareto_optimal_mask


class TestParetoMask:
    def test_simple_domination(self):
        # (rate, power): config 1 dominates config 0.
        mask = pareto_optimal_mask([1.0, 2.0], [100.0, 90.0])
        assert list(mask) == [False, True]

    def test_incomparable_both_survive(self):
        mask = pareto_optimal_mask([1.0, 2.0], [90.0, 100.0])
        assert list(mask) == [True, True]

    def test_equal_rate_cheaper_wins(self):
        mask = pareto_optimal_mask([1.0, 1.0], [90.0, 100.0])
        assert list(mask) == [True, False]

    def test_equal_power_faster_wins(self):
        mask = pareto_optimal_mask([1.0, 2.0], [90.0, 90.0])
        assert list(mask) == [False, True]

    def test_exact_ties_all_survive(self):
        mask = pareto_optimal_mask([1.0, 1.0], [90.0, 90.0])
        assert list(mask) == [True, True]

    def test_none_dominated_on_a_frontier(self):
        rates = np.array([1.0, 2.0, 3.0, 4.0])
        powers = np.array([10.0, 20.0, 35.0, 60.0])
        assert pareto_optimal_mask(rates, powers).all()

    def test_matches_brute_force(self, rng):
        rates = rng.uniform(1, 100, 60)
        powers = rng.uniform(50, 300, 60)
        mask = pareto_optimal_mask(rates, powers)
        for i in range(60):
            dominated = any(
                rates[j] >= rates[i] and powers[j] <= powers[i]
                and (rates[j] > rates[i] or powers[j] < powers[i])
                for j in range(60))
            assert mask[i] == (not dominated)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            pareto_optimal_mask([1.0], [1.0, 2.0])


class TestTradeoffFrontier:
    def test_vertices_sorted_by_rate(self, rng):
        rates = rng.uniform(1, 100, 50)
        powers = rng.uniform(50, 300, 50)
        frontier = TradeoffFrontier(rates, powers, idle_power=40.0)
        vertex_rates = [v.rate for v in frontier.vertices]
        assert vertex_rates == sorted(vertex_rates)

    def test_idle_anchor_is_first_vertex(self):
        frontier = TradeoffFrontier([1.0, 2.0], [100.0, 150.0],
                                    idle_power=80.0)
        first = frontier.vertices[0]
        assert first.rate == 0.0
        assert first.power == 80.0
        assert first.config_index is None

    def test_hull_is_convex(self, rng):
        rates = rng.uniform(1, 100, 80)
        powers = rng.uniform(50, 300, 80)
        frontier = TradeoffFrontier(rates, powers, idle_power=40.0)
        verts = frontier.vertices
        slopes = [(b.power - a.power) / (b.rate - a.rate)
                  for a, b in zip(verts, verts[1:])]
        assert all(s1 <= s2 + 1e-9 for s1, s2 in zip(slopes, slopes[1:]))

    def test_hull_below_all_points(self, rng):
        rates = rng.uniform(1, 100, 80)
        powers = rng.uniform(50, 300, 80)
        frontier = TradeoffFrontier(rates, powers, idle_power=40.0)
        for r, p in zip(rates, powers):
            assert frontier.power_at(r) <= p + 1e-9

    def test_power_at_vertex_is_exact(self):
        frontier = TradeoffFrontier([1.0, 2.0, 4.0], [100.0, 110.0, 200.0],
                                    idle_power=80.0)
        for vertex in frontier.vertices:
            assert frontier.power_at(vertex.rate) == pytest.approx(
                vertex.power)

    def test_interpolation_between_vertices(self):
        frontier = TradeoffFrontier([2.0], [120.0], idle_power=80.0)
        assert frontier.power_at(1.0) == pytest.approx(100.0)

    def test_bracket_weights(self):
        frontier = TradeoffFrontier([2.0], [120.0], idle_power=80.0)
        low, high, lam = frontier.bracket(0.5)
        assert low.rate == 0.0 and high.rate == 2.0
        assert lam == pytest.approx(0.25)

    def test_bracket_at_vertex_degenerate(self):
        # (2, 100) lies below the idle-(4, 150) chord, so it is a vertex.
        frontier = TradeoffFrontier([2.0, 4.0], [100.0, 150.0],
                                    idle_power=80.0)
        low, high, lam = frontier.bracket(2.0)
        assert low is high
        assert low.rate == 2.0
        assert lam == 0.0

    def test_unachievable_rate_raises(self):
        frontier = TradeoffFrontier([2.0], [120.0], idle_power=80.0)
        with pytest.raises(ValueError):
            frontier.power_at(3.0)
        with pytest.raises(ValueError):
            frontier.power_at(-0.1)

    def test_without_idle_anchor(self):
        frontier = TradeoffFrontier([2.0, 4.0], [120.0, 150.0])
        assert frontier.min_rate == 2.0
        assert not frontier.achievable(1.0)

    def test_energy_per_work_vertex(self):
        # power/rate: 60, 37.5, 50 -> the 4-rate config wins.
        frontier = TradeoffFrontier([2.0, 4.0, 6.0], [120.0, 150.0, 300.0],
                                    idle_power=80.0)
        best = frontier.energy_per_work()
        assert best.rate == 4.0

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValueError):
            TradeoffFrontier([0.0], [100.0])
        with pytest.raises(ValueError):
            TradeoffFrontier([1.0], [0.0])
        with pytest.raises(ValueError):
            TradeoffFrontier([1.0], [100.0], idle_power=-5.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            TradeoffFrontier([np.nan], [100.0])

    def test_duplicate_rates_keep_cheapest(self):
        frontier = TradeoffFrontier([2.0, 2.0], [120.0, 100.0],
                                    idle_power=80.0)
        assert frontier.power_at(2.0) == pytest.approx(100.0)
