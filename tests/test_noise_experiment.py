"""Tests for repro.experiments.noise."""

import pytest

from repro.experiments.harness import default_context
from repro.experiments.noise import noise_experiment


@pytest.fixture(scope="module")
def cores_ctx():
    return default_context(space_kind="cores", seed=0)


class TestNoiseExperiment:
    def test_structure(self, cores_ctx):
        result = noise_experiment(cores_ctx, noise_levels=(0.0, 0.1),
                                  benchmarks=("kmeans",), trials=1,
                                  sample_count=8)
        assert result.noise_levels == (0.0, 0.1)
        assert all(len(v) == 2 for v in result.perf.values())
        for values in result.perf.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_noise_hurts_online_more_than_leo(self, cores_ctx):
        result = noise_experiment(cores_ctx, noise_levels=(0.0, 0.2),
                                  benchmarks=("kmeans", "swish"),
                                  trials=2, sample_count=8)
        leo_drop = result.perf["leo"][0] - result.perf["leo"][1]
        online_drop = result.perf["online"][0] - result.perf["online"][1]
        assert online_drop > leo_drop

    def test_validation(self, cores_ctx):
        with pytest.raises(ValueError):
            noise_experiment(cores_ctx, noise_levels=(-0.1,))
        with pytest.raises(ValueError):
            noise_experiment(cores_ctx, trials=0)
