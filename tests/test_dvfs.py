"""Tests for repro.platform.dvfs."""

import numpy as np
import pytest

from repro.platform.dvfs import (
    DVFS_FREQUENCIES_GHZ,
    NOMINAL_GHZ,
    TURBO_INDEX,
    TURBO_PEAK_GHZ,
    SpeedSetting,
    dynamic_power_scale,
    speed_ladder,
    voltage_at,
)


class TestFrequencyLadder:
    def test_fifteen_dvfs_steps(self):
        assert len(DVFS_FREQUENCIES_GHZ) == 15

    def test_range_matches_paper(self):
        assert DVFS_FREQUENCIES_GHZ[0] == pytest.approx(1.2)
        assert DVFS_FREQUENCIES_GHZ[-1] == pytest.approx(2.9)

    def test_monotonically_increasing(self):
        assert all(a < b for a, b in zip(DVFS_FREQUENCIES_GHZ,
                                         DVFS_FREQUENCIES_GHZ[1:]))

    def test_ladder_has_sixteen_settings(self):
        ladder = speed_ladder()
        assert len(ladder) == 16
        assert ladder[-1].turbo
        assert not any(s.turbo for s in ladder[:-1])

    def test_ladder_indices_are_positions(self):
        for i, setting in enumerate(speed_ladder()):
            assert setting.index == i

    def test_turbo_index_constant(self):
        assert TURBO_INDEX == 15


class TestEffectiveFrequency:
    def test_non_turbo_delivers_base(self):
        setting = speed_ladder()[3]
        for active in (1, 8, 16):
            assert setting.effective_ghz(active, 16) == setting.base_ghz

    def test_turbo_single_core_peak(self):
        turbo = speed_ladder()[-1]
        assert turbo.effective_ghz(1, 16) == pytest.approx(TURBO_PEAK_GHZ)

    def test_turbo_decreases_with_active_cores(self):
        turbo = speed_ladder()[-1]
        freqs = [turbo.effective_ghz(k, 16) for k in range(1, 17)]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_turbo_always_above_nominal(self):
        turbo = speed_ladder()[-1]
        for k in range(1, 17):
            assert turbo.effective_ghz(k, 16) > NOMINAL_GHZ

    def test_turbo_zero_active_is_base(self):
        turbo = speed_ladder()[-1]
        assert turbo.effective_ghz(0, 16) == turbo.base_ghz

    def test_rejects_negative_active(self):
        with pytest.raises(ValueError):
            speed_ladder()[0].effective_ghz(-1, 16)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            speed_ladder()[0].effective_ghz(1, 0)

    def test_single_core_machine_turbo(self):
        turbo = SpeedSetting(index=0, base_ghz=NOMINAL_GHZ, turbo=True)
        assert turbo.effective_ghz(1, 1) == pytest.approx(TURBO_PEAK_GHZ)


class TestVoltageAndPower:
    def test_voltage_endpoints(self):
        assert voltage_at(1.2) == pytest.approx(0.85)
        assert voltage_at(2.9) == pytest.approx(1.20)

    def test_voltage_monotone(self):
        freqs = np.linspace(1.2, 3.8, 20)
        volts = [voltage_at(f) for f in freqs]
        assert all(a < b for a, b in zip(volts, volts[1:]))

    def test_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            voltage_at(0.0)

    def test_dynamic_power_unity_at_nominal(self):
        assert dynamic_power_scale(NOMINAL_GHZ) == pytest.approx(1.0)

    def test_dynamic_power_superlinear(self):
        # V^2 f scaling: halving frequency saves more than half the power.
        assert dynamic_power_scale(1.45) < 0.5

    def test_dynamic_power_monotone(self):
        freqs = np.linspace(1.2, 3.8, 30)
        scales = [dynamic_power_scale(f) for f in freqs]
        assert all(a < b for a, b in zip(scales, scales[1:]))
