"""Tests for the cluster co-scheduling experiment and its CLI surface.

The parallel-harness contract extends to the new experiment: fanning
the (cap, policy) cells across worker processes must not change a bit
of any result.  The sweep itself is exercised on a reduced grid; the
full acceptance story (joint beats the equal split at a loose cap,
meets deadlines the split misses at a tight one) is the CI gate in
benchmarks/cluster_smoke.py.
"""

import dataclasses

import pytest

from repro.cli import main
from repro.experiments.cluster_energy import (
    ClusterRun,
    cluster_energy_experiment,
    joint_vs_static,
    summarize_runs,
    tenant_workloads,
)
from repro.experiments.harness import ExperimentContext


@pytest.fixture(scope="module")
def ctx(cores_space, suite, cores_dataset, cores_truth):
    return ExperimentContext(space=cores_space, suite=tuple(suite),
                            dataset=cores_dataset, truth=cores_truth,
                            seed=0)


@pytest.fixture(scope="module")
def small_grid(ctx):
    """One cap, two policies, two tenants — the smallest real sweep."""
    return dict(ctx=ctx, benchmarks=("kmeans", "blackscholes"),
                utilizations=(0.3, 0.4), caps=(220.0,),
                deadline=15.0, policies=("joint", "static"))


class TestSweep:
    def test_serial_sweep_invariants(self, small_grid):
        runs = cluster_energy_experiment(workers=1, **small_grid)
        assert len(runs) == 2
        assert {r.policy for r in runs} == {"joint", "static"}
        for run in runs:
            assert run.cap_respected
            assert run.max_peak_watts <= run.cap_watts * (1.0 + 1e-6)
            assert run.total_energy > 0
            assert run.work_done > 0
            assert set(run.tenant_energy) == {"kmeans", "blackscholes"}

    def test_parallel_results_bit_equal(self, small_grid):
        serial = cluster_energy_experiment(workers=1, **small_grid)
        parallel = cluster_energy_experiment(workers=2, **small_grid)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestWorkloadSizing:
    def test_work_scales_with_utilization(self, ctx):
        low = tenant_workloads(ctx, ("kmeans", "blackscholes"),
                               (0.2, 0.2), 15.0)
        high = tenant_workloads(ctx, ("kmeans", "blackscholes"),
                                (0.4, 0.4), 15.0)
        for (name_l, work_l), (name_h, work_h) in zip(low, high):
            assert name_l == name_h
            assert work_h == pytest.approx(2.0 * work_l)

    def test_mismatched_lengths_rejected(self, ctx):
        with pytest.raises(ValueError, match="utilizations"):
            tenant_workloads(ctx, ("kmeans",), (0.5, 0.5), 10.0)


def fake_run(cap, policy, energy, missed=()):
    return ClusterRun(cap_watts=cap, policy=policy, total_energy=energy,
                      work_done=100.0, work_target=100.0,
                      max_peak_watts=cap - 10.0, cap_respected=True,
                      reallocations=1, missed=list(missed),
                      tenant_energy={"a": energy})


class TestReporting:
    def test_energy_per_work(self):
        run = fake_run(200.0, "joint", 500.0)
        assert run.energy_per_work == pytest.approx(5.0)

    def test_summarize_runs_rows(self):
        rows = summarize_runs([fake_run(200.0, "joint", 500.0),
                               fake_run(200.0, "static", 600.0,
                                        missed=("a",))])
        assert len(rows) == 2
        assert rows[0][1] == "joint"
        assert rows[1][6] == "a"

    def test_joint_vs_static_pivots_by_cap(self):
        table = joint_vs_static([fake_run(200.0, "joint", 500.0),
                                 fake_run(200.0, "static", 600.0),
                                 fake_run(150.0, "joint", 550.0)])
        assert table[200.0] == {"joint": 500.0, "static": 600.0}
        assert table[150.0] == {"joint": 550.0}


class TestCli:
    def test_cluster_command_smoke(self, capsys):
        code = main(["cluster", "--benchmarks", "kmeans,blackscholes",
                     "--utilizations", "0.3,0.4", "--caps", "220",
                     "--deadline", "15", "--space", "cores"])
        assert code == 0
        out = capsys.readouterr().out
        assert "joint" in out and "static" in out and "race" in out
        assert "cap ok" in out

    def test_cluster_rejects_mismatched_lists(self, capsys):
        code = main(["cluster", "--benchmarks", "kmeans",
                     "--utilizations", "0.3,0.4", "--space", "cores"])
        assert code == 1
        assert "utilizations" in capsys.readouterr().err
