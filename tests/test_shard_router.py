"""Tests for repro.shard.router (consistent hashing + health).

The two contracts that make a fleet of independent clients coherent:
every router instance computes the *same* owner for the same tenant
(determinism — no coordination, no ``PYTHONHASHSEED`` dependence), and
removing a shard remaps *only* the tenants it owned (minimal
disruption).  Health is the shedding contract: a down owner raises the
typed :class:`ShardUnavailable` instead of failing over.
"""

import pytest

from repro.errors import ShardUnavailable
from repro.shard import DEFAULT_VNODES, ShardRouter

SHARDS = ("shard-0", "shard-1", "shard-2", "shard-3")
TENANTS = [f"tenant-{i}" for i in range(400)]


class TestOwnership:
    def test_deterministic_across_instances(self):
        first = ShardRouter(SHARDS).assignments(TENANTS)
        second = ShardRouter(SHARDS).assignments(TENANTS)
        assert first == second

    def test_order_of_shard_ids_is_irrelevant(self):
        forward = ShardRouter(SHARDS).assignments(TENANTS)
        backward = ShardRouter(tuple(reversed(SHARDS))).assignments(TENANTS)
        assert forward == backward

    def test_every_shard_gets_a_reasonable_share(self):
        counts = {shard: 0 for shard in SHARDS}
        for owner in ShardRouter(SHARDS).assignments(TENANTS).values():
            counts[owner] += 1
        expected = len(TENANTS) / len(SHARDS)
        for shard, count in counts.items():
            assert 0.5 * expected <= count <= 1.6 * expected, counts

    def test_removal_remaps_only_the_lost_shards_tenants(self):
        before = ShardRouter(SHARDS).assignments(TENANTS)
        after = ShardRouter(
            tuple(s for s in SHARDS if s != "shard-2")).assignments(TENANTS)
        for tenant, owner in before.items():
            if owner == "shard-2":
                assert after[tenant] != "shard-2"
            else:
                assert after[tenant] == owner, tenant

    def test_addition_steals_only_for_the_new_shard(self):
        before = ShardRouter(SHARDS).assignments(TENANTS)
        grown = ShardRouter(SHARDS + ("shard-4",)).assignments(TENANTS)
        moved = [t for t in TENANTS if grown[t] != before[t]]
        assert moved, "a new shard must take some tenants"
        assert all(grown[t] == "shard-4" for t in moved)

    def test_single_shard_owns_everything(self):
        router = ShardRouter(["only"])
        assert set(router.assignments(TENANTS).values()) == {"only"}

    def test_vnodes_change_the_ring(self):
        coarse = ShardRouter(SHARDS, vnodes=1).assignments(TENANTS)
        fine = ShardRouter(SHARDS,
                           vnodes=DEFAULT_VNODES).assignments(TENANTS)
        assert coarse != fine  # different rings, both valid


class TestHealth:
    def test_route_sheds_a_down_owner_without_failover(self):
        router = ShardRouter(SHARDS)
        tenant = next(t for t in TENANTS
                      if router.owner(t) == "shard-1")
        router.mark_down("shard-1")
        with pytest.raises(ShardUnavailable) as err:
            router.route(tenant)
        assert err.value.details["shard"] == "shard-1"
        assert "shard-1" not in err.value.details["healthy"]
        # Tenants of healthy shards route exactly as before.
        other = next(t for t in TENANTS if router.owner(t) != "shard-1")
        assert router.route(other) == router.owner(other)

    def test_consecutive_failures_trip_the_threshold(self):
        router = ShardRouter(SHARDS, failure_threshold=3)
        assert router.record_failure("shard-0") is False
        assert router.record_failure("shard-0") is False
        assert router.record_failure("shard-0") is True
        assert not router.is_up("shard-0")

    def test_success_resets_the_failure_count(self):
        router = ShardRouter(SHARDS, failure_threshold=2)
        router.record_failure("shard-0")
        router.record_success("shard-0")
        assert router.record_failure("shard-0") is False
        assert router.is_up("shard-0")

    def test_mark_up_readmits_and_resets(self):
        router = ShardRouter(SHARDS, failure_threshold=1)
        router.record_failure("shard-3")
        assert router.down == ("shard-3",)
        router.mark_up("shard-3")
        assert router.healthy == router.shard_ids
        assert router.record_failure("shard-3") is True  # fresh count

    def test_unknown_shard_is_rejected(self):
        router = ShardRouter(SHARDS)
        with pytest.raises(ValueError, match="unknown shard"):
            router.mark_down("shard-9")


class TestValidation:
    def test_empty_fleet_is_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardRouter([])

    def test_duplicate_ids_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardRouter(["a", "a"])

    def test_bad_vnodes_and_threshold(self):
        with pytest.raises(ValueError, match="vnodes"):
            ShardRouter(["a"], vnodes=0)
        with pytest.raises(ValueError, match="failure_threshold"):
            ShardRouter(["a"], failure_threshold=0)
