"""Tests for repro.platform.power_model."""

import pytest

from repro.platform.config_space import Configuration
from repro.platform.dvfs import speed_ladder
from repro.platform.power_model import PowerConstants, PowerModel
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.profile import ApplicationProfile
from repro.workloads.suite import get_benchmark, paper_suite


def _profile(**overrides):
    base = dict(name="t", base_rate=100.0, serial_fraction=0.05,
                scaling_peak=32, contention_slope=0.0,
                memory_intensity=0.2, io_intensity=0.0, ht_efficiency=0.5,
                memory_parallelism=8, activity_factor=0.8, noise=0.0)
    base.update(overrides)
    return ApplicationProfile(**base)


def _config(cores=1, threads=None, mem=1, speed_idx=14):
    return Configuration(cores=cores,
                         threads=threads if threads is not None else cores,
                         memory_controllers=mem,
                         speed=speed_ladder()[speed_idx])


class TestChipPower:
    def test_more_cores_more_power(self):
        model = PowerModel()
        profile = _profile()
        powers = [model.chip_power(profile, _config(cores=k))
                  for k in (1, 4, 8, 16)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_higher_frequency_more_power(self):
        model = PowerModel()
        profile = _profile()
        slow = model.chip_power(profile, _config(cores=8, speed_idx=0))
        fast = model.chip_power(profile, _config(cores=8, speed_idx=14))
        assert fast > slow

    def test_chip_power_below_tdp(self):
        """A power-virus workload at turbo must stay under 2x135 W."""
        model = PowerModel()
        virus = _profile(activity_factor=1.0, serial_fraction=0.0,
                         memory_intensity=0.0)
        config = _config(cores=16, threads=32, mem=2, speed_idx=15)
        assert model.chip_power(virus, config) < 2 * PAPER_TOPOLOGY.tdp_watts

    def test_hyperthreading_adds_power(self):
        model = PowerModel()
        profile = _profile()
        without = model.chip_power(profile, _config(cores=8, threads=8))
        with_ht = model.chip_power(profile, _config(cores=8, threads=16))
        assert with_ht > without

    def test_second_socket_uncore_cost(self):
        model = PowerModel()
        profile = _profile()
        eight = model.chip_power(profile, _config(cores=8))
        nine = model.chip_power(profile, _config(cores=9))
        # Crossing the socket boundary adds a whole uncore.
        assert nine - eight > model.constants.uncore_per_socket

    def test_memory_bound_app_draws_less_core_power(self):
        model = PowerModel()
        compute = _profile(memory_intensity=0.0, activity_factor=0.9)
        memory = _profile(memory_intensity=0.6, activity_factor=0.5,
                          io_intensity=0.0)
        config = _config(cores=8)
        assert (model.chip_power(memory, config)
                < model.chip_power(compute, config))

    def test_rejects_oversized_allocation(self):
        with pytest.raises(ValueError):
            PowerModel().chip_power(_profile(), _config(cores=17))


class TestDramPower:
    def test_second_controller_adds_power(self):
        model = PowerModel()
        profile = _profile(memory_intensity=0.5)
        one = model.dram_power(profile, _config(cores=8, mem=1))
        two = model.dram_power(profile, _config(cores=8, mem=2))
        assert two > one

    def test_traffic_scales_with_memory_intensity(self):
        model = PowerModel()
        config = _config(cores=8, mem=2)
        light = model.dram_power(_profile(memory_intensity=0.1), config)
        heavy = model.dram_power(_profile(memory_intensity=0.6), config)
        assert heavy > light


class TestSystemPower:
    def test_composition(self):
        model = PowerModel()
        profile = _profile()
        config = _config(cores=8)
        total = model.system_power(profile, config)
        assert total == pytest.approx(
            model.constants.system_floor
            + model.chip_power(profile, config)
            + model.dram_power(profile, config))

    def test_idle_below_any_active_config(self, cores_space):
        model = PowerModel()
        idle = model.idle_power()
        profile = get_benchmark("kmeans")
        assert all(model.system_power(profile, c) > idle
                   for c in cores_space)

    def test_realistic_wall_power_range(self, paper_space):
        """System power should land in a plausible server envelope."""
        model = PowerModel()
        for profile in paper_suite():
            low = model.system_power(profile, paper_space[0])
            high = model.system_power(profile, paper_space[-1])
            assert 90.0 < low < high < 450.0

    def test_constants_validation(self):
        with pytest.raises(ValueError):
            PowerConstants(system_floor=-1.0)
