"""Tests for repro.platform.topology."""

import pytest

from repro.platform.topology import PAPER_TOPOLOGY, Topology


class TestPaperTopology:
    def test_matches_section_6_1(self):
        assert PAPER_TOPOLOGY.sockets == 2
        assert PAPER_TOPOLOGY.cores_per_socket == 8
        assert PAPER_TOPOLOGY.threads_per_core == 2
        assert PAPER_TOPOLOGY.memory_controllers == 2
        assert PAPER_TOPOLOGY.tdp_watts == 135.0

    def test_total_counts(self):
        assert PAPER_TOPOLOGY.total_cores == 16
        assert PAPER_TOPOLOGY.total_threads == 32


class TestSocketsForCores:
    def test_zero_cores_needs_no_sockets(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(0) == 0

    def test_single_core_powers_one_socket(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(1) == 1

    def test_exactly_one_socket(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(8) == 1

    def test_spills_to_second_socket(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(9) == 2

    def test_all_cores(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(16) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.sockets_for_cores(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.sockets_for_cores(17)


class TestCoresOnSocket:
    def test_packing_order(self):
        assert PAPER_TOPOLOGY.cores_on_socket(10, 0) == 8
        assert PAPER_TOPOLOGY.cores_on_socket(10, 1) == 2

    def test_empty_second_socket(self):
        assert PAPER_TOPOLOGY.cores_on_socket(5, 1) == 0

    def test_sums_to_allocation(self):
        for cores in range(17):
            total = sum(PAPER_TOPOLOGY.cores_on_socket(cores, s)
                        for s in range(PAPER_TOPOLOGY.sockets))
            assert total == cores

    def test_rejects_bad_socket(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.cores_on_socket(4, 2)


class TestValidation:
    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            Topology(sockets=0)

    def test_rejects_negative_tdp(self):
        with pytest.raises(ValueError):
            Topology(tdp_watts=-1.0)

    def test_rejects_more_controllers_than_sockets(self):
        with pytest.raises(ValueError):
            Topology(sockets=1, memory_controllers=2)

    def test_rejects_non_integer_cores(self):
        with pytest.raises(ValueError):
            Topology(cores_per_socket=1.5)

    def test_custom_topology(self):
        small = Topology(sockets=1, cores_per_socket=4,
                         memory_controllers=1)
        assert small.total_cores == 4
        assert small.total_threads == 8


class TestSplit:
    def test_packs_cores_in_request_order(self):
        parts = PAPER_TOPOLOGY.split([("a", 6), ("b", 5), ("c", 5)])
        assert [p.name for p in parts] == ["a", "b", "c"]
        assert [p.first_core for p in parts] == [0, 6, 11]
        assert [p.last_core for p in parts] == [6, 11, 16]

    def test_threads_default_to_both_siblings(self):
        (part,) = PAPER_TOPOLOGY.split([("a", 4)])
        assert part.threads == 8

    def test_explicit_thread_count(self):
        (part,) = PAPER_TOPOLOGY.split([("a", 4, 4)])
        assert part.threads == 4

    def test_zero_core_partition_named(self):
        with pytest.raises(ValueError, match="'b'.*zero cores"):
            PAPER_TOPOLOGY.split([("a", 4), ("b", 0)])

    def test_negative_core_partition_rejected(self):
        with pytest.raises(ValueError, match="'a'"):
            PAPER_TOPOLOGY.split([("a", -1)])

    def test_ht_sibling_split_named(self):
        # 4 cores own 8 thread contexts; claiming 9 would steal a
        # sibling context from another partition's core.
        with pytest.raises(ValueError, match="'greedy'.*hyperthread"):
            PAPER_TOPOLOGY.split([("greedy", 4, 9), ("b", 4)])

    def test_threads_below_cores_named(self):
        with pytest.raises(ValueError, match="'a'"):
            PAPER_TOPOLOGY.split([("a", 4, 3)])

    def test_over_subscription_names_offender(self):
        with pytest.raises(ValueError, match="over-subscribe.*'late'"):
            PAPER_TOPOLOGY.split([("a", 8), ("b", 8), ("late", 1)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PAPER_TOPOLOGY.split([("a", 4), ("a", 4)])

    def test_exact_fit_is_allowed(self):
        parts = PAPER_TOPOLOGY.split([("a", 8), ("b", 8)])
        assert sum(p.cores for p in parts) == PAPER_TOPOLOGY.total_cores

    def test_accepts_core_partition_instances(self):
        from repro.platform.topology import CorePartition
        spec = CorePartition(name="a", cores=3, threads=6)
        (part,) = PAPER_TOPOLOGY.split([spec])
        assert (part.name, part.cores, part.threads) == ("a", 3, 6)
        assert part.first_core == 0


class TestSplitEdgeCases:
    """The corners the hetero layer leans on (split_by_cluster)."""

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            PAPER_TOPOLOGY.split([("", 4)])

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            PAPER_TOPOLOGY.split([(7, 4)])

    def test_single_core_remainders(self):
        parts = PAPER_TOPOLOGY.split(
            [("bulk", 14), ("tail0", 1), ("tail1", 1)])
        assert [p.cores for p in parts] == [14, 1, 1]
        assert [p.first_core for p in parts] == [0, 14, 15]
        # A 1-core partition still owns both hyperthread siblings.
        assert parts[1].threads == 2

    def test_all_singleton_partitions(self):
        parts = PAPER_TOPOLOGY.split(
            [(f"c{i}", 1) for i in range(PAPER_TOPOLOGY.total_cores)])
        assert len(parts) == PAPER_TOPOLOGY.total_cores
        assert [p.first_core for p in parts] == list(
            range(PAPER_TOPOLOGY.total_cores))

    def test_asymmetric_explicit_threads_keep_offsets(self):
        parts = PAPER_TOPOLOGY.split(
            [("big", 10, 10), ("little", 6, 12)])
        assert [(p.first_core, p.last_core) for p in parts] == \
            [(0, 10), (10, 16)]
        assert [p.threads for p in parts] == [10, 12]

    def test_partial_split_leaves_cores_unowned(self):
        parts = PAPER_TOPOLOGY.split([("only", 3)])
        assert len(parts) == 1
        assert parts[0].last_core == 3  # remaining 13 cores unassigned

    def test_no_hyperthreading_topology(self):
        flat = Topology(sockets=1, cores_per_socket=8,
                        threads_per_core=1, memory_controllers=1)
        (part,) = flat.split([("a", 4)])
        assert part.threads == 4
        with pytest.raises(ValueError, match="hyperthread"):
            flat.split([("a", 4, 5)])

    def test_validation_precedes_packing(self):
        # The offending request fails before earlier ones are packed
        # into partitions, so no partial result escapes.
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.split([("ok", 4), ("bad", 0), ("late", 4)])

    def test_empty_request_list_is_empty_split(self):
        assert PAPER_TOPOLOGY.split([]) == []
