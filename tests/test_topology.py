"""Tests for repro.platform.topology."""

import pytest

from repro.platform.topology import PAPER_TOPOLOGY, Topology


class TestPaperTopology:
    def test_matches_section_6_1(self):
        assert PAPER_TOPOLOGY.sockets == 2
        assert PAPER_TOPOLOGY.cores_per_socket == 8
        assert PAPER_TOPOLOGY.threads_per_core == 2
        assert PAPER_TOPOLOGY.memory_controllers == 2
        assert PAPER_TOPOLOGY.tdp_watts == 135.0

    def test_total_counts(self):
        assert PAPER_TOPOLOGY.total_cores == 16
        assert PAPER_TOPOLOGY.total_threads == 32


class TestSocketsForCores:
    def test_zero_cores_needs_no_sockets(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(0) == 0

    def test_single_core_powers_one_socket(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(1) == 1

    def test_exactly_one_socket(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(8) == 1

    def test_spills_to_second_socket(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(9) == 2

    def test_all_cores(self):
        assert PAPER_TOPOLOGY.sockets_for_cores(16) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.sockets_for_cores(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.sockets_for_cores(17)


class TestCoresOnSocket:
    def test_packing_order(self):
        assert PAPER_TOPOLOGY.cores_on_socket(10, 0) == 8
        assert PAPER_TOPOLOGY.cores_on_socket(10, 1) == 2

    def test_empty_second_socket(self):
        assert PAPER_TOPOLOGY.cores_on_socket(5, 1) == 0

    def test_sums_to_allocation(self):
        for cores in range(17):
            total = sum(PAPER_TOPOLOGY.cores_on_socket(cores, s)
                        for s in range(PAPER_TOPOLOGY.sockets))
            assert total == cores

    def test_rejects_bad_socket(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.cores_on_socket(4, 2)


class TestValidation:
    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError):
            Topology(sockets=0)

    def test_rejects_negative_tdp(self):
        with pytest.raises(ValueError):
            Topology(tdp_watts=-1.0)

    def test_rejects_more_controllers_than_sockets(self):
        with pytest.raises(ValueError):
            Topology(sockets=1, memory_controllers=2)

    def test_rejects_non_integer_cores(self):
        with pytest.raises(ValueError):
            Topology(cores_per_socket=1.5)

    def test_custom_topology(self):
        small = Topology(sockets=1, cores_per_socket=4,
                         memory_controllers=1)
        assert small.total_cores == 4
        assert small.total_threads == 8
