"""Tests for repro.core.em: the EM engine."""

import numpy as np
import pytest

from repro.core.em import EMConfig, EMEngine
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior


def _synthetic_observations(m=8, n=10, missing_target=True, seed=0,
                            noise=0.05):
    """Draws from the generative model itself (Eq. 2)."""
    rng = np.random.default_rng(seed)
    mu = rng.standard_normal(n)
    a = rng.standard_normal((n, n))
    sigma = 0.5 * (a @ a.T) / n + 0.2 * np.eye(n)
    z = rng.multivariate_normal(mu, sigma, size=m)
    y = z + noise * rng.standard_normal((m, n))
    mask = np.ones((m, n), dtype=bool)
    if missing_target:
        mask[-1] = False
        mask[-1, rng.choice(n, size=3, replace=False)] = True
    return ObservationSet(np.where(mask, y, 0.0), mask), z


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EMConfig(max_iterations=0)
        with pytest.raises(ValueError):
            EMConfig(tol=0.0)
        with pytest.raises(ValueError):
            EMConfig(min_noise_var=0.0)


class TestFitBasics:
    def test_result_shapes(self):
        obs, _ = _synthetic_observations()
        result = EMEngine(prior=NIWPrior.paper_default()).fit(obs)
        m, n = obs.values.shape
        assert result.mu.shape == (n,)
        assert result.sigma_mat.shape == (n, n)
        assert result.zhat.shape == (m, n)
        assert result.zvar.shape == (m, n)
        assert result.noise_var > 0

    def test_sigma_stays_spd(self):
        obs, _ = _synthetic_observations(seed=3)
        result = EMEngine(prior=NIWPrior.paper_default()).fit(obs)
        np.linalg.cholesky(result.sigma_mat)

    def test_zvar_nonnegative(self):
        obs, _ = _synthetic_observations(seed=4)
        result = EMEngine().fit(obs)
        assert (result.zvar > -1e-9).all()

    def test_convergence_flag(self):
        obs, _ = _synthetic_observations(seed=5)
        done = EMEngine(config=EMConfig(max_iterations=100, tol=1e-4)).fit(obs)
        assert done.converged
        capped = EMEngine(config=EMConfig(max_iterations=1)).fit(obs)
        assert not capped.converged
        assert capped.iterations == 1

    def test_bad_initialization_shapes_rejected(self):
        obs, _ = _synthetic_observations()
        engine = EMEngine()
        with pytest.raises(ValueError):
            engine.fit(obs, init_mu=np.zeros(3))
        with pytest.raises(ValueError):
            engine.fit(obs, init_sigma=np.eye(3))
        with pytest.raises(ValueError):
            engine.fit(obs, init_noise_var=-1.0)


class TestMonotonicity:
    """Pure-ML EM must never decrease the observed-data likelihood."""

    @pytest.mark.parametrize("seed", range(4))
    def test_ml_loglik_nondecreasing(self, seed):
        obs, _ = _synthetic_observations(seed=seed)
        engine = EMEngine(prior=None,
                          config=EMConfig(max_iterations=25, tol=1e-12))
        result = engine.fit(obs)
        history = result.loglik_history
        assert len(history) >= 2
        for before, after in zip(history, history[1:]):
            assert after >= before - 1e-6 * (abs(before) + 1.0)


class TestRecovery:
    def test_recovers_target_curve(self):
        """The fitted target estimate beats the prior-mean baseline."""
        obs, z = _synthetic_observations(m=10, n=12, seed=7)
        result = EMEngine(prior=NIWPrior.paper_default()).fit(obs)
        target = obs.target_row
        em_error = np.linalg.norm(result.zhat[target] - z[target])
        baseline = obs.values[:-1].mean(axis=0)
        baseline_error = np.linalg.norm(baseline - z[target])
        assert em_error < baseline_error

    def test_interpolates_observed_entries(self):
        obs, _ = _synthetic_observations(seed=9, noise=0.01)
        result = EMEngine(prior=NIWPrior.paper_default()).fit(obs)
        target = obs.target_row
        idx = obs.observed_indices(target)
        observed = obs.values[target, idx]
        np.testing.assert_allclose(result.zhat[target, idx], observed,
                                   atol=0.25)

    def test_noise_estimate_in_right_regime(self):
        obs, _ = _synthetic_observations(m=12, n=10, seed=11, noise=0.2)
        result = EMEngine(prior=None,
                          config=EMConfig(max_iterations=40, tol=1e-10)).fit(obs)
        assert 0.001 < result.noise_var < 0.5


class TestWoodburyAblation:
    def test_dense_and_woodbury_agree(self):
        obs, _ = _synthetic_observations(m=5, n=8, seed=13)
        fast = EMEngine(prior=NIWPrior.paper_default(),
                        config=EMConfig(max_iterations=5, use_woodbury=True))
        slow = EMEngine(prior=NIWPrior.paper_default(),
                        config=EMConfig(max_iterations=5, use_woodbury=False))
        fast_result = fast.fit(obs)
        slow_result = slow.fit(obs)
        np.testing.assert_allclose(fast_result.zhat, slow_result.zhat,
                                   rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(fast_result.mu, slow_result.mu,
                                   rtol=1e-5, atol=1e-7)


class TestPriorInfluence:
    def test_prior_shrinks_mu_toward_mu0(self):
        obs, _ = _synthetic_observations(m=4, n=6, seed=15)
        ml = EMEngine(prior=None).fit(obs)
        strong = EMEngine(prior=NIWPrior(mu0=0.0, pi=1000.0)).fit(obs)
        assert np.linalg.norm(strong.mu) < np.linalg.norm(ml.mu)

    def test_psi_regularizes_sigma(self):
        obs, _ = _synthetic_observations(m=4, n=6, seed=16)
        weak = EMEngine(prior=NIWPrior(psi=1e-6)).fit(obs)
        strong = EMEngine(prior=NIWPrior(psi=50.0)).fit(obs)
        # A huge Psi = 50 I pushes Sigma toward a large multiple of I.
        diag_gap = np.abs(np.diag(strong.sigma_mat)).mean()
        assert diag_gap > np.abs(np.diag(weak.sigma_mat)).mean()
