"""Tests for repro.runtime.controller."""

import numpy as np
import pytest

from repro.estimators.exhaustive import ExhaustiveOracle
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.sampling import GridSampler, RandomSampler
from repro.workloads.phases import fluidanimate_two_phase
from repro.workloads.suite import get_benchmark


@pytest.fixture()
def leo_controller(machine, cores_space, cores_dataset):
    view = cores_dataset.leave_one_out("kmeans")
    return RuntimeController(
        machine=machine, space=cores_space, estimator=LEOEstimator(),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=0), sample_count=6)


def _oracle_estimate(machine, profile, space) -> TradeoffEstimate:
    rates, powers = machine.sweep(profile, space, noisy=False)
    return TradeoffEstimate.from_truth(rates, powers)


class TestCalibrate:
    def test_produces_positive_curves(self, leo_controller, kmeans,
                                      cores_space):
        estimate = leo_controller.calibrate(kmeans)
        assert estimate.rates.shape == (len(cores_space),)
        assert (estimate.rates > 0).all()
        assert (estimate.powers > 0).all()

    def test_charges_sampling_cost(self, leo_controller, kmeans):
        estimate = leo_controller.calibrate(kmeans)
        assert estimate.sampling_time == pytest.approx(6.0)  # 6 x 1 s
        assert estimate.sampling_energy > 0
        assert estimate.fit_seconds > 0

    def test_estimate_close_to_truth(self, leo_controller, machine,
                                     kmeans, cores_space):
        estimate = leo_controller.calibrate(kmeans)
        truth = np.array([machine.true_rate(kmeans, c) for c in cores_space])
        from repro.core.accuracy import accuracy
        assert accuracy(estimate.rates, truth) > 0.8

    def test_sample_count_override(self, leo_controller, kmeans):
        estimate = leo_controller.calibrate(kmeans, sample_count=10,
                                            sample_window=0.5)
        assert estimate.sampling_time == pytest.approx(5.0)

    def test_constructor_validation(self, machine, cores_space):
        with pytest.raises(ValueError):
            RuntimeController(machine, cores_space, LEOEstimator(),
                              sample_count=0)
        with pytest.raises(ValueError):
            RuntimeController(machine, cores_space, LEOEstimator(),
                              sample_window=0.0)
        with pytest.raises(ValueError):
            RuntimeController(machine, cores_space, LEOEstimator(),
                              quantum_fraction=0.0)


class TestRun:
    def test_meets_feasible_demand(self, leo_controller, machine, kmeans,
                                   cores_space):
        estimate = _oracle_estimate(machine, kmeans, cores_space)
        work = 0.5 * estimate.rates.max() * 50.0
        report = leo_controller.run(kmeans, work, 50.0, estimate)
        assert report.met_target
        assert report.work_done >= 0.99 * work

    def test_energy_above_analytic_optimum(self, leo_controller, machine,
                                           kmeans, cores_space):
        estimate = _oracle_estimate(machine, kmeans, cores_space)
        work = 0.5 * estimate.rates.max() * 50.0
        report = leo_controller.run(kmeans, work, 50.0, estimate)
        optimal = EnergyMinimizer(estimate.rates, estimate.powers,
                                  machine.idle_power())
        assert report.energy >= 0.97 * optimal.min_energy(work, 50.0)

    def test_oracle_run_near_optimal(self, leo_controller, machine,
                                     kmeans, cores_space):
        estimate = _oracle_estimate(machine, kmeans, cores_space)
        work = 0.4 * estimate.rates.max() * 50.0
        report = leo_controller.run(kmeans, work, 50.0, estimate)
        optimal = EnergyMinimizer(estimate.rates, estimate.powers,
                                  machine.idle_power())
        assert report.energy == pytest.approx(
            optimal.min_energy(work, 50.0), rel=0.05)

    def test_zero_work_idles_the_window(self, leo_controller, machine,
                                        kmeans, cores_space):
        estimate = _oracle_estimate(machine, kmeans, cores_space)
        report = leo_controller.run(kmeans, 0.0, 10.0, estimate)
        assert report.energy == pytest.approx(
            machine.idle_power() * 10.0, rel=0.01)

    def test_traces_cover_window(self, leo_controller, machine, kmeans,
                                 cores_space):
        estimate = _oracle_estimate(machine, kmeans, cores_space)
        report = leo_controller.run(kmeans, 100.0, 10.0, estimate)
        # One entry per executed quantum; work-completion trimming can
        # split quanta, so there are at least deadline/quantum entries.
        assert len(report.power_trace) == len(report.rate_trace)
        assert len(report.power_trace) >= 20

    def test_validation(self, leo_controller, machine, kmeans, cores_space):
        estimate = _oracle_estimate(machine, kmeans, cores_space)
        with pytest.raises(ValueError):
            leo_controller.run(kmeans, -1.0, 10.0, estimate)
        with pytest.raises(ValueError):
            leo_controller.run(kmeans, 1.0, 0.0, estimate)

    def test_feedback_corrects_bad_estimates(self, machine, cores_space,
                                             cores_dataset, kmeans):
        """A wildly optimistic estimate still roughly meets the demand."""
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=OfflineEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        truth = _oracle_estimate(machine, kmeans, cores_space)
        bogus = TradeoffEstimate(rates=truth.rates * 3.0,
                                 powers=truth.powers,
                                 estimator_name="bogus")
        work = 0.5 * truth.rates.max() * 50.0
        report = controller.run(kmeans, work, 50.0, bogus)
        assert report.work_done >= 0.9 * work


class TestPhasedRuns:
    def test_detects_and_adapts(self, machine, cores_space, cores_dataset):
        fluid = get_benchmark("fluidanimate")
        view = cores_dataset.leave_one_out("fluidanimate")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=GridSampler(), sample_count=6)
        max_rate = max(machine.true_rate(fluid, c) for c in cores_space)
        target = 0.5 * max_rate
        workload = fluidanimate_two_phase(
            fluid, frames_per_phase=max(int(target * 25), 10),
            frame_deadline=1.0 / target)
        reports = controller.run_phased(workload)
        assert len(reports) == 2
        assert all(r.met_target for r in reports)
        total_reestimations = sum(r.reestimations for r in reports)
        assert total_reestimations >= 1  # noticed the phase change

    def test_non_adaptive_never_recalibrates(self, machine, cores_space,
                                             cores_dataset):
        fluid = get_benchmark("fluidanimate")
        view = cores_dataset.leave_one_out("fluidanimate")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=GridSampler(), sample_count=6)
        max_rate = max(machine.true_rate(fluid, c) for c in cores_space)
        target = 0.5 * max_rate
        workload = fluidanimate_two_phase(
            fluid, frames_per_phase=max(int(target * 20), 10),
            frame_deadline=1.0 / target)
        reports = controller.run_phased(workload, adapt=False)
        assert sum(r.reestimations for r in reports) == 0
