"""Tests for repro.reporting: ASCII plots, CSV export, markdown reports."""

import json

import numpy as np
import pytest

from repro.reporting.ascii_plot import histogram, line_chart, sparkline
from repro.reporting.csv_export import read_series, write_series, write_table
from repro.reporting.experiment_report import (
    load_results,
    main,
    render_markdown,
)


class TestSparkline:
    def test_width_and_extremes(self):
        line = sparkline([0, 1, 2, 3, 4, 5], width=6)
        assert len(line) == 6
        assert line[0] == " " and line[-1] == "@"

    def test_constant_series(self):
        assert set(sparkline([5, 5, 5], width=3)) == {" "}

    def test_shorter_series_than_width(self):
        assert len(sparkline([1, 2], width=48)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"leo": [1, 2, 3, 4], "race": [4, 3, 2, 1]},
                           title="demo")
        assert "demo" in chart
        assert "l=leo" in chart and "r=race" in chart
        assert "l" in chart and "r" in chart

    def test_axis_bounds_printed(self):
        chart = line_chart({"a": [10.0, 20.0, 30.0]})
        assert "30" in chart and "10" in chart

    def test_x_labels(self):
        chart = line_chart({"a": [1, 2]}, x=[0.0, 5.0])
        assert "5" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1]})
        with pytest.raises(ValueError):
            line_chart({"a": [1, np.inf]})
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2]}, width=4)


class TestHeatmap:
    def test_identity_matrix_has_hot_diagonal(self):
        from repro.reporting.ascii_plot import heatmap
        text = heatmap(np.eye(6), width=6, height=6, symmetric=True)
        lines = text.splitlines()
        assert all(line[i] == "@" for i, line in enumerate(lines))

    def test_downsamples_large_matrices(self):
        from repro.reporting.ascii_plot import heatmap
        big = np.random.default_rng(0).random((200, 300))
        text = heatmap(big, width=20, height=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_title_prepended(self):
        from repro.reporting.ascii_plot import heatmap
        assert heatmap(np.ones((2, 2)), title="T").startswith("T")

    def test_symmetric_scaling_centers_zero(self):
        from repro.reporting.ascii_plot import heatmap
        matrix = np.array([[-1.0, 0.0, 1.0]])
        text = heatmap(matrix, width=3, height=1, symmetric=True)
        assert text[0] == " " and text[-1] == "@"

    def test_validation(self):
        from repro.reporting.ascii_plot import heatmap
        with pytest.raises(ValueError):
            heatmap(np.ones(3))
        with pytest.raises(ValueError):
            heatmap(np.array([[np.inf]]))


class TestHistogram:
    def test_counts_rendered(self):
        text = histogram([1, 1, 1, 5], bins=2, title="h")
        assert text.startswith("h")
        assert " 3" in text and " 1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


class TestCsvExport:
    def test_series_roundtrip(self, tmp_path):
        x = np.linspace(0, 1, 7)
        series = {"leo": x ** 2, "race": 1 - x}
        path = write_series(tmp_path / "curves.csv", "u", x, series)
        back = read_series(path)
        np.testing.assert_allclose(back["u"], x)
        np.testing.assert_allclose(back["leo"], x ** 2)
        np.testing.assert_allclose(back["race"], 1 - x)

    def test_series_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_series(tmp_path / "bad.csv", "x", [1.0], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            write_series(tmp_path / "bad.csv", "x", [], {})

    def test_table_roundtrip(self, tmp_path):
        path = write_table(tmp_path / "t.csv", ["a", "b"],
                           [[1, 2], [3, 4]])
        text = path.read_text()
        assert "a,b" in text and "3,4" in text

    def test_table_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_table(tmp_path / "t.csv", [], [])
        with pytest.raises(ValueError):
            write_table(tmp_path / "t.csv", ["a"], [[1, 2]])

    def test_creates_parent_dirs(self, tmp_path):
        path = write_table(tmp_path / "deep" / "dir" / "t.csv", ["a"],
                           [[1]])
        assert path.exists()


class TestExperimentReport:
    @pytest.fixture()
    def results_dir(self, tmp_path):
        (tmp_path / "fig05_perf_accuracy.json").write_text(json.dumps({
            "per_benchmark": {"kmeans": {"leo": 0.96}},
            "mean": {"leo": 0.95, "online": 0.85, "offline": 0.74},
            "paper": {"leo": 0.97, "online": 0.87, "offline": 0.68},
        }))
        (tmp_path / "fig11_energy_summary.json").write_text(json.dumps({
            "per_benchmark": {},
            "overall": {"leo": 1.01, "online": 1.14, "offline": 1.08,
                        "race-to-idle": 1.36},
            "paper": {"leo": 1.06, "online": 1.24, "offline": 1.29,
                      "race-to-idle": 1.90},
        }))
        (tmp_path / "mystery_extra.json").write_text(json.dumps({"x": 1}))
        return tmp_path

    def test_load_results(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"fig05_perf_accuracy",
                                "fig11_energy_summary", "mystery_extra"}

    def test_render_known_sections(self, results_dir):
        text = render_markdown(results_dir)
        assert "# EXPERIMENTS" in text
        assert "Figure 5" in text and "0.950" in text and "0.97" in text
        assert "Figure 11" in text and "race-to-idle" in text

    def test_unknown_files_rendered_as_json(self, results_dir):
        text = render_markdown(results_dir)
        assert "mystery_extra" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "nope")
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path)  # exists but empty

    def test_cli_entry(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "Figure 5" in capsys.readouterr().out
        assert main([]) == 2
        assert main([str(results_dir / "missing")]) == 1
