"""Tests for the power-cap allocator and its degradation ladder.

Pure-numpy tests over synthetic tenant curves: the cap is never
exceeded in any mode, the joint allocation is never worse than the
equal split under the same estimates, degradation is observable and
proportional, and everything is deterministic.
"""

import numpy as np
import pytest

from repro.cluster.allocator import (
    Allocation,
    PowerCapAllocator,
    StaticAllocator,
    TenantDemand,
)

IDLE = 10.0


def demand(name, required, rates=(1.0, 2.0, 4.0, 8.0),
           powers=(30.0, 42.0, 60.0, 95.0), idle=IDLE):
    return TenantDemand(name=name, rates=np.array(rates, dtype=float),
                        powers=np.array(powers, dtype=float),
                        idle_power=idle, required_rate=required)


def three_tenants():
    return [
        demand("heavy", 6.0),
        demand("light", 1.0),
        demand("mid", 3.0, powers=(28.0, 40.0, 55.0, 80.0)),
    ]


class TestCapInvariant:
    @pytest.mark.parametrize("cap", [120.0, 180.0, 260.0, 500.0])
    def test_budgets_never_exceed_usable(self, cap):
        allocation = PowerCapAllocator(cap).allocate(three_tenants())
        assert allocation.usable_watts == pytest.approx(0.95 * cap)
        assert allocation.total_budget_watts <= (
            allocation.usable_watts * (1.0 + 1e-9))
        assert allocation.usable_watts <= allocation.cap_watts

    def test_static_budgets_respect_cap_too(self):
        allocation = StaticAllocator(200.0).allocate(three_tenants())
        assert allocation.mode == "static"
        assert allocation.total_budget_watts <= (
            allocation.usable_watts * (1.0 + 1e-9))

    def test_proportional_mode_respects_cap(self):
        # 3 tenants x >= 30 W minimum cannot fit in 60 W.
        allocation = PowerCapAllocator(60.0).allocate(three_tenants())
        assert allocation.mode == "proportional"
        assert allocation.total_budget_watts <= (
            allocation.usable_watts * (1.0 + 1e-9))
        # Budgets shrink proportionally, so relative order is kept.
        budgets = [t.budget_watts for t in allocation.tenants]
        assert budgets[0] > budgets[1] * 0.9  # same mins -> same shares


class TestJointNeverWorseThanEqual:
    @pytest.mark.parametrize("cap", [150.0, 200.0, 300.0])
    def test_joint_estimated_watts_le_equal_split(self, cap):
        demands = three_tenants()
        joint = PowerCapAllocator(cap).allocate(demands)
        static = StaticAllocator(cap).allocate(demands)
        # A lower static figure with a starved tenant is not a win —
        # the guarantee compares equal delivered targets.
        if joint.all_feasible and static.all_feasible:
            assert joint.estimated_watts <= (
                static.estimated_watts * (1.0 + 1e-9))
        assert joint.all_feasible or not static.all_feasible

    def test_skewed_curves_beat_equal_split_strictly(self):
        # One tenant needs an expensive config the equal split cannot
        # afford; the joint allocator funds it from the light tenant's
        # slack.
        demands = [demand("big", 8.0), demand("small", 1.0),
                   demand("tiny", 1.0)]
        cap = 200.0  # equal share 63.3 W < the 95 W config "big" needs
        joint = PowerCapAllocator(cap).allocate(demands)
        static = StaticAllocator(cap).allocate(demands)
        assert joint.tenant("big").feasible
        assert not static.tenant("big").feasible
        assert joint.tenant("big").budget_watts >= 95.0


class TestDegradationLadder:
    def test_rung2_target_clamped_to_curve_capacity(self):
        impossible = demand("greedy", required=50.0)
        allocation = PowerCapAllocator(400.0).allocate(
            [impossible, demand("ok", 2.0)])
        greedy = allocation.tenant("greedy")
        assert greedy.target_rate == pytest.approx(8.0)
        assert not greedy.feasible
        assert allocation.tenant("ok").feasible
        assert not allocation.all_feasible

    def test_rung3_serves_best_effort_targets(self):
        allocation = PowerCapAllocator(60.0).allocate(three_tenants())
        for tenant in allocation.tenants:
            assert tenant.target_rate <= tenant.required_rate * (1 + 1e-9)
            assert tenant.estimated_watts <= (
                tenant.budget_watts * (1.0 + 1e-6) + IDLE)

    def test_feasible_when_cap_is_loose(self):
        allocation = PowerCapAllocator(500.0).allocate(three_tenants())
        assert allocation.mode in ("joint", "equal")
        assert allocation.all_feasible
        for tenant in allocation.tenants:
            assert tenant.target_rate == pytest.approx(
                tenant.required_rate)


class TestDeterminism:
    def test_repeat_allocations_identical(self):
        a = PowerCapAllocator(180.0).allocate(three_tenants())
        b = PowerCapAllocator(180.0).allocate(three_tenants())
        assert a == b

    def test_demand_order_preserved(self):
        allocation = PowerCapAllocator(300.0).allocate(three_tenants())
        assert [t.name for t in allocation.tenants] == [
            "heavy", "light", "mid"]


class TestValidation:
    def test_empty_demands_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PowerCapAllocator(100.0).allocate([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PowerCapAllocator(100.0).allocate(
                [demand("a", 1.0), demand("a", 2.0)])

    def test_bad_cap_and_margin_rejected(self):
        with pytest.raises(ValueError, match="cap_watts"):
            PowerCapAllocator(0.0)
        with pytest.raises(ValueError, match="margin"):
            PowerCapAllocator(100.0, margin=1.0)
        with pytest.raises(ValueError, match="cap_watts"):
            StaticAllocator(-5.0)

    def test_demand_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            TenantDemand(name="x", rates=np.array([1.0, 2.0]),
                         powers=np.array([30.0]), idle_power=IDLE,
                         required_rate=1.0)

    def test_negative_required_rate_rejected(self):
        with pytest.raises(ValueError, match="required_rate"):
            demand("x", -1.0)

    def test_unknown_tenant_lookup_raises(self):
        allocation = PowerCapAllocator(200.0).allocate([demand("a", 1.0)])
        assert isinstance(allocation, Allocation)
        with pytest.raises(KeyError):
            allocation.budget("ghost")
        with pytest.raises(KeyError):
            allocation.tenant("ghost")
