"""Wiring tests for the CLI's `reproduce` targets.

The full-size experiments run in benchmarks/; here each target's
plumbing (argument handling, table rendering, exit codes) is verified
against stubbed experiment functions so the tests stay fast.
"""

import numpy as np
import pytest

import repro.experiments.dynamic as dynamic_mod
import repro.experiments.energy as energy_mod
import repro.experiments.estimation as estimation_mod
import repro.experiments.sensitivity as sensitivity_mod
from repro.cli import main
from repro.experiments.dynamic import DynamicResult
from repro.experiments.energy import EnergyCurve
from repro.experiments.estimation import AccuracyResult
from repro.experiments.sensitivity import SensitivityResult
from repro.workloads.phases import Phase, PhasedWorkload
from repro.workloads.suite import get_benchmark


class TestReproduceFig5AndFig6:
    @pytest.fixture(autouse=True)
    def stub_accuracy(self, monkeypatch):
        def fake(ctx, trials=1, **kwargs):
            table = {"kmeans": {"leo": 0.96, "online": 0.86,
                                "offline": 0.70}}
            return AccuracyResult(perf=table, power=table,
                                  sample_count=20, trials=trials)
        monkeypatch.setattr(estimation_mod, "accuracy_experiment", fake)

    def test_fig5(self, capsys):
        assert main(["reproduce", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "performance accuracy" in out and "0.960" in out

    def test_fig6(self, capsys):
        assert main(["reproduce", "fig6"]) == 0
        assert "power accuracy" in capsys.readouterr().out


class TestReproduceFig11:
    @pytest.fixture(autouse=True)
    def stub_energy(self, monkeypatch):
        def fake(ctx, num_utilizations=8, **kwargs):
            curve = EnergyCurve(
                benchmark="kmeans",
                utilizations=np.array([0.5, 1.0]),
                energy={"leo": [100.0, 200.0], "online": [110.0, 220.0],
                        "offline": [120.0, 230.0],
                        "race-to-idle": [150.0, 260.0],
                        "optimal": [95.0, 190.0]},
                met={a: [True, True] for a in
                     ("leo", "online", "offline", "race-to-idle")},
                work_fraction={a: [1.0, 1.0] for a in
                               ("leo", "online", "offline",
                                "race-to-idle")},
            )
            return [curve]
        monkeypatch.setattr(energy_mod, "energy_experiment", fake)

    def test_fig11(self, capsys):
        assert main(["reproduce", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "normalized to optimal" in out and "kmeans" in out


class TestReproduceFig12:
    @pytest.fixture(autouse=True)
    def stub_sensitivity(self, monkeypatch):
        def fake(ctx, sizes=(0, 5), benchmarks=None, **kwargs):
            return SensitivityResult(
                sizes=tuple(sizes),
                perf={"leo": [0.7] * len(sizes),
                      "online": [0.0] * len(sizes)},
                power={"leo": [0.9] * len(sizes),
                       "online": [0.0] * len(sizes)},
                offline_perf=0.7, offline_power=0.9)
        monkeypatch.setattr(sensitivity_mod, "sensitivity_experiment",
                            fake)

    def test_fig12(self, capsys):
        assert main(["reproduce", "fig12"]) == 0
        assert "sample-size sweep" in capsys.readouterr().out


class TestReproduceTable1:
    @pytest.fixture(autouse=True)
    def stub_dynamic(self, monkeypatch):
        def fake(ctx, **kwargs):
            fluid = get_benchmark("fluidanimate")
            workload = PhasedWorkload(
                [Phase(fluid, 10, 0.1), Phase(fluid, 10, 0.1)])
            return DynamicResult(
                workload=workload, reports={},
                optimal_energy=[100.0, 80.0],
                relative={"leo": [1.04, 1.01, 1.03],
                          "online": [1.3, 1.2, 1.25],
                          "offline": [1.2, 1.3, 1.25]})
        monkeypatch.setattr(dynamic_mod, "dynamic_experiment", fake)

    def test_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "1.030" in out
