"""Tests for repro.soak: plans, invariants, and the harness.

The full two-day acceptance soak lives in ``benchmarks/soak_smoke.py``;
here the harness runs short horizons (a few simulated hours) so the
suite stays fast while still exercising every invariant path, the
fingerprint determinism, and crash-resume under live faults.
"""

import dataclasses
import json
import logging
import math

import pytest

from repro.errors import FaultPlanError, ReproError
from repro.service.protocol import ServiceOverloaded
from repro.soak import (
    DAY_S,
    INVARIANTS,
    Incident,
    InvariantViolation,
    SoakConfig,
    soak_plan,
    soak_plan_names,
    soak_run,
)
from repro.soak.invariants import (
    check_cap,
    check_memory_growth,
    check_probe_error,
    check_resume_pair,
)

pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(autouse=True)
def _quiet_logs():
    logging.disable(logging.WARNING)
    yield
    logging.disable(logging.NOTSET)


class TestSoakPlans:
    def test_shipped_profiles(self):
        assert soak_plan_names() == ["default", "heavy", "none", "quiet"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(FaultPlanError, match="profile"):
            soak_plan("storm")

    def test_bad_horizon_rejected(self):
        with pytest.raises(FaultPlanError, match="horizon"):
            soak_plan("default", horizon_s=0.0)

    def test_none_profile_is_empty(self):
        plan = soak_plan("none", horizon_s=DAY_S)
        assert plan.plan.specs == ()
        assert plan.incidents == ()

    def test_quiet_profile_is_background_only(self):
        plan = soak_plan("quiet", horizon_s=DAY_S)
        assert plan.incidents == ()
        assert plan.plan.specs  # the always-on sensor noise
        assert all(math.isinf(spec.end) for spec in plan.plan.specs)

    def test_default_schedules_the_daily_rota(self):
        plan = soak_plan("default", horizon_s=2 * DAY_S)
        names = [i.name for i in plan.incidents]
        assert "day0/estimator-storm" in names
        assert "day1/estimator-storm" in names
        assert len(plan.incidents) == 12  # 6 templates x 2 days
        starts = [i.start for i in plan.incidents]
        assert starts == sorted(starts)

    def test_incidents_clip_to_the_horizon(self):
        horizon = 0.25 * DAY_S  # ends inside the brownout window
        plan = soak_plan("default", horizon_s=horizon)
        assert all(i.start < horizon for i in plan.incidents)
        assert all(i.end <= horizon for i in plan.incidents)

    def test_heavy_scales_probabilities(self):
        default = soak_plan("default", horizon_s=DAY_S)
        heavy = soak_plan("heavy", horizon_s=DAY_S)
        by_kind = {s.kind: s for s in default.plan.specs
                   if not math.isinf(s.end)}
        for spec in heavy.plan.specs:
            if math.isinf(spec.end) or spec.probability >= 1.0:
                continue
            assert spec.probability == pytest.approx(
                min(by_kind[spec.kind].probability * 1.6, 1.0))

    def test_incident_overlap_is_half_open(self):
        incident = Incident("day0/x", ("cap-transient",), 100.0, 200.0)
        assert incident.overlaps(150.0, 160.0)
        assert incident.overlaps(50.0, 101.0)
        assert not incident.overlaps(200.0, 300.0)
        assert not incident.overlaps(0.0, 100.0)
        assert incident.duration_s == 100.0


class TestInvariantChecks:
    def test_catalog_is_stable(self):
        assert "cap-never-exceeded" in INVARIANTS
        assert len(INVARIANTS) == 6

    def test_check_cap_flags_only_exceeding_epochs(self):
        violations = check_cap(100.0, [99.0, 100.0, 130.0, 80.0], 7.0)
        assert len(violations) == 1
        assert violations[0].invariant == "cap-never-exceeded"
        assert "epoch 2" in violations[0].detail
        assert violations[0].at_s == 7.0

    def test_check_probe_error_accepts_typed(self):
        assert check_probe_error(ServiceOverloaded("shed"), 1.0) is None
        assert check_probe_error(ReproError("typed"), 1.0) is None

    def test_check_probe_error_rejects_untyped(self):
        violation = check_probe_error(KeyError("boom"), 2.0)
        assert violation is not None
        assert violation.invariant == "typed-errors-only"
        assert "KeyError" in violation.detail

    def test_check_resume_pair_equal_passes(self):
        @dataclasses.dataclass
        class Report:
            energy: float
            met: bool

        assert check_resume_pair(Report(1.0, True),
                                 Report(1.0, True), 3.0) is None

    def test_check_resume_pair_divergence_names_fields(self):
        @dataclasses.dataclass
        class Report:
            energy: float
            met: bool

        violation = check_resume_pair(Report(1.0, True),
                                      Report(2.0, True), 3.0)
        assert violation.invariant == "crash-resume-bit-equal"
        assert "energy" in violation.detail
        assert "met" not in violation.detail.split("[")[1]

    def test_check_memory_growth_within_slack_passes(self):
        assert check_memory_growth("series", 40, 45, 8, 9.0) is None

    def test_check_memory_growth_beyond_slack_fails(self):
        violation = check_memory_growth("series", 40, 60, 8, 9.0)
        assert violation.invariant == "bounded-memory"
        assert "40" in violation.detail and "60" in violation.detail

    def test_violation_round_trips_to_dict(self):
        violation = InvariantViolation("soak-survives", 5.0, "boom")
        assert json.loads(json.dumps(violation.to_dict())) == {
            "invariant": "soak-survives", "at_s": 5.0, "detail": "boom"}


class TestSoakConfig:
    def test_defaults_validate(self):
        SoakConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("horizon_s", 0.0),
        ("segment_interval_s", -1.0),
        ("tenants", 0),
        ("fleet_shards", 0),
        ("utilization", 1.5),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SoakConfig(**{field: value}).validate()

    def test_horizon_shorter_than_a_segment_rejected(self):
        with pytest.raises(ValueError, match="segment"):
            SoakConfig(horizon_s=10.0, segment_interval_s=100.0).validate()

    def test_segment_grid(self):
        config = SoakConfig(horizon_s=10 * 3600.0,
                            segment_interval_s=3600.0)
        assert config.num_segments == 10
        assert config.segment_start(3) == 3 * 3600.0

    def test_too_many_tenants_rejected(self):
        from repro.soak import SoakHarness
        with pytest.raises(ValueError, match="tenants"):
            SoakHarness(SoakConfig(tenants=4096))


def _short(plan, **overrides):
    defaults = dict(horizon_s=2 * 3600.0, segment_interval_s=3600.0,
                    tenants=4, plan=plan, fleet_probes=2,
                    canary_windows=1, resume_every=2)
    defaults.update(overrides)
    return SoakConfig(**defaults)


class TestSoakHarness:
    def test_none_plan_passes_everything(self):
        report = soak_run(_short("none"))
        assert report.passed
        assert report.segments_run == 2
        assert report.deadline_hit_rate == 1.0
        assert report.availability == 1.0
        assert report.fault_counts == {}
        assert report.canary_final_tier == "leo"

    def test_simulates_the_full_horizon(self):
        report = soak_run(_short("none"))
        assert report.simulated_s == pytest.approx(2 * 3600.0)

    def test_fingerprint_is_bit_identical_across_runs(self):
        first = soak_run(_short("default"))
        second = soak_run(_short("default"))
        assert first.fingerprint == second.fingerprint
        assert first.wall_s != second.wall_s or True  # wall may differ

    def test_fingerprint_excludes_wall_time(self):
        report = soak_run(_short("none"))
        fingerprint = report.fingerprint
        report.wall_s *= 100.0
        assert report.fingerprint == fingerprint

    def test_fingerprint_varies_with_seed(self):
        assert (soak_run(_short("default")).fingerprint
                != soak_run(_short("default", seed=1)).fingerprint)

    def test_default_plan_injects_and_survives(self):
        report = soak_run(_short("default"))
        assert report.passed, [v.to_dict() for v in report.violations]
        assert report.fault_counts
        assert report.segments_run == 2

    def test_resume_probe_runs_under_faults(self):
        report = soak_run(_short("default"))
        assert report.resume_probes == 1
        report = soak_run(_short("default", resume_every=0))
        assert report.resume_probes == 0

    def test_report_round_trips_to_json(self):
        report = soak_run(_short("default"))
        payload = json.loads(json.dumps(report.to_dict(), default=float))
        assert payload["passed"] is report.passed
        assert payload["segments"][0]["index"] == 0
        assert set(payload["slo"]) == {"objectives", "events", "streams"}

    def test_incident_reports_cover_the_schedule(self):
        # Half a day at hourly segments crosses the estimator storm
        # and brownout windows.
        report = soak_run(_short("default", horizon_s=12 * 3600.0))
        names = [i.name for i in report.incidents]
        assert "day0/estimator-storm" in names
        assert "day0/brownout" in names
        storm = next(i for i in report.incidents
                     if i.name == "day0/estimator-storm")
        assert storm.segments >= 1

    def test_shared_context_reused(self):
        from repro.experiments.harness import default_context
        from repro.soak import SoakHarness

        ctx = default_context(space_kind="cores", seed=0)
        harness = SoakHarness(_short("none"), ctx=ctx)
        assert harness.ctx is ctx
