"""Tests for repro.service.server (broker, admission, coalescing).

The deterministic ``sleep`` diagnostic op stands in for real fits:
overload and deadline behaviour depend only on how long a handler
occupies a worker, and ``sleep`` makes that exact.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.estimators import LEOEstimator, register, unregister
from repro.estimators.base import EstimationProblem, Estimator
from repro.service import (
    DeadlineExceeded,
    EstimationService,
    ModelRegistry,
    RequestRejected,
    ServerThread,
    ServiceClient,
    ServiceOverloaded,
)
from repro.service.protocol import Request, decode_frame, encode_frame


@pytest.fixture()
def server(tmp_path):
    service = EstimationService(registry=ModelRegistry(tmp_path / "reg"))
    with ServerThread(service, max_pending=2, max_workers=1,
                      default_deadline_s=10.0) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServiceClient(server.bound_address, timeout=30.0) as c:
        yield c


def _problem(seed=0, n=16):
    rng = np.random.default_rng(seed)
    return EstimationProblem(
        features=rng.random((n, 3)),
        prior=rng.random((4, n)) + 0.5,
        observed_indices=np.arange(0, n, 3),
        observed_values=rng.random(len(range(0, n, 3))) + 0.5)


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping(echo="hello") == {"pong": True, "echo": "hello"}

    def test_unknown_op_rejected_with_known_list(self, client):
        with pytest.raises(RequestRejected, match="estimate"):
            client.call("frobnicate")

    def test_estimate_matches_in_process(self, client):
        problem = _problem()
        remote = client.estimate(problem, estimator="leo")
        local = LEOEstimator().estimate(problem)
        assert np.array_equal(remote, local)  # bit-exact, not allclose

    def test_estimate_rejects_bad_payload(self, client):
        with pytest.raises(RequestRejected):
            client.call("estimate", {"problem": {"features": [[1.0]]}})

    def test_unknown_estimator_rejected(self, client):
        with pytest.raises(RequestRejected, match="magic"):
            client.estimate(_problem(), estimator="magic")

    def test_optimize(self, client):
        result = client.optimize(
            np.array([1.0, 2.0, 4.0]), np.array([10.0, 15.0, 40.0]),
            idle_power=5.0, work=100.0, deadline=50.0)
        assert result["energy"] > 0
        assert result["max_rate"] == 4.0
        total = sum(s["duration"] for s in result["schedule"])
        assert total <= 50.0 + 1e-9

    def test_metrics_op(self, client):
        client.ping()
        snapshot = client.metrics()
        assert snapshot["metrics"]["counters"]["service_requests_total"] >= 1
        assert snapshot["admission"]["max_pending"] == 2

    def test_malformed_frame_gets_protocol_error(self, server):
        sock = server.bound_address.connect(timeout=10.0)
        try:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
            frame = decode_frame(line)
            assert frame["ok"] is False
            assert frame["error"]["type"] == "protocol-error"
        finally:
            sock.close()

    def test_custom_registered_estimator_served(self, client):
        class Doubler(Estimator):
            name = "doubler"

            def estimate(self, problem):
                curve = np.zeros(problem.num_configs)
                curve[problem.observed_indices] = \
                    2.0 * problem.observed_values
                return curve

        register("doubler-svc", Doubler)
        try:
            problem = _problem()
            remote = client.estimate(problem, estimator="doubler-svc")
            expected = np.zeros(problem.num_configs)
            expected[problem.observed_indices] = \
                2.0 * problem.observed_values
            assert np.array_equal(remote, expected)
        finally:
            assert unregister("doubler-svc")


class TestAdmissionControl:
    def test_bound_k_sheds_request_k_plus_one_within_deadline(self, server):
        """The acceptance criterion: with the queue bound at k, request
        k+1 receives ServiceOverloaded well inside its own deadline
        rather than hanging behind the queue."""
        address = server.bound_address
        # One worker, bound 2: two sleeps fill the budget.
        occupiers, errors = [], []

        def occupy():
            with ServiceClient(address, timeout=30.0) as c:
                try:
                    occupiers.append(c.sleep(1.2, deadline_s=10.0))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=occupy) for _ in range(2)]
        for t in threads:
            t.start()
        _wait_for_admitted(address, 2)

        with ServiceClient(address, timeout=30.0) as c:
            started = time.monotonic()
            with pytest.raises(ServiceOverloaded) as excinfo:
                c.sleep(0.1, deadline_s=5.0)
            elapsed = time.monotonic() - started
        assert elapsed < 5.0, "shed response must beat the deadline"
        assert excinfo.value.details["max_pending"] == 2
        for t in threads:
            t.join(30.0)
        assert not errors, errors
        assert len(occupiers) == 2  # admitted work completed normally

    def test_shed_count_exported(self, server):
        address = server.bound_address
        threads = [threading.Thread(
            target=lambda: _swallow(ServiceOverloaded, address))
            for _ in range(2)]
        for t in threads:
            t.start()
        _wait_for_admitted(address, 2)
        with ServiceClient(address) as c:
            with pytest.raises(ServiceOverloaded):
                c.sleep(0.1, deadline_s=5.0)
            shed = c.metrics()["metrics"]["counters"]["service_shed_total"]
        assert shed >= 1
        for t in threads:
            t.join(30.0)

    def test_inline_ops_never_shed(self, server):
        address = server.bound_address
        threads = [threading.Thread(
            target=lambda: _swallow(Exception, address))
            for _ in range(2)]
        for t in threads:
            t.start()
        _wait_for_admitted(address, 2)
        with ServiceClient(address) as c:
            # The budget is exhausted, yet ping and metrics still answer.
            assert c.ping()["pong"] is True
            assert c.metrics()["admission"]["admitted"] == 2
        for t in threads:
            t.join(30.0)

    def test_budget_released_after_completion(self, server, client):
        client.sleep(0.05, deadline_s=5.0)
        client.sleep(0.05, deadline_s=5.0)
        client.sleep(0.05, deadline_s=5.0)  # would shed if leaked
        assert client.metrics()["admission"]["admitted"] == 0


class TestDeadlines:
    def test_expired_deadline_returns_typed_error(self, client):
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded, match="0.2"):
            client.sleep(2.0, deadline_s=0.2)
        # The response arrives at the deadline, not after the sleep.
        assert time.monotonic() - started < 1.5

    def test_deadline_does_not_cancel_computation(self, server, client):
        with pytest.raises(DeadlineExceeded):
            client.sleep(0.6, deadline_s=0.1)
        deadline = (client.metrics()["metrics"]["counters"]
                    ["service_deadline_exceeded_total"])
        assert deadline == 1
        # The abandoned sleep still occupies the worker until it ends;
        # once it does, the budget drains back to zero.
        _wait_for_admitted(server.bound_address, 0, timeout=5.0)

    def test_connection_kept_after_deadline(self, client):
        with pytest.raises(DeadlineExceeded):
            client.sleep(0.5, deadline_s=0.1)
        # Same connection still serves later calls (stale responses to
        # the abandoned request are discarded by id).
        assert client.ping()["pong"] is True


class TestCoalescing:
    def test_identical_estimates_share_one_fit(self, server):
        address = server.bound_address
        problem = _problem(seed=9)
        results, errors = [], []

        def fit():
            with ServiceClient(address, timeout=60.0) as c:
                try:
                    results.append(c.estimate(problem, estimator="leo",
                                              deadline_s=30.0))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        # Hold the single worker so all three fits queue and coalesce.
        holder = threading.Thread(
            target=lambda: _swallow(Exception, address, seconds=0.8))
        holder.start()
        _wait_for_admitted(address, 1)
        # Admission bound is 2: the group must occupy ONE slot, or the
        # second and third fit would be shed.
        threads = [threading.Thread(target=fit) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        holder.join(30.0)
        assert not errors, errors
        assert len(results) == 3
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])
        with ServiceClient(address) as c:
            counters = c.metrics()["metrics"]["counters"]
        assert counters.get("service_coalesced_total", 0) == 2

    def test_different_payloads_not_coalesced(self, server):
        address = server.bound_address
        with ServiceClient(address, timeout=60.0) as c:
            a = c.estimate(_problem(seed=1), estimator="leo")
            b = c.estimate(_problem(seed=2), estimator="leo")
            counters = c.metrics()["metrics"]["counters"]
        assert not np.array_equal(a, b)
        assert counters.get("service_coalesced_total", 0) == 0


class TestServiceDirect:
    """EstimationService is usable without any transport."""

    def test_handle_dispatch(self):
        service = EstimationService()
        payload = service.handle(Request(op="ping", payload={"echo": 1}))
        assert payload == {"pong": True, "echo": 1}

    def test_ops_listing(self):
        ops = EstimationService.ops()
        assert {"ping", "estimate", "optimize",
                "calibrate-report", "registry-list", "sleep"} <= set(ops)

    def test_negative_sleep_rejected(self):
        with pytest.raises(RequestRejected):
            EstimationService().handle(
                Request(op="sleep", payload={"seconds": -1}))

    def test_registry_list_without_registry(self):
        payload = EstimationService().handle(Request(op="registry-list"))
        assert payload == {"models": [], "applications": []}


class TestLifecycle:
    def test_shutdown_op_stops_server(self, tmp_path):
        thread = ServerThread(EstimationService())
        address = thread.start()
        with ServiceClient(address) as c:
            assert c.shutdown() == {"stopping": True}
        thread._thread.join(10.0)
        assert thread._thread is None or not thread._thread.is_alive()
        thread.stop()

    def test_unix_socket_transport(self, tmp_path):
        from repro.service import ServiceAddress
        path = str(tmp_path / "svc.sock")
        with ServerThread(EstimationService(),
                          address=ServiceAddress(path=path)) as thread:
            assert str(thread.bound_address) == f"unix:{path}"
            with ServiceClient(thread.bound_address) as c:
                assert c.ping()["pong"] is True

    def test_double_start_rejected(self):
        with ServerThread(EstimationService()) as thread:
            with pytest.raises(RuntimeError):
                thread.start()


def _swallow(exc_type, address, seconds=1.2):
    """Issue a sleep from a throwaway client, ignoring expected errors."""
    try:
        with ServiceClient(address, timeout=30.0) as c:
            c.sleep(seconds, deadline_s=10.0)
    except exc_type:
        pass


def _wait_for_admitted(address, count, timeout=5.0):
    """Poll the inline metrics op until ``admitted`` reaches ``count``."""
    deadline = time.monotonic() + timeout
    with ServiceClient(address, timeout=10.0) as c:
        while time.monotonic() < deadline:
            if c.metrics()["admission"]["admitted"] == count:
                return
            time.sleep(0.02)
    raise AssertionError(
        f"admitted never reached {count} within {timeout}s")
