"""Tests for repro.estimators.registry."""

import pytest

from repro.estimators.base import Estimator
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import OnlineEstimator
from repro.estimators.registry import (
    available_estimators,
    create_estimator,
    register_estimator,
)


class TestCreation:
    def test_known_names(self):
        assert isinstance(create_estimator("leo"), LEOEstimator)
        assert isinstance(create_estimator("offline"), OfflineEstimator)
        assert isinstance(create_estimator("online"), OnlineEstimator)

    def test_case_insensitive(self):
        assert isinstance(create_estimator("LEO"), LEOEstimator)

    def test_kwargs_forwarded(self):
        online = create_estimator("online", degree=3)
        assert online.degree == 3

    def test_fresh_instances(self):
        assert create_estimator("leo") is not create_estimator("leo")

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="leo"):
            create_estimator("magic")

    def test_available_names(self):
        names = available_estimators()
        assert {"leo", "offline", "online"} <= set(names)
        assert names == sorted(names)


class TestRegistration:
    def test_register_custom(self):
        class Custom(Estimator):
            name = "custom"

            def estimate(self, problem):
                raise NotImplementedError

        register_estimator("custom-test", Custom)
        try:
            assert isinstance(create_estimator("custom-test"), Custom)
        finally:
            from repro.estimators import registry
            registry._FACTORIES.pop("custom-test", None)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_estimator("", OfflineEstimator)
