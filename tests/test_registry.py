"""Tests for repro.estimators.registry."""

import pytest

from repro.estimators.base import Estimator
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import OnlineEstimator
from repro.estimators.registry import (
    available_estimators,
    create_estimator,
    register,
    register_estimator,
    unregister,
)


class TestCreation:
    def test_known_names(self):
        assert isinstance(create_estimator("leo"), LEOEstimator)
        assert isinstance(create_estimator("offline"), OfflineEstimator)
        assert isinstance(create_estimator("online"), OnlineEstimator)

    def test_case_insensitive(self):
        assert isinstance(create_estimator("LEO"), LEOEstimator)

    def test_kwargs_forwarded(self):
        online = create_estimator("online", degree=3)
        assert online.degree == 3

    def test_fresh_instances(self):
        assert create_estimator("leo") is not create_estimator("leo")

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="leo"):
            create_estimator("magic")

    def test_available_names(self):
        names = available_estimators()
        assert {"leo", "offline", "online"} <= set(names)
        assert names == sorted(names)


class TestRegistration:
    def test_register_custom(self):
        class Custom(Estimator):
            name = "custom"

            def estimate(self, problem):
                raise NotImplementedError

        register_estimator("custom-test", Custom)
        try:
            assert isinstance(create_estimator("custom-test"), Custom)
        finally:
            from repro.estimators import registry
            registry._FACTORIES.pop("custom-test", None)

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError):
            register_estimator("", OfflineEstimator)


class _Custom(Estimator):
    name = "custom"

    def __init__(self, knob=0):
        self.knob = knob

    def estimate(self, problem):
        raise NotImplementedError


class TestPublicRegisterHook:
    def test_register_and_create(self):
        register("hook-test", _Custom)
        try:
            built = create_estimator("hook-test", knob=3)
            assert isinstance(built, _Custom)
            assert built.knob == 3
            assert "hook-test" in available_estimators()
        finally:
            assert unregister("hook-test")

    def test_duplicate_name_rejected(self):
        register("dup-test", _Custom)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register("dup-test", _Custom)
            # Builtins are protected the same way.
            with pytest.raises(ValueError, match="already registered"):
                register("leo", _Custom)
        finally:
            assert unregister("dup-test")

    def test_duplicate_check_is_case_insensitive(self):
        register("case-test", _Custom)
        try:
            with pytest.raises(ValueError):
                register("CASE-TEST", _Custom)
        finally:
            assert unregister("Case-Test")

    def test_non_callable_factory_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            register("bad-factory", object())

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register("", _Custom)
        with pytest.raises(ValueError):
            register(None, _Custom)

    def test_unregister_missing_returns_false(self):
        assert not unregister("never-registered")

    def test_unknown_kwargs_error_names_them(self):
        register("kwargs-test", _Custom)
        try:
            with pytest.raises(TypeError) as excinfo:
                create_estimator("kwargs-test", bogus=1, other=2)
            message = str(excinfo.value)
            assert "kwargs-test" in message
            assert "bogus" in message and "other" in message
        finally:
            assert unregister("kwargs-test")

    def test_builtin_unknown_kwargs_wrapped(self):
        with pytest.raises(TypeError, match="'leo'.*frobnicate"):
            create_estimator("leo", frobnicate=True)
