"""Tests for the cluster coordinator's epoch loop.

The subsystem's acceptance invariants, asserted on real runs over the
cores-only space: the conservative per-epoch node peak never exceeds
the cap, every tenant meets its deadline when the cap allows it, runs
are bit-identical under a fixed seed, membership churn triggers
re-partitioning and re-allocation, and any Estimator instance —
including a RemoteEstimator speaking to a live service thread — can
drive calibration.
"""

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, Tenant
from repro.cluster.partition import PartitionedMachine
from repro.estimators.leo import LEOEstimator
from repro.obs import Observability
from repro.service import (
    EstimationService,
    RemoteEstimator,
    ServerThread,
    ServiceClient,
)
from repro.workloads.suite import get_benchmark

CAP = 220.0
DEADLINE = 15.0
SEED = 3


def sized_work(cores_space, names, utilizations, deadline=DEADLINE):
    """Demand each tenant's utilization of its partition capacity."""
    share = cores_space.topology.total_cores // len(names)
    node = PartitionedMachine(cores_space, [(n, share) for n in names])
    for name in names:
        node.set_profile(name, get_benchmark(name))
    work = {}
    for name, utilization in zip(names, utilizations):
        view = node.view(name)
        profile = get_benchmark(name)
        max_rate = max(view.true_rate(profile, c)
                       for c in node.space_for(name).space)
        work[name] = utilization * max_rate * deadline
    return work


def build(cores_space, cores_dataset, policy="joint", cap=CAP,
          seed=SEED, observability=None,
          names=("kmeans", "blackscholes"), utilizations=(0.3, 0.4)):
    coordinator = ClusterCoordinator(
        cores_space, cap_watts=cap, policy=policy, seed=seed,
        observability=observability)
    work = sized_work(cores_space, names, utilizations)
    for name in names:
        view = cores_dataset.leave_one_out(name)
        coordinator.admit(Tenant(
            name=name, workload=get_benchmark(name), work=work[name],
            deadline=DEADLINE,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
    return coordinator


@pytest.fixture(scope="module")
def joint_run(cores_space, cores_dataset):
    """One recorded joint run shared by the invariant assertions."""
    observability = Observability.recording()
    coordinator = build(cores_space, cores_dataset,
                        observability=observability)
    report = coordinator.run()
    return report, observability


class TestCapAndDeadlines:
    def test_cap_respected_every_epoch(self, joint_run):
        report, _ = joint_run
        assert report.epoch_peak_watts, "no epochs ran"
        assert report.cap_respected
        for peak in report.epoch_peak_watts:
            assert peak <= CAP * (1.0 + 1e-6)

    def test_all_deadlines_met_on_true_curves(self, joint_run):
        report, _ = joint_run
        assert report.all_deadlines_met
        for tenant in report.tenants.values():
            assert tenant.work_done >= 0.99 * tenant.work_target

    def test_budgets_granted_every_epoch(self, joint_run):
        report, _ = joint_run
        for tenant in report.tenants.values():
            assert tenant.epochs > 0
            assert len(tenant.budget_trace) == tenant.epochs
            assert all(b > 0 for b in tenant.budget_trace)

    def test_energy_accounted(self, joint_run):
        report, _ = joint_run
        assert report.node_energy > 0
        assert report.node_energy == pytest.approx(
            sum(t.energy for t in report.tenants.values()))
        assert report.total_energy == report.node_energy


class TestObservability:
    def test_span_tree_covers_the_loop(self, joint_run):
        _, ob = joint_run
        names = [s.name for s in ob.tracer.spans]
        for expected in ("cluster.run", "cluster.repartition",
                         "cluster.calibrate", "cluster.allocate",
                         "cluster.epoch", "cluster.tenant_epoch"):
            assert expected in names, f"missing span {expected}"

    def test_cluster_metrics_exported(self, joint_run):
        report, ob = joint_run
        snapshot = ob.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["cluster_epochs_total"] == report.epochs
        assert counters["cluster_admissions_total"] == 2
        assert counters["cluster_reallocations_total"] == (
            report.reallocations)
        assert counters.get("cluster_cap_violations_total", 0) == 0
        assert snapshot["histograms"][
            "cluster_epoch_peak_watts"]["count"] == report.epochs


class TestDeterminism:
    def test_fixed_seed_runs_are_bit_identical(self, joint_run,
                                               cores_space,
                                               cores_dataset):
        first, _ = joint_run
        second = build(cores_space, cores_dataset).run()
        assert second.node_energy == first.node_energy
        assert second.epoch_peak_watts == first.epoch_peak_watts
        assert second.epochs == first.epochs
        for name, tenant in first.tenants.items():
            assert second.tenants[name].work_done == tenant.work_done
            assert second.tenants[name].budget_trace == (
                tenant.budget_trace)


class TestMembershipChurn:
    def test_arrival_and_departure_drive_reallocation(self, cores_space,
                                                      cores_dataset):
        coordinator = build(cores_space, cores_dataset, seed=9)
        view = cores_dataset.leave_one_out("swish")
        work = sized_work(cores_space, ("swish",), (0.2,), deadline=6.0)
        coordinator.admit(Tenant(
            name="swish", workload=get_benchmark("swish"),
            work=work["swish"] / 4.0, deadline=6.0, arrival=4.0,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
        report = coordinator.run()
        assert set(report.tenants) == {"kmeans", "blackscholes", "swish"}
        # Arrival and departure each force a re-partition + re-allocate
        # on top of the initial one.
        assert report.reallocations >= 3
        assert report.cap_respected

    def test_depart_removes_pending_tenant(self, cores_space,
                                           cores_dataset):
        coordinator = build(cores_space, cores_dataset)
        view = cores_dataset.leave_one_out("swish")
        coordinator.admit(Tenant(
            name="swish", workload=get_benchmark("swish"), work=100.0,
            deadline=5.0, arrival=50.0,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
        coordinator.depart("swish")
        report = coordinator.run()
        assert "swish" not in report.tenants


class TestEstimatorPlugability:
    def test_estimator_instance_is_accepted(self, cores_space,
                                            cores_dataset):
        coordinator = ClusterCoordinator(cores_space, cap_watts=CAP,
                                         seed=SEED)
        view = cores_dataset.leave_one_out("kmeans")
        work = sized_work(cores_space, ("kmeans",), (0.3,))
        coordinator.admit(Tenant(
            name="kmeans", workload=get_benchmark("kmeans"),
            work=work["kmeans"], deadline=DEADLINE,
            estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
        report = coordinator.run()
        assert report.all_deadlines_met
        assert report.cap_respected

    def test_remote_estimator_end_to_end(self, cores_space,
                                         cores_dataset):
        work = sized_work(cores_space, ("kmeans",), (0.3,))
        view = cores_dataset.leave_one_out("kmeans")
        with ServerThread(EstimationService(), max_pending=4,
                          max_workers=1) as thread:
            with ServiceClient(thread.bound_address,
                               timeout=120.0) as client:
                coordinator = ClusterCoordinator(
                    cores_space, cap_watts=CAP, seed=SEED)
                coordinator.admit(Tenant(
                    name="kmeans", workload=get_benchmark("kmeans"),
                    work=work["kmeans"], deadline=DEADLINE,
                    estimator=RemoteEstimator(client, estimator="leo"),
                    prior_rates=view.prior_rates,
                    prior_powers=view.prior_powers))
                remote_report = coordinator.run()
        assert remote_report.all_deadlines_met
        assert remote_report.cap_respected


class TestValidation:
    def test_run_without_tenants_rejected(self, cores_space):
        with pytest.raises(ValueError, match="admit"):
            ClusterCoordinator(cores_space, cap_watts=CAP).run()

    def test_duplicate_admission_rejected(self, cores_space,
                                          cores_dataset):
        coordinator = build(cores_space, cores_dataset)
        with pytest.raises(ValueError, match="already admitted"):
            coordinator.admit(Tenant(name="kmeans",
                                     workload=get_benchmark("kmeans"),
                                     work=1.0, deadline=1.0))

    def test_unknown_departure_rejected(self, cores_space):
        coordinator = ClusterCoordinator(cores_space, cap_watts=CAP)
        with pytest.raises(KeyError, match="ghost"):
            coordinator.depart("ghost")

    def test_bad_policy_and_cap_rejected(self, cores_space):
        with pytest.raises(ValueError, match="policy"):
            ClusterCoordinator(cores_space, cap_watts=CAP, policy="fair")
        with pytest.raises(ValueError, match="cap_watts"):
            ClusterCoordinator(cores_space, cap_watts=0.0)

    def test_tenant_field_validation(self):
        kmeans = get_benchmark("kmeans")
        with pytest.raises(ValueError, match="work"):
            Tenant(name="a", workload=kmeans, work=0.0, deadline=1.0)
        with pytest.raises(ValueError, match="deadline"):
            Tenant(name="a", workload=kmeans, work=1.0, deadline=0.0)
        with pytest.raises(ValueError, match="arrival"):
            Tenant(name="a", workload=kmeans, work=1.0, deadline=1.0,
                   arrival=-1.0)
        with pytest.raises(ValueError, match="cores"):
            Tenant(name="a", workload=kmeans, work=1.0, deadline=1.0,
                   cores=0)
        with pytest.raises(ValueError, match="name"):
            Tenant(name="", workload=kmeans, work=1.0, deadline=1.0)

    def test_oversubscribed_cores_rejected(self, cores_space,
                                           cores_dataset):
        coordinator = ClusterCoordinator(cores_space, cap_watts=CAP)
        view = cores_dataset.leave_one_out("kmeans")
        for i in range(17):
            coordinator.admit(Tenant(
                name=f"t{i}", workload=get_benchmark("kmeans"),
                work=10.0, deadline=5.0,
                prior_rates=view.prior_rates,
                prior_powers=view.prior_powers))
        with pytest.raises(ValueError):
            coordinator.run()
