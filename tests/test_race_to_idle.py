"""Tests for repro.runtime.race_to_idle."""

import numpy as np
import pytest

from repro.platform.machine import Machine
from repro.runtime.race_to_idle import (
    RaceToIdleController,
    all_resources_config,
    race_to_idle_energy,
)


class TestAllResourcesConfig:
    def test_paper_space_maximum(self, paper_space):
        config = all_resources_config(paper_space)
        assert config.cores == 16
        assert config.threads == 32
        assert config.memory_controllers == 2
        assert config.speed.turbo

    def test_cores_space_maximum(self, cores_space):
        config = all_resources_config(cores_space)
        assert config.threads == 32


class TestController:
    def test_finishes_then_idles(self, machine, kmeans, cores_space):
        controller = RaceToIdleController(machine, cores_space)
        # kmeans at 32 threads is slow but nonzero; pick modest work.
        config = all_resources_config(cores_space)
        rate = machine.true_rate(kmeans, config)
        report = controller.run(kmeans, work=rate * 5.0, deadline=20.0)
        assert report.met_target
        assert report.work_done >= 0.99 * rate * 5.0
        # Tail of the traces must be idle.
        assert report.rate_trace[-1] == 0.0

    def test_energy_includes_idle_tail(self, machine, kmeans, cores_space):
        controller = RaceToIdleController(machine, cores_space)
        config = all_resources_config(cores_space)
        rate = machine.true_rate(kmeans, config)
        power = machine.true_power(kmeans, config)
        report = controller.run(kmeans, work=rate * 5.0, deadline=20.0)
        expected = power * 5.0 + machine.idle_power() * 15.0
        assert report.energy == pytest.approx(expected, rel=0.05)

    def test_never_exceeds_deadline(self, machine, swish, cores_space):
        controller = RaceToIdleController(machine, cores_space)
        report = controller.run(swish, work=1e9, deadline=10.0)
        assert machine.clock <= 10.0 + 1e-6
        assert not report.met_target

    def test_validation(self, machine, kmeans, cores_space):
        controller = RaceToIdleController(machine, cores_space)
        with pytest.raises(ValueError):
            controller.run(kmeans, work=-1.0, deadline=10.0)
        with pytest.raises(ValueError):
            controller.run(kmeans, work=1.0, deadline=0.0)
        with pytest.raises(ValueError):
            RaceToIdleController(machine, cores_space, quantum_fraction=0.0)


class TestClosedForm:
    def test_energy_formula(self):
        rates = np.array([10.0, 20.0])
        powers = np.array([100.0, 300.0])
        energy = race_to_idle_energy(rates, powers, race_index=1,
                                     idle_power=50.0, work=100.0,
                                     deadline=10.0)
        assert energy == pytest.approx(300.0 * 5.0 + 50.0 * 5.0)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            race_to_idle_energy(np.array([1.0]), np.array([100.0]), 0,
                                50.0, work=100.0, deadline=10.0)

    def test_closed_form_matches_simulation(self, machine, kmeans,
                                            cores_space):
        """The controller's measured energy matches the formula."""
        config = all_resources_config(cores_space)
        race_index = cores_space.index_of(config)
        rates, powers = machine.sweep(kmeans, cores_space, noisy=False)
        work = rates[race_index] * 4.0
        expected = race_to_idle_energy(rates, powers, race_index,
                                       machine.idle_power(), work, 20.0)
        controller = RaceToIdleController(machine, cores_space)
        report = controller.run(kmeans, work=work, deadline=20.0)
        assert report.energy == pytest.approx(expected, rel=0.05)
