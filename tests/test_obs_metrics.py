"""Tests for repro.obs metrics: instruments, snapshot math, export."""

import json
import math

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    start_timer,
    stop_timer,
    timed,
    timer,
    use,
    Observability,
)


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2.5)
        assert reg.snapshot()["counters"]["hits"] == pytest.approx(3.5)

    def test_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("hits", -1.0)

    def test_value_stays_plain_float(self):
        np = pytest.importorskip("numpy")
        reg = MetricsRegistry()
        reg.inc("joules", np.float64(2.0))
        value = reg.snapshot()["counters"]["joules"]
        assert type(value) is float


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("ratio", 0.5)
        reg.set_gauge("ratio", 0.25)
        assert reg.snapshot()["gauges"]["ratio"] == pytest.approx(0.25)

    def test_unset_gauge_absent_from_snapshot(self):
        assert MetricsRegistry().snapshot()["gauges"] == {}


class TestHistogramPercentiles:
    def test_nearest_rank_on_known_data(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0

    def test_small_sample_percentiles(self):
        h = Histogram("t")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.percentile(50) == 2.0
        assert h.percentile(99) == 3.0

    def test_summary_fields(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == 2.0

    def test_empty_histogram_is_nan(self):
        h = Histogram("t")
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))

    def test_percentile_range_validated(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.percentile(101)


class TestRegistry:
    def test_name_collision_across_kinds(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError):
            reg.observe("x", 1.0)
        with pytest.raises(ValueError):
            reg.set_gauge("x", 1.0)

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        reg.observe("lat", 1.0)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert list(snap["counters"]) == ["a", "b"]
        assert set(snap["histograms"]["lat"]) == {
            "count", "sum", "min", "max", "mean", "p50", "p90", "p99"}

    def test_write_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("em_iterations_total", 7)
        reg.observe("fit_seconds", 0.25)
        path = reg.write_json(tmp_path / "metrics.json")
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["em_iterations_total"] == 7.0
        assert loaded["histograms"]["fit_seconds"]["count"] == 1

    def test_clear_empties_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.clear()
        assert reg.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}

    def test_null_registry_is_inert(self):
        NULL_METRICS.inc("a")
        NULL_METRICS.set_gauge("b", 1.0)
        NULL_METRICS.observe("c", 1.0)
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {},
                                           "histograms": {}}


class TestProfilingHooks:
    def test_timer_records_into_ambient_registry(self):
        ob = Observability.recording()
        with use(ob):
            with timer("op_seconds"):
                pass
        assert ob.metrics.snapshot()["histograms"]["op_seconds"]["count"] == 1

    def test_timed_decorator(self):
        ob = Observability.recording()

        @timed("fn_seconds")
        def fn():
            return 42

        with use(ob):
            assert fn() == 42
        assert ob.metrics.snapshot()["histograms"]["fn_seconds"]["count"] == 1

    def test_start_stop_pair(self):
        ob = Observability.recording()
        with use(ob):
            started = start_timer()
            assert started is not None
            stop_timer("pair_seconds", started)
        summary = ob.metrics.snapshot()["histograms"]["pair_seconds"]
        assert summary["count"] == 1
        assert summary["min"] >= 0.0

    def test_disabled_pair_is_free(self):
        started = start_timer()
        assert started is None
        stop_timer("ignored", started)  # must not raise or record


class TestReportingIntegration:
    def test_metrics_rows_flattens_snapshot(self):
        from repro.reporting import metrics_rows
        reg = MetricsRegistry()
        reg.inc("lp_resolves_total", 3)
        reg.set_gauge("constraint_violation_ratio", 0.0)
        reg.observe("fit_seconds", 0.5)
        rows = metrics_rows(reg.snapshot())
        kinds = {(kind, name) for kind, name, _, _ in rows}
        assert ("counter", "lp_resolves_total") in kinds
        assert ("gauge", "constraint_violation_ratio") in kinds
        assert sum(1 for k, n, _, _ in rows
                   if (k, n) == ("histogram", "fit_seconds")) == 8

    def test_metrics_rows_rejects_non_snapshot(self):
        from repro.reporting import metrics_rows
        with pytest.raises(ValueError):
            metrics_rows({"counters": {}})

    def test_write_metrics_csv(self, tmp_path):
        from repro.reporting import write_metrics
        reg = MetricsRegistry()
        reg.inc("quanta_total", 20)
        path = write_metrics(tmp_path / "m.csv", reg.snapshot())
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,quanta_total,value,20.0" in lines[1]
