"""Tests for repro.faults: specs, plans, and the deterministic injector."""

import numpy as np
import pytest

from repro.errors import FaultPlanError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, get_injector, use
from repro.faults.injector import NULL_INJECTOR
from repro.faults.plan import KIND_SITES, KINDS, WINDOWED_KINDS
from repro.faults.plans import default_plan, get_plan, plan_names


class TestFaultSpec:
    def test_site_fixed_by_kind(self):
        assert FaultSpec("sensor-dropout").site == "machine.measure"
        assert FaultSpec("connection-drop").site == "service.call"
        assert FaultSpec("partial-write").site == "persistence.write"

    def test_windowed_kinds(self):
        assert FaultSpec("heartbeat-stall").windowed
        assert FaultSpec("cap-transient").windowed
        assert not FaultSpec("sensor-dropout").windowed

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec("disk-on-fire")

    @pytest.mark.parametrize("kwargs", [
        {"probability": -0.1},
        {"probability": 1.5},
        {"start": -1.0},
        {"start": 10.0, "end": 5.0},
        {"max_events": 0},
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultSpec("sensor-dropout", **kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "sensor-dropout", "severity": 2})
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"probability": 0.5})  # missing kind


class TestFaultPlan:
    def test_name_required(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(name="")

    def test_specs_must_be_typed(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(name="x", specs=({"kind": "sensor-dropout"},))

    def test_json_round_trip(self):
        plan = default_plan(seed=42)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("not json {")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"name": "x", "specs": "oops"}')


class TestShippedPlans:
    def test_default_plan_covers_full_taxonomy(self):
        assert default_plan().kinds == KINDS

    def test_every_kind_has_a_site(self):
        assert set(KINDS) == set(KIND_SITES)
        assert set(WINDOWED_KINDS) <= set(KINDS)

    def test_get_plan_by_name(self):
        for name in plan_names():
            plan = get_plan(name, seed=7)
            assert plan.name == name
            assert plan.seed == 7

    def test_unknown_plan_rejected(self):
        with pytest.raises(FaultPlanError):
            get_plan("nope")


class TestInjectorDeterminism:
    def _firing_trace(self, plan, events=200):
        injector = FaultInjector(plan)
        trace = []
        for i in range(events):
            fired = injector.fire("machine.measure", clock=float(i) * 0.5)
            fired += injector.fire("em.fit")
            trace.append(tuple(spec.kind for spec in fired))
        return injector, trace

    def test_same_plan_same_firings(self):
        plan = default_plan(seed=11)
        _, first = self._firing_trace(plan)
        _, second = self._firing_trace(plan)
        assert first == second
        assert any(first), "the default plan should fire something"

    def test_different_seeds_diverge(self):
        _, a = self._firing_trace(default_plan(seed=1))
        _, b = self._firing_trace(default_plan(seed=2))
        assert a != b

    def test_spec_streams_are_independent(self):
        # Appending a spec must not perturb the firing sequence of the
        # specs before it (each stream derives from the spec's own
        # position and kind).
        base = FaultPlan(name="a", seed=5, specs=(
            FaultSpec("sensor-dropout", probability=0.3),))
        extended = FaultPlan(name="b", seed=5, specs=(
            FaultSpec("sensor-dropout", probability=0.3),
            FaultSpec("em-nonconvergence", probability=0.3),))

        def dropout_trace(plan):
            injector = FaultInjector(plan)
            return [bool(injector.fire("machine.measure", clock=float(i)))
                    for i in range(100)]

        assert dropout_trace(base) == dropout_trace(extended)


class TestInjectorSemantics:
    def test_max_events_caps_firings(self):
        plan = FaultPlan(name="capped", specs=(
            FaultSpec("connection-drop", probability=1.0, max_events=3),))
        injector = FaultInjector(plan)
        fired = sum(bool(injector.fire("service.call")) for _ in range(10))
        assert fired == 3
        assert injector.fired_counts == {"connection-drop": 3}
        assert injector.total_fired == 3

    def test_window_positions_by_clock(self):
        plan = FaultPlan(name="windowed", specs=(
            FaultSpec("sensor-dropout", start=5.0, end=10.0,
                      probability=1.0),))
        injector = FaultInjector(plan)
        assert not injector.fire("machine.measure", clock=4.9)
        assert injector.fire("machine.measure", clock=5.0)
        assert injector.fire("machine.measure", clock=9.9)
        assert not injector.fire("machine.measure", clock=10.0)

    def test_clockless_site_positions_by_event_index(self):
        plan = FaultPlan(name="indexed", specs=(
            FaultSpec("em-nonconvergence", start=2.0, probability=1.0),))
        injector = FaultInjector(plan)
        assert not injector.fire("em.fit")  # event 0
        assert not injector.fire("em.fit")  # event 1
        assert injector.fire("em.fit")      # event 2

    def test_windowed_kinds_only_answer_active(self):
        plan = FaultPlan(name="stall", specs=(
            FaultSpec("heartbeat-stall", start=1.0, end=2.0),))
        injector = FaultInjector(plan)
        assert not injector.fire("telemetry.heartbeat", clock=1.5)
        assert injector.active("telemetry.heartbeat", clock=1.5)
        assert not injector.active("telemetry.heartbeat", clock=2.5)
        # active() is a pure query: no counters, no metrics.
        assert injector.total_fired == 0

    def test_target_restricts_victim(self):
        plan = FaultPlan(name="victim", specs=(
            FaultSpec("tenant-crash", target="kmeans", probability=1.0,
                      max_events=1),))
        injector = FaultInjector(plan)
        fired = injector.fire("cluster.tenant", clock=0.0)
        assert fired and fired[0].target == "kmeans"


class TestAmbientContext:
    def test_default_is_the_null_injector(self):
        assert get_injector() is NULL_INJECTOR
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.fire("machine.measure", clock=1.0) == ()
        assert NULL_INJECTOR.active("cluster.cap", clock=1.0) == ()
        assert NULL_INJECTOR.fired_counts == {}

    def test_use_installs_and_restores(self):
        injector = FaultInjector(FaultPlan(name="x"))
        with use(injector) as active:
            assert active is injector
            assert get_injector() is injector
        assert get_injector() is NULL_INJECTOR

    def test_use_none_keeps_current(self):
        injector = FaultInjector(FaultPlan(name="x"))
        with use(injector):
            with use(None) as active:
                assert active is injector

    def test_firing_counts_metrics(self):
        from repro.obs import Observability
        from repro.obs import use as use_obs
        plan = FaultPlan(name="metered", specs=(
            FaultSpec("connection-drop", probability=1.0, max_events=1),))
        observability = Observability.recording()
        with use_obs(observability):
            FaultInjector(plan).fire("service.call")
        counters = observability.metrics.snapshot()["counters"]
        assert counters["fault_injected_total"] == 1
        assert counters["fault_connection_drop_total"] == 1
