"""Tests for repro.analysis.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    paired_diff_ci,
    probability_of_superiority,
)


class TestBootstrapMeanCI:
    def test_estimate_is_sample_mean(self, rng):
        data = rng.normal(10, 2, 50)
        ci = bootstrap_mean_ci(data, seed=1)
        assert ci.estimate == pytest.approx(data.mean())

    def test_interval_brackets_estimate(self, rng):
        data = rng.normal(0, 1, 40)
        ci = bootstrap_mean_ci(data, seed=2)
        assert ci.lower <= ci.estimate <= ci.upper

    def test_coverage_on_normal_data(self):
        """~95% of intervals contain the true mean."""
        true_mean = 5.0
        hits = 0
        trials = 200
        master = np.random.default_rng(0)
        for t in range(trials):
            data = master.normal(true_mean, 1.0, 30)
            ci = bootstrap_mean_ci(data, level=0.95, n_boot=500, seed=t)
            hits += true_mean in ci
        assert 0.85 <= hits / trials <= 1.0

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean_ci(rng.normal(0, 1, 10), seed=4)
        large = bootstrap_mean_ci(rng.normal(0, 1, 1000), seed=4)
        assert large.width < small.width

    def test_deterministic_under_seed(self, rng):
        data = rng.normal(0, 1, 25)
        a = bootstrap_mean_ci(data, seed=7)
        b = bootstrap_mean_ci(data, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, np.nan])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], level=1.0)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], n_boot=10)

    def test_str_rendering(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
        text = str(ci)
        assert "0.500" in text and "95%" in text


class TestPairedDiffCI:
    def test_detects_consistent_small_advantage(self):
        """A tiny but consistent paired gap is significant even when the
        shared trial variance is large."""
        rng = np.random.default_rng(5)
        trial_difficulty = rng.normal(0, 5.0, 40)
        a = trial_difficulty + 0.3 + rng.normal(0, 0.05, 40)
        b = trial_difficulty + rng.normal(0, 0.05, 40)
        ci = paired_diff_ci(a, b, seed=6)
        assert ci.lower > 0  # zero excluded: a reliably beats b

    def test_no_difference_contains_zero(self):
        rng = np.random.default_rng(7)
        base = rng.normal(0, 1, 60)
        a = base + rng.normal(0, 0.5, 60)
        b = base + rng.normal(0, 0.5, 60)
        ci = paired_diff_ci(a, b, seed=8)
        assert 0.0 in ci

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            paired_diff_ci([1.0, 2.0], [1.0])


class TestProbabilityOfSuperiority:
    def test_total_dominance(self):
        assert probability_of_superiority([2, 3, 4], [1, 2, 3]) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(9)
        a = rng.normal(0, 1, 30)
        b = rng.normal(0, 1, 30)
        assert (probability_of_superiority(a, b)
                + probability_of_superiority(b, a)) == pytest.approx(1.0)

    def test_ties_count_half(self):
        assert probability_of_superiority([1, 1], [1, 1]) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_of_superiority([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            probability_of_superiority([], [])

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=50))
    def test_bounded_in_unit_interval(self, values):
        a = np.asarray(values)
        b = a[::-1].copy()
        p = probability_of_superiority(a, b)
        assert 0.0 <= p <= 1.0


class TestOnRealExperiment:
    def test_leo_beats_online_with_confidence(self, cores_dataset,
                                              cores_truth, cores_space):
        """Paired across trials: LEO's accuracy advantage over the
        online baseline excludes zero on the motivating benchmark."""
        from repro.core.accuracy import accuracy
        from repro.estimators.base import (EstimationProblem,
                                           normalize_problem)
        from repro.estimators.registry import create_estimator

        truth = cores_truth.leave_one_out("kmeans").true_rates
        view = cores_dataset.leave_one_out("kmeans")
        leo_scores, online_scores = [], []
        for seed in range(10):
            rng = np.random.default_rng(seed)
            indices = np.sort(rng.choice(32, 8, replace=False))
            problem = EstimationProblem(
                features=cores_space.feature_matrix(),
                prior=view.prior_rates, observed_indices=indices,
                observed_values=truth[indices])
            normalized, scale = normalize_problem(problem)
            for name, scores in (("leo", leo_scores),
                                 ("online", online_scores)):
                estimate = create_estimator(name).estimate(normalized)
                scores.append(accuracy(estimate * scale, truth))
        ci = paired_diff_ci(leo_scores, online_scores, seed=0)
        assert ci.lower > 0
        # Trial-level wins are noisier than the mean gap (the online
        # quadratic occasionally nails kmeans on this small space).
        assert probability_of_superiority(leo_scores, online_scores) > 0.5
