"""Tests for repro.telemetry.power_meter."""

import numpy as np
import pytest

from repro.telemetry.power_meter import RaplMeter, WattsUpMeter


class TestWattsUpMeter:
    def test_idle_reading_near_idle_power(self, machine):
        meter = WattsUpMeter(machine, seed=1)
        sample = meter.sample()
        assert sample.watts == pytest.approx(machine.idle_power(), abs=10.0)

    def test_reading_tracks_running_power(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[7])
        meter = WattsUpMeter(machine, seed=1)
        truth = machine.true_power(kmeans, cores_space[7])
        sample = meter.sample()
        assert sample.watts == pytest.approx(truth, abs=10.0)

    def test_quantization(self, machine):
        meter = WattsUpMeter(machine, quantum=0.1, seed=2)
        for _ in range(5):
            watts = meter.sample().watts
            assert round(watts * 10) == pytest.approx(watts * 10)

    def test_record_window_advances_clock(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[3])
        meter = WattsUpMeter(machine, period=1.0, seed=3)
        samples = meter.record_window(5.0)
        assert len(samples) == 5
        assert machine.clock == pytest.approx(5.0)

    def test_record_window_fractional_tail(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[3])
        meter = WattsUpMeter(machine, period=1.0, seed=3)
        samples = meter.record_window(2.5)
        assert len(samples) == 3
        assert machine.clock == pytest.approx(2.5)

    def test_log_accumulates_and_resets(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[3])
        meter = WattsUpMeter(machine, seed=4)
        meter.record_window(3.0)
        assert len(meter.log) == 3
        meter.reset()
        assert meter.log == []

    def test_timestamps_use_machine_clock(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[3])
        meter = WattsUpMeter(machine, seed=5)
        samples = meter.record_window(3.0)
        times = [s.time for s in samples]
        np.testing.assert_allclose(times, [1.0, 2.0, 3.0])

    def test_rejects_bad_parameters(self, machine):
        with pytest.raises(ValueError):
            WattsUpMeter(machine, period=0.0)
        with pytest.raises(ValueError):
            WattsUpMeter(machine, noise_std=-1.0)
        with pytest.raises(ValueError):
            WattsUpMeter(machine, quantum=-0.1)

    def test_record_window_rejects_nonpositive(self, machine):
        meter = WattsUpMeter(machine)
        with pytest.raises(ValueError):
            meter.record_window(0.0)


class TestRaplMeter:
    def test_finer_granularity_than_wattsup(self, machine, kmeans,
                                            cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[3])
        rapl = RaplMeter(machine, seed=6)
        samples = rapl.record_window(1.0)
        assert len(samples) == 20  # 50 ms period

    def test_chip_power_below_system_power(self, machine, kmeans,
                                           cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[7])
        rapl = RaplMeter(machine, noise_std=0.0, seed=7)
        wattsup = WattsUpMeter(machine, noise_std=0.0, quantum=0.0, seed=7)
        assert rapl.sample().watts < wattsup.sample().watts

    def test_idle_chip_power_is_small(self, machine):
        rapl = RaplMeter(machine, noise_std=0.0, seed=8)
        assert rapl.sample().watts < 20.0
