"""Public-API surface tests.

Guards the top-level ``repro`` namespace: everything advertised in
``__all__`` must exist, be importable, and carry documentation — the
contract a downstream user relies on.
"""

import inspect

import pytest

import repro


class TestTopLevelNamespace:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_public_objects_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{name} lacks a docstring"

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_headline_classes_present(self):
        for name in ("EnergyManager", "LEOEstimator",
                     "HierarchicalBayesianModel", "EnergyMinimizer",
                     "Machine", "ConfigurationSpace",
                     "ApplicationProfile", "RuntimeController"):
            assert name in repro.__all__, name

    def test_no_private_leaks(self):
        assert not any(name.startswith("_") for name in repro.__all__
                       if name != "__version__")


class TestSubpackageNamespaces:
    @pytest.mark.parametrize("module_name", [
        "repro.core", "repro.estimators", "repro.platform",
        "repro.workloads", "repro.telemetry", "repro.optimize",
        "repro.runtime", "repro.reporting", "repro.analysis",
        "repro.experiments",
    ])
    def test_subpackage_all_resolves(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_estimator_registry_matches_exports(self):
        from repro.estimators import available_estimators
        names = available_estimators()
        assert set(names) == {"knn", "leo", "leo-transfer", "offline",
                              "online"}


class TestQuickstartContract:
    """The README quickstart's exact call signatures must keep working."""

    def test_signatures(self):
        from repro import EnergyManager, get_benchmark
        sig = inspect.signature(EnergyManager.optimize)
        assert list(sig.parameters)[:3] == ["self", "profile",
                                            "utilization"]
        assert "deadline" in sig.parameters
        assert "estimate" in sig.parameters
        assert callable(get_benchmark)

    def test_estimator_name_argument(self):
        from repro import EnergyManager
        sig = inspect.signature(EnergyManager.__init__)
        assert sig.parameters["estimator"].default == "leo"
