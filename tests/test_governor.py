"""Tests for repro.runtime.governor (the ondemand baseline)."""

import numpy as np
import pytest

from repro.optimize.lp import EnergyMinimizer
from repro.platform.machine import Machine
from repro.runtime.governor import OndemandGovernor
from repro.runtime.race_to_idle import RaceToIdleController
from repro.workloads.suite import get_benchmark


class TestLadder:
    def test_ladder_is_all_resources_by_speed(self, paper_space):
        governor = OndemandGovernor(Machine(), paper_space)
        ladder = governor._speed_ladder
        assert len(ladder) == 16
        assert all(c.threads == 32 and c.memory_controllers == 2
                   for c in ladder)
        speeds = [c.speed.index for c in ladder]
        assert speeds == sorted(speeds)

    def test_cores_only_space_has_single_level(self, cores_space):
        governor = OndemandGovernor(Machine(), cores_space)
        assert len(governor._speed_ladder) == 1

    def test_validation(self, paper_space):
        with pytest.raises(ValueError):
            OndemandGovernor(Machine(), paper_space, up_threshold=0.0)
        with pytest.raises(ValueError):
            OndemandGovernor(Machine(), paper_space, down_step=0)
        with pytest.raises(ValueError):
            OndemandGovernor(Machine(), paper_space, quantum_fraction=0.0)


class TestPolicy:
    def test_meets_feasible_demand(self, paper_space):
        machine = Machine(seed=61)
        swaptions = get_benchmark("swaptions")  # scales well at 32 threads
        governor = OndemandGovernor(machine, paper_space)
        full = governor._speed_ladder[-1]
        rate = machine.true_rate(swaptions, full)
        report = governor.run(swaptions, work=rate * 0.5 * 40.0,
                              deadline=40.0)
        assert report.met_target

    def test_downclocks_at_low_demand(self, paper_space):
        """At light demand the governor should leave the top frequency."""
        machine = Machine(seed=62)
        swaptions = get_benchmark("swaptions")
        governor = OndemandGovernor(machine, paper_space)
        full = governor._speed_ladder[-1]
        rate = machine.true_rate(swaptions, full)
        report = governor.run(swaptions, work=rate * 0.2 * 40.0,
                              deadline=40.0)
        assert report.met_target
        busy_powers = [p for p, r in zip(report.power_trace,
                                         report.rate_trace) if r > 0]
        full_power = machine.true_power(swaptions, full)
        assert min(busy_powers) < 0.9 * full_power

    def test_beats_race_to_idle_at_low_demand(self, paper_space):
        """Downclocking saves energy vs racing at turbo, for scalable
        compute work at modest utilization."""
        swaptions = get_benchmark("swaptions")
        machine_a = Machine(seed=63)
        governor = OndemandGovernor(machine_a, paper_space)
        full = governor._speed_ladder[-1]
        work = machine_a.true_rate(swaptions, full) * 0.3 * 40.0

        gov_report = governor.run(swaptions, work, 40.0)
        machine_b = Machine(seed=63)
        racer = RaceToIdleController(machine_b, paper_space)
        race_report = racer.run(swaptions, work, 40.0)
        assert gov_report.met_target and race_report.met_target
        assert gov_report.energy < race_report.energy

    def test_never_beats_true_optimal(self, paper_space):
        machine = Machine(seed=64)
        x264 = get_benchmark("x264")
        rates = np.array([machine.true_rate(x264, c) for c in paper_space])
        powers = np.array([machine.true_power(x264, c)
                           for c in paper_space])
        optimal = EnergyMinimizer(rates, powers, machine.idle_power())
        governor = OndemandGovernor(machine, paper_space)
        work = 0.4 * rates.max() * 40.0
        report = governor.run(x264, work, 40.0)
        assert report.energy >= 0.98 * optimal.min_energy(work, 40.0)

    def test_cannot_fix_contention(self, paper_space):
        """kmeans: all-resources is the wrong allocation; the governor
        cannot meet demands that need fewer threads."""
        machine = Machine(seed=65)
        kmeans = get_benchmark("kmeans")
        governor = OndemandGovernor(machine, paper_space)
        true_max = max(machine.true_rate(kmeans, c) for c in paper_space)
        report = governor.run(kmeans, work=0.9 * true_max * 40.0,
                              deadline=40.0)
        assert not report.met_target

    def test_validation(self, paper_space):
        governor = OndemandGovernor(Machine(), paper_space)
        kmeans = get_benchmark("kmeans")
        with pytest.raises(ValueError):
            governor.run(kmeans, work=-1.0, deadline=10.0)
        with pytest.raises(ValueError):
            governor.run(kmeans, work=1.0, deadline=0.0)
