"""Tests for repro.obs tracing: spans, nesting, persistence, null path."""

import pytest

from repro.obs import (
    NULL_OBSERVABILITY,
    NULL_SPAN,
    NULL_TRACER,
    Observability,
    Span,
    Tracer,
    get_observability,
    get_tracer,
    read_trace,
    use,
    write_trace,
)


class TestSpanLifecycle:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.end is not None
        assert span.duration >= 0.0

    def test_attributes_from_kwargs_and_setter(self):
        tracer = Tracer()
        with tracer.span("work", a=1) as span:
            span.set_attribute("b", "two")
        assert span.attributes == {"a": 1, "b": "two"}

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None


class TestNesting:
    def test_children_point_at_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id

    def test_spans_ordered_by_start(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]

    def test_finished_since_returns_the_tail(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        mark = tracer.num_finished
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tail = tracer.finished_since(mark)
        assert sorted(s.name for s in tail) == ["inner", "outer"]


class TestJsonlRoundTrip:
    def test_round_trip_preserves_spans(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", n=3):
            with tracer.span("inner", label="x"):
                pass
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.spans)
        loaded = read_trace(path)
        assert len(loaded) == 2
        by_name = {s.name: s for s in loaded}
        assert by_name["outer"].attributes == {"n": 3}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].duration == pytest.approx(
            next(s for s in tracer.spans if s.name == "inner").duration)

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_trace(path)


class TestNullPath:
    def test_ambient_default_is_disabled(self):
        ob = get_observability()
        assert ob is NULL_OBSERVABILITY
        assert not ob.enabled
        assert not ob.tracer.is_recording

    def test_null_tracer_returns_the_null_span_singleton(self):
        span = NULL_TRACER.span("anything", k=1)
        assert span is NULL_SPAN
        with span as entered:
            entered.set_attribute("ignored", True)
        assert span.attributes == {}

    def test_use_installs_and_restores(self):
        ob = Observability.recording()
        with use(ob):
            assert get_observability() is ob
            assert get_tracer() is ob.tracer
        assert get_observability() is NULL_OBSERVABILITY

    def test_use_none_keeps_current(self):
        ob = Observability.recording()
        with use(ob):
            with use(None):
                assert get_observability() is ob

    def test_nested_use_restores_outer(self):
        outer, inner = Observability.recording(), Observability.recording()
        with use(outer):
            with use(inner):
                assert get_observability() is inner
            assert get_observability() is outer


class TestZeroOverheadPath:
    def test_instrumented_code_makes_no_spans_by_default(self):
        import numpy as np
        from repro.core.em import EMEngine
        from repro.core.observation import ObservationSet

        rng = np.random.default_rng(0)
        values = rng.normal(size=(6, 4)) + 10.0
        mask = np.ones_like(values, dtype=bool)
        mask[-1, 2:] = False
        engine = EMEngine()
        result = engine.fit(ObservationSet(values=values, mask=mask))
        assert result.iterations >= 1
        # Nothing recorded anywhere: the ambient context is the null one.
        assert get_observability() is NULL_OBSERVABILITY
        assert get_observability().metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_start_timer_is_none_when_disabled(self):
        from repro.obs import start_timer
        assert start_timer() is None
