"""Tests for repro.shard.replication (leader-append, bounded staleness).

The invariants under test: publishes append to one leader only (a
single monotone version sequence), replicas pull immutable version
files and serve reads at worst ``staleness_s`` behind, and a
partitioned replica (the ``partitioned-replica`` fault) degrades to
stale-but-valid answers — or to leader read-through if it never synced
— rather than corrupt or empty ones.
"""

import numpy as np
import pytest

from repro.faults.context import use as use_injector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.controller import TradeoffEstimate
from repro.service.registry import ModelRegistry
from repro.shard import RegistryReplica, ReplicatedRegistry


def _estimate(n=8, fill=1.0, name="leo"):
    return TradeoffEstimate(rates=np.full(n, fill),
                            powers=np.full(n, fill * 10.0),
                            estimator_name=name,
                            sampling_time=3.0, sampling_energy=500.0)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def leader(tmp_path):
    return ModelRegistry(tmp_path / "leader")


def _partition_injector():
    return FaultInjector(FaultPlan(name="cut", specs=(
        FaultSpec("partitioned-replica", probability=1.0),)))


class TestRegistryReplica:
    def test_sync_pulls_missing_version_files(self, tmp_path, leader):
        leader.publish("kmeans", _estimate(fill=1.0))
        leader.publish("kmeans", _estimate(fill=2.0))
        replica = RegistryReplica(leader, tmp_path / "replica")
        assert replica.sync() == 2
        assert replica.sync() == 0  # idempotent: nothing new to pull
        assert replica.registry.versions("kmeans", 8, "leo") == [1, 2]
        assert replica.pulled_files == 2

    def test_replica_read_matches_leader_bit_for_bit(self, tmp_path,
                                                     leader):
        published = leader.publish("kmeans", _estimate(fill=3.5))
        replica = RegistryReplica(leader, tmp_path / "replica",
                                  staleness_s=0.0)
        record = replica.latest("kmeans", 8, "leo")
        assert record.version == published.version
        np.testing.assert_array_equal(record.rates, published.rates)
        np.testing.assert_array_equal(record.powers, published.powers)

    def test_fresh_replica_skips_resync(self, tmp_path, leader):
        clock = _Clock()
        leader.publish("kmeans", _estimate(fill=1.0))
        replica = RegistryReplica(leader, tmp_path / "replica",
                                  staleness_s=10.0, clock=clock)
        replica.sync()
        leader.publish("kmeans", _estimate(fill=2.0))
        clock.now = 5.0  # inside the staleness bound: no re-sync
        assert replica.latest("kmeans", 8, "leo").version == 1
        clock.now = 20.0  # past the bound: the read re-syncs first
        assert replica.latest("kmeans", 8, "leo").version == 2

    def test_warm_estimate_from_version_history(self, tmp_path, leader):
        leader.publish("kmeans", _estimate(fill=4.0))
        replica = RegistryReplica(leader, tmp_path / "replica",
                                  staleness_s=0.0)
        warm = replica.warm_estimate("kmeans", 8, "leo")
        assert warm is not None
        np.testing.assert_array_equal(warm.rates, np.full(8, 4.0))

    def test_partitioned_replica_serves_stale(self, tmp_path, leader):
        clock = _Clock()
        leader.publish("kmeans", _estimate(fill=1.0))
        replica = RegistryReplica(leader, tmp_path / "replica",
                                  staleness_s=1.0, clock=clock)
        replica.sync()
        leader.publish("kmeans", _estimate(fill=2.0))
        clock.now = 100.0  # stale, but the leader is unreachable now
        with use_injector(_partition_injector()):
            record = replica.latest("kmeans", 8, "leo")
        assert record.version == 1  # stale-but-valid, not empty
        # After the partition heals, the next stale read catches up.
        assert replica.latest("kmeans", 8, "leo").version == 2

    def test_never_synced_replica_reads_through_to_leader(self, tmp_path,
                                                          leader):
        leader.publish("kmeans", _estimate(fill=7.0))
        replica = RegistryReplica(leader, tmp_path / "replica")
        with use_injector(_partition_injector()):
            record = replica.latest("kmeans", 8, "leo")
        assert record is not None and record.version == 1

    def test_bad_staleness_rejected(self, tmp_path, leader):
        with pytest.raises(ValueError, match="staleness_s"):
            RegistryReplica(leader, tmp_path / "replica", staleness_s=-1.0)


class TestReplicatedRegistry:
    def test_publishes_append_to_the_leader_only(self, tmp_path, leader):
        replicas = [RegistryReplica(leader, tmp_path / f"r{i}")
                    for i in range(2)]
        registry = ReplicatedRegistry(leader, replicas)
        first = registry.publish("kmeans", _estimate(fill=1.0))
        second = registry.publish("kmeans", _estimate(fill=2.0))
        assert (first.version, second.version) == (1, 2)
        assert leader.versions("kmeans", 8, "leo") == [1, 2]
        # Replicas hold nothing until they sync; writes never fan out.
        for replica in replicas:
            assert replica.registry.versions("kmeans", 8, "leo") == []
        assert registry.sync_all() == 4  # 2 versions x 2 replicas

    def test_warm_reads_round_robin_over_replicas(self, tmp_path, leader):
        leader.publish("kmeans", _estimate(fill=2.0))
        replicas = [RegistryReplica(leader, tmp_path / f"r{i}",
                                    staleness_s=0.0)
                    for i in range(3)]
        registry = ReplicatedRegistry(leader, replicas)
        for _ in range(6):
            warm = registry.warm_estimate("kmeans", 8, "leo")
            np.testing.assert_array_equal(warm.rates, np.full(8, 2.0))
        # Two full rotations: every replica served (and synced) twice.
        assert all(r.pulled_files == 1 for r in replicas)

    def test_zero_replicas_degrades_to_leader_reads(self, leader):
        registry = ReplicatedRegistry(leader)
        leader.publish("kmeans", _estimate(fill=9.0))
        warm = registry.warm_estimate("kmeans", 8, "leo")
        np.testing.assert_array_equal(warm.rates, np.full(8, 9.0))

    def test_strong_reads_come_from_the_leader(self, tmp_path, leader):
        replica = RegistryReplica(leader, tmp_path / "r0",
                                  staleness_s=float("inf"))
        registry = ReplicatedRegistry(leader, [replica])
        registry.publish("kmeans", _estimate(fill=1.0))
        registry.publish("kmeans", _estimate(fill=2.0))
        assert registry.latest("kmeans", 8, "leo").version == 2
        assert [r.version for r in registry.history("kmeans", 8, "leo")] \
            == [1, 2]
        assert registry.versions("kmeans", 8, "leo") == [1, 2]
        assert len(registry.known_models()) == 1
