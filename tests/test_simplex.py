"""Tests for the from-scratch simplex solver."""

import numpy as np
import pytest

from repro.optimize.simplex import (
    InfeasibleError,
    UnboundedError,
    solve_lp,
)


class TestBasicSolves:
    def test_trivial_single_variable(self):
        # min 2x s.t. x = 3.
        solution = solve_lp([2.0], [[1.0]], [3.0])
        assert solution.x[0] == pytest.approx(3.0)
        assert solution.objective == pytest.approx(6.0)

    def test_prefers_cheaper_variable(self):
        # min x1 + 3 x2 s.t. x1 + x2 = 4.
        solution = solve_lp([1.0, 3.0], [[1.0, 1.0]], [4.0])
        np.testing.assert_allclose(solution.x, [4.0, 0.0], atol=1e-9)

    def test_two_constraints(self):
        # min x1 + 2 x2 s.t. x1 + x2 = 3, x1 - x2 = 1 -> x = (2, 1).
        solution = solve_lp([1.0, 2.0], [[1.0, 1.0], [1.0, -1.0]],
                            [3.0, 1.0])
        np.testing.assert_allclose(solution.x, [2.0, 1.0], atol=1e-9)

    def test_negative_rhs_normalized(self):
        # min x s.t. -x = -5  ->  x = 5.
        solution = solve_lp([1.0], [[-1.0]], [-5.0])
        assert solution.x[0] == pytest.approx(5.0)

    def test_degenerate_redundant_constraint(self):
        # Same row twice: still solvable.
        solution = solve_lp([1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]],
                            [2.0, 2.0])
        assert solution.objective == pytest.approx(2.0)


class TestFailureModes:
    def test_infeasible(self):
        # x = 1 and x = 2 simultaneously.
        with pytest.raises(InfeasibleError):
            solve_lp([1.0], [[1.0], [1.0]], [1.0, 2.0])

    def test_infeasible_negative_requirement(self):
        # x1 + x2 = -1 with x >= 0.
        with pytest.raises(InfeasibleError):
            solve_lp([1.0, 1.0], [[-1.0, -1.0]], [1.0])

    def test_unbounded(self):
        # min -x1 s.t. x1 - x2 = 0: both can grow forever.
        with pytest.raises(UnboundedError):
            solve_lp([-1.0, 0.0], [[1.0, -1.0]], [0.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_lp([1.0, 2.0], [[1.0]], [1.0])
        with pytest.raises(ValueError):
            solve_lp([1.0], [[1.0]], [1.0, 2.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            solve_lp([np.inf], [[1.0]], [1.0])


class TestAgainstScipy:
    """Cross-check random instances against scipy.optimize.linprog."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_equality_lps(self, seed):
        from scipy.optimize import linprog
        rng = np.random.default_rng(seed)
        n, m = 8, 3
        a = rng.uniform(-1, 1, (m, n))
        x_feas = rng.uniform(0, 1, n)
        b = a @ x_feas  # guaranteed feasible
        c = rng.uniform(0.1, 1, n)  # positive costs: bounded
        ours = solve_lp(c, a, b)
        ref = linprog(c, A_eq=a, b_eq=b, bounds=(0, None), method="highs")
        assert ref.success
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6, abs=1e-8)
        np.testing.assert_allclose(a @ ours.x, b, atol=1e-7)
        assert (ours.x >= -1e-9).all()

    def test_energy_shaped_instance(self):
        """The Eq. (1) shape: two rows over many configurations."""
        from scipy.optimize import linprog
        rng = np.random.default_rng(42)
        n = 100
        rates = rng.uniform(1, 50, n)
        powers = 80 + 3 * rates + rng.uniform(0, 40, n)
        deadline, work = 10.0, 150.0
        c = powers
        a = np.vstack([rates, np.ones(n)])
        b = np.array([work, deadline])
        ours = solve_lp(c, a, b)
        ref = linprog(c, A_eq=a, b_eq=b, bounds=(0, None), method="highs")
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6)
