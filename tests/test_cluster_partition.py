"""Tests for the partitioned node and its per-tenant machine views.

The invariants the cluster subsystem leans on: tenant wall powers sum
to the node wall power (fair floor shares), the partition boundary is
enforced at actuation time, contention derates follow the documented
formula, and node energy accounting survives membership churn.
"""

import numpy as np
import pytest

from repro.cluster.partition import (
    DEFAULT_CONTENTION_KAPPA,
    PartitionedMachine,
    TenantMachine,
    partition_space,
)
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.suite import get_benchmark


@pytest.fixture()
def node(cores_space) -> PartitionedMachine:
    return PartitionedMachine(
        cores_space, [("a", 6), ("b", 5), ("c", 5)], seed=11)


class TestTenantPower:
    def test_idle_shares_sum_to_node_idle(self, node):
        whole = Machine(PAPER_TOPOLOGY, seed=0)
        assert node.idle_power() == pytest.approx(whole.idle_power())

    def test_floor_share_updates_on_repartition(self, node):
        assert node.view("a").floor_share == pytest.approx(1.0 / 3.0)
        node.repartition([("a", 8), ("b", 8)])
        assert node.view("a").floor_share == pytest.approx(0.5)

    def test_tenant_power_below_whole_machine(self, node, kmeans):
        # The view charges 1/N of the floor instead of all of it.
        config = node.space_for("a").space[0]
        view_power = node.view("a").true_power(kmeans, config)
        whole = Machine(PAPER_TOPOLOGY, seed=0)
        assert view_power < whole.true_power(kmeans, config)


class TestContention:
    def test_corunner_pressure_derates_rate(self, cores_space):
        node = PartitionedMachine(cores_space, [("a", 8), ("b", 8)],
                                  seed=3)
        kmeans = get_benchmark("kmeans")
        swish = get_benchmark("swish")
        config = node.space_for("a").space[0]
        node.set_profile("a", kmeans)
        alone = node.view("a").true_rate(kmeans, config)
        node.set_profile("b", swish)
        contended = node.view("a").true_rate(kmeans, config)
        expected = alone / (1.0 + DEFAULT_CONTENTION_KAPPA
                            * swish.memory_intensity
                            * kmeans.memory_intensity)
        assert contended == pytest.approx(expected)
        assert contended < alone

    def test_own_profile_does_not_pressure_itself(self, cores_space):
        node = PartitionedMachine(cores_space, [("a", 8), ("b", 8)])
        kmeans = get_benchmark("kmeans")
        config = node.space_for("a").space[0]
        baseline = node.view("a").true_rate(kmeans, config)
        node.set_profile("a", kmeans)
        assert node.view("a").true_rate(kmeans, config) == baseline

    def test_unknown_tenant_profile_rejected(self, node, kmeans):
        with pytest.raises(KeyError, match="ghost"):
            node.set_profile("ghost", kmeans)

    def test_negative_kappa_rejected(self, cores_space):
        with pytest.raises(ValueError, match="contention_kappa"):
            PartitionedMachine(cores_space, [("a", 8)],
                               contention_kappa=-0.1)


class TestPartitionBoundary:
    def test_apply_rejects_oversized_config(self, node, cores_space,
                                            kmeans):
        view = node.view("b")  # 5 cores
        view.load(kmeans)
        too_big = next(c for c in cores_space if c.cores == 6)
        with pytest.raises(ValueError, match="'b'"):
            view.apply(too_big)

    def test_apply_accepts_fitting_config(self, node, cores_space,
                                          kmeans):
        view = node.view("b")
        view.load(kmeans)
        fits = next(c for c in cores_space
                    if c.cores == 5 and c.threads == 5)
        view.apply(fits)
        assert view.run_for(0.1).heartbeats > 0


class TestPartitionSpace:
    def test_keeps_only_fitting_configs(self, cores_space, node):
        tspace = node.space_for("b")  # 5 cores, 10 threads
        assert all(c.cores <= 5 and c.threads <= 10
                   for c in tspace.space)
        # base_indices point back at the same configurations.
        for local, base in enumerate(tspace.base_indices):
            assert tspace.space[local] == cores_space[int(base)]

    def test_empty_projection_names_partition(self, cores_space):
        huge_only = ConfigurationSpace([cores_space[len(cores_space) - 1]],
                                       cores_space.topology)
        node = PartitionedMachine(cores_space, [("tiny", 2), ("rest", 14)])
        with pytest.raises(ValueError, match="'tiny'"):
            partition_space(huge_only, node.partitions[0])


class TestChurnAccounting:
    def test_survivors_keep_their_clock_and_energy(self, node):
        view = node.view("a")
        view.idle_for(2.0)
        energy_before = view.total_energy
        node.repartition([("a", 8), ("b", 8)])
        assert node.view("a") is view
        assert view.clock == pytest.approx(2.0)
        assert view.total_energy == pytest.approx(energy_before)

    def test_departed_energy_folds_into_node_energy(self, node):
        node.view("c").idle_for(3.0)
        total_before = node.node_energy
        node.repartition([("a", 8), ("b", 8)])
        assert "c" not in node.names
        assert node.node_energy == pytest.approx(total_before)

    def test_arrivals_join_at_the_given_clock(self, node):
        node.view("a").idle_for(4.0)
        node.repartition([("a", 6), ("b", 5), ("d", 5)], clock=4.0)
        assert node.view("d").clock == pytest.approx(4.0)

    def test_sync_clocks_charges_idle_for_the_lag(self, node):
        node.view("a").idle_for(2.0)
        lagging = node.view("b")
        idle_energy = lagging.idle_power() * 2.0
        energy_before = lagging.total_energy
        node.sync_clocks()
        assert all(node.view(n).clock == pytest.approx(2.0)
                   for n in node.names)
        assert lagging.total_energy - energy_before == pytest.approx(
            idle_energy)

    def test_noise_streams_are_stable_per_tenant(self, cores_space,
                                                 kmeans):
        # Same seed and name => the same measurement stream, regardless
        # of what the co-tenants are called.
        runs = []
        for others in (["x"], ["y", "z"]):
            node = PartitionedMachine(
                cores_space, [("a", 8)] + [(o, 4) for o in others][:1]
                + ([("z", 4)] if len(others) > 1 else [("x2", 4)]),
                seed=21)
            view = node.view("a")
            view.load(kmeans)
            view.apply(node.space_for("a").space[0])
            runs.append(view.run_for(0.5).heartbeats)
        assert runs[0] == runs[1]


class TestTenantMachineDirect:
    def test_standalone_view_is_machine_compatible(self, cores_space,
                                                   kmeans):
        parts = PAPER_TOPOLOGY.split([("solo", 8), ("rest", 8)])
        view = TenantMachine(PAPER_TOPOLOGY, parts[0], floor_share=0.5,
                             seed=5)
        assert isinstance(view, Machine)
        view.load(kmeans)
        view.apply(next(c for c in cores_space
                        if c.cores == 8 and c.threads == 8))
        measurement = view.run_for(1.0)
        assert measurement.heartbeats > 0
        assert measurement.system_power > view.idle_power()


class TestExplicitIndices:
    """partition_space(..., indices=) with non-contiguous subsets.

    Heterogeneous nodes carve one tenant per core cluster, and a
    cluster's configurations interleave with the other clusters' in the
    node-wide ordering — the subset is non-contiguous by construction.
    """

    @pytest.fixture()
    def partition(self):
        return PAPER_TOPOLOGY.split([("b", 5), ("rest", 11)])[0]

    @pytest.fixture()
    def sparse(self, cores_space, partition):
        fitting = [i for i, c in enumerate(cores_space)
                   if c.cores <= partition.cores
                   and c.threads <= partition.threads]
        return fitting[::2]  # every other one: gaps guaranteed

    def test_non_contiguous_subset_round_trips(self, cores_space,
                                               partition, sparse):
        assert any(b - a > 1 for a, b in zip(sparse, sparse[1:]))
        tspace = partition_space(cores_space, partition, indices=sparse)
        assert list(tspace.base_indices) == sparse
        for local, base in enumerate(tspace.base_indices):
            assert tspace.space[local] == cores_space[int(base)]

    def test_out_of_range_index_rejected(self, cores_space, partition):
        with pytest.raises(ValueError, match="out of range"):
            partition_space(cores_space, partition,
                            indices=[0, len(cores_space)])

    def test_non_increasing_indices_rejected(self, cores_space,
                                             partition, sparse):
        shuffled = [sparse[1], sparse[0]] + sparse[2:]
        with pytest.raises(ValueError, match="strictly increasing"):
            partition_space(cores_space, partition, indices=shuffled)
        with pytest.raises(ValueError, match="strictly increasing"):
            partition_space(cores_space, partition,
                            indices=[sparse[0], sparse[0]])

    def test_oversized_config_in_subset_rejected(self, cores_space,
                                                 partition):
        too_big = next(i for i, c in enumerate(cores_space)
                       if c.cores > partition.cores)
        with pytest.raises(ValueError, match="exceeds the partition"):
            partition_space(cores_space, partition, indices=[too_big])

    def test_slice_table_follows_sparse_indices(self, cores_space,
                                                partition, sparse):
        tspace = partition_space(cores_space, partition, indices=sparse)
        table = np.arange(3 * len(cores_space), dtype=float).reshape(
            3, len(cores_space))
        sliced = tspace.slice_table(table)
        assert sliced.shape == (3, len(sparse))
        assert np.array_equal(sliced, table[:, sparse])
        flat = tspace.slice_table(table[0])
        assert np.array_equal(flat, table[0, sparse])

    def test_slice_table_rejects_already_sliced_table(self, cores_space,
                                                      partition, sparse):
        tspace = partition_space(cores_space, partition, indices=sparse)
        short = np.zeros(max(sparse))  # one column too few
        with pytest.raises(ValueError, match="node-wide"):
            tspace.slice_table(short)
        with pytest.raises(ValueError, match="at least one axis"):
            tspace.slice_table(np.float64(1.0))
