"""Tests for the unified exception hierarchy in repro.errors.

Covers the taxonomy relationships the degradation machinery relies on
(``except ReproError`` catches everything recoverable), the historical
base classes back-compat demands (``ValueError``, ``LinAlgError``), and
the deprecation shims: every error that moved into ``repro.errors``
must still resolve to the *same class object* from its historical
module, so old imports and old ``except`` clauses keep working.
"""

import numpy as np
import pytest

import repro.errors as errors
from repro.errors import (
    CheckpointError,
    ClusterError,
    ConvergenceError,
    CovarianceError,
    EstimationError,
    FaultPlanError,
    InfeasibleConstraintError,
    InsufficientSamplesError,
    OptimizationError,
    PersistenceError,
    ReproError,
    SensorReadError,
    ServiceError,
    TelemetryError,
    TenantCrashError,
)


class TestHierarchy:
    def test_every_family_roots_at_repro_error(self):
        for cls in (EstimationError, OptimizationError, TelemetryError,
                    PersistenceError, ClusterError, FaultPlanError,
                    ServiceError):
            assert issubclass(cls, ReproError)

    def test_all_exported_names_are_repro_errors(self):
        for name in errors.__all__:
            assert issubclass(getattr(errors, name), ReproError), name

    def test_leaves_subclass_their_family(self):
        assert issubclass(InsufficientSamplesError, EstimationError)
        assert issubclass(ConvergenceError, EstimationError)
        assert issubclass(CovarianceError, EstimationError)
        assert issubclass(InfeasibleConstraintError, OptimizationError)
        assert issubclass(SensorReadError, TelemetryError)
        assert issubclass(CheckpointError, PersistenceError)
        assert issubclass(TenantCrashError, ClusterError)

    def test_historical_base_classes_preserved(self):
        # Callers wrote ``except ValueError`` / ``except LinAlgError``
        # before the hierarchy existed; those clauses must keep firing.
        assert issubclass(InsufficientSamplesError, ValueError)
        assert issubclass(InfeasibleConstraintError, ValueError)
        assert issubclass(FaultPlanError, ValueError)
        assert issubclass(CovarianceError, np.linalg.LinAlgError)

    def test_repro_error_does_not_catch_programming_errors(self):
        with pytest.raises(TypeError):
            try:
                raise TypeError("a genuine bug")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch TypeError")


class TestAttributes:
    def test_infeasible_constraint_carries_capacity(self):
        exc = InfeasibleConstraintError(required=10.0, max_rate=4.0)
        assert exc.required == 10.0
        assert exc.max_rate == 4.0
        assert "10" in str(exc) and "4" in str(exc)

    def test_convergence_error_carries_iterations(self):
        exc = ConvergenceError("no", iterations=25, loglik=float("nan"))
        assert exc.iterations == 25
        assert np.isnan(exc.loglik)

    def test_sensor_read_error_carries_site(self):
        exc = SensorReadError("lost", site="machine.measure")
        assert exc.site == "machine.measure"

    def test_tenant_crash_error_carries_name(self):
        exc = TenantCrashError("kmeans")
        assert exc.name == "kmeans"
        assert "kmeans" in str(exc)

    def test_service_errors_keep_wire_codes(self):
        assert errors.ServiceOverloaded.code == "overloaded"
        assert errors.DeadlineExceeded.code == "deadline-exceeded"
        assert errors.RequestRejected.code == "bad-request"
        assert errors.EstimationRejected.code == "insufficient-samples"
        assert errors.ProtocolError.code == "protocol-error"
        assert errors.RemoteError.code == "internal"
        assert errors.FrameError.code == "frame-error"
        assert errors.ShardUnavailable.code == "shard-unavailable"
        exc = errors.ServiceOverloaded(details={"queue": 8})
        assert exc.details == {"queue": 8}

    def test_frame_error_is_a_protocol_error(self):
        # Transports shed corrupt binary frames with the same typed
        # machinery as unparseable JSON.
        assert issubclass(errors.FrameError, errors.ProtocolError)

    def test_shard_unavailable_round_trips_the_wire(self):
        from repro.service.protocol import Response
        exc = errors.ShardUnavailable(
            "shard-1 is down", details={"shard": "shard-1"})
        wire = Response.failure(7, exc).to_wire()
        back = Response.from_wire(wire)
        with pytest.raises(errors.ShardUnavailable) as err:
            back.result()
        assert err.value.details == {"shard": "shard-1"}


class TestDeprecationShims:
    """The moved errors stay importable — as the same objects — from
    the modules that historically owned them."""

    def test_estimators_base_alias(self):
        from repro.estimators import base
        assert base.InsufficientSamplesError is InsufficientSamplesError
        assert base.EstimationError is EstimationError
        assert "InsufficientSamplesError" in base.__all__

    def test_optimize_lp_alias(self):
        from repro.optimize import lp
        assert lp.InfeasibleConstraintError is InfeasibleConstraintError
        assert "InfeasibleConstraintError" in lp.__all__

    def test_service_protocol_aliases(self):
        from repro.service import protocol
        for name in ("ServiceError", "ServiceOverloaded",
                     "DeadlineExceeded", "RequestRejected",
                     "EstimationRejected", "ProtocolError", "RemoteError"):
            assert getattr(protocol, name) is getattr(errors, name), name

    def test_old_except_clauses_still_fire(self):
        from repro.estimators.base import (
            InsufficientSamplesError as OldInsufficient,
        )
        with pytest.raises(OldInsufficient):
            raise InsufficientSamplesError("caught via the old import")
        from repro.optimize.lp import (
            InfeasibleConstraintError as OldInfeasible,
        )
        with pytest.raises(OldInfeasible):
            raise InfeasibleConstraintError(2.0, 1.0)
