"""End-to-end integration tests across module boundaries.

Each test exercises a full pipeline the way a user (or the paper's
evaluation) would: profile offline -> sample online -> estimate ->
optimize -> execute -> account energy.
"""

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.estimators.registry import create_estimator
from repro.optimize.lp import EnergyMinimizer
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.race_to_idle import RaceToIdleController
from repro.runtime.sampling import RandomSampler
from repro.telemetry.power_meter import WattsUpMeter
from repro.workloads.suite import get_benchmark, paper_suite
from repro.workloads.traces import OfflineDataset


class TestFullPipelineCoresSpace:
    """The Section 2 pipeline on the 32-config space."""

    def test_estimate_optimize_execute(self, cores_space, cores_dataset):
        machine = Machine(seed=42)
        kmeans = get_benchmark("kmeans")
        view = cores_dataset.leave_one_out("kmeans")

        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=1), sample_count=8)
        estimate = controller.calibrate(kmeans)

        truth = np.array([machine.true_rate(kmeans, c) for c in cores_space])
        assert accuracy(estimate.rates, truth) > 0.85

        work = 0.5 * truth.max() * 60.0
        report = controller.run(kmeans, work, 60.0, estimate)
        assert report.met_target

        race = RaceToIdleController(machine, cores_space)
        race_report = race.run(kmeans, work, 60.0)
        assert report.energy < race_report.energy

    def test_energy_close_to_true_optimal(self, cores_space, cores_dataset):
        machine = Machine(seed=43)
        swish = get_benchmark("swish")
        view = cores_dataset.leave_one_out("swish")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=2), sample_count=8)
        estimate = controller.calibrate(swish)

        true_rates = np.array([machine.true_rate(swish, c)
                               for c in cores_space])
        true_powers = np.array([machine.true_power(swish, c)
                                for c in cores_space])
        optimal = EnergyMinimizer(true_rates, true_powers,
                                  machine.idle_power())
        work = 0.5 * true_rates.max() * 60.0
        report = controller.run(swish, work, 60.0, estimate)
        assert report.energy <= 1.15 * optimal.min_energy(work, 60.0)


class TestFullPipelinePaperSpace:
    """One leave-one-out pass on the full 1024-config space."""

    @pytest.fixture(scope="class")
    def paper_setup(self, paper_space):
        machine = Machine(seed=7)
        dataset = OfflineDataset.collect(machine, paper_suite(),
                                         paper_space, noisy=True)
        return machine, dataset

    def test_leo_beats_baselines_on_kmeans(self, paper_space, paper_setup):
        machine, dataset = paper_setup
        kmeans = get_benchmark("kmeans")
        view = dataset.leave_one_out("kmeans")
        rng = np.random.default_rng(0)
        indices = np.sort(rng.choice(1024, 20, replace=False))

        sampler = Machine(seed=11)
        sampler.load(kmeans)
        rate_obs = []
        for i in indices:
            sampler.apply(paper_space[int(i)])
            rate_obs.append(sampler.run_for(1.0).rate)
        rate_obs = np.array(rate_obs)

        problem = EstimationProblem(
            features=paper_space.feature_matrix(), prior=view.prior_rates,
            observed_indices=indices, observed_values=rate_obs)
        normalized, scale = normalize_problem(problem)
        truth = view.true_rates

        scores = {}
        for name in ("leo", "offline", "online"):
            estimator = create_estimator(name)
            estimate = estimator.estimate(normalized) * scale
            scores[name] = accuracy(estimate, truth)
        assert scores["leo"] > 0.9
        assert scores["leo"] > scores["online"]
        assert scores["leo"] > scores["offline"]

    def test_sampled_fraction_below_two_percent(self, paper_space):
        """The paper's claim: less than 2% of the configuration space."""
        assert 20 / len(paper_space) < 0.02


class TestMeterIntegration:
    def test_wall_meter_tracks_controller_run(self, cores_space,
                                              cores_dataset):
        machine = Machine(seed=44)
        x264 = get_benchmark("x264")
        view = cores_dataset.leave_one_out("x264")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=3), sample_count=6)
        estimate = controller.calibrate(x264)

        meter = WattsUpMeter(machine, noise_std=0.0, quantum=0.0)
        work = 0.4 * estimate.rates.max() * 30.0
        energy_before = machine.total_energy
        meter.sample()
        report = controller.run(x264, work, 30.0, estimate)
        meter.sample()
        measured = machine.total_energy - energy_before
        assert report.energy == pytest.approx(measured, rel=1e-9)
        # The meter's two samples bracket the run in time.
        assert meter.log[-1].time - meter.log[0].time == pytest.approx(30.0)


class TestDeterminism:
    def test_identical_seeds_identical_runs(self, cores_space):
        def run_once():
            machine = Machine(seed=77)
            dataset = OfflineDataset.collect(
                Machine(seed=78), paper_suite(), cores_space, noisy=True)
            view = dataset.leave_one_out("kmeans")
            controller = RuntimeController(
                machine=machine, space=cores_space,
                estimator=LEOEstimator(),
                prior_rates=view.prior_rates,
                prior_powers=view.prior_powers,
                sampler=RandomSampler(seed=5), sample_count=6)
            estimate = controller.calibrate(get_benchmark("kmeans"))
            report = controller.run(get_benchmark("kmeans"),
                                    1000.0, 20.0, estimate)
            return estimate.rates, report.energy

        rates_a, energy_a = run_once()
        rates_b, energy_b = run_once()
        np.testing.assert_allclose(rates_a, rates_b)
        assert energy_a == energy_b
