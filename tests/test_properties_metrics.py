"""Property tests for histogram percentiles.

The nearest-rank method has a one-line implementation and a history of
off-by-one bugs at its edges (q=0, n=1, duplicated values, and ranks
where ``q/100*n`` is inexact in binary).  Hypothesis drives the edges;
numpy is the oracle for the linear-interpolation mode.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram

_values = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60)

_q = st.floats(min_value=0.0, max_value=100.0,
               allow_nan=False, allow_infinity=False)


def _hist(values):
    hist = Histogram("h")
    hist.extend(values)
    return hist


class TestNearestRank:
    @settings(deadline=None, max_examples=100)
    @given(_values, _q)
    def test_returns_an_observed_value(self, values, q):
        assert _hist(values).percentile(q) in values

    @settings(deadline=None, max_examples=50)
    @given(st.floats(min_value=-1e9, max_value=1e9,
                     allow_nan=False, allow_infinity=False), _q)
    def test_single_observation_is_every_percentile(self, value, q):
        assert _hist([value]).percentile(q) == value

    @settings(deadline=None, max_examples=50)
    @given(_values)
    def test_extremes_are_min_and_max(self, values):
        hist = _hist(values)
        assert hist.percentile(0) == min(values)
        assert hist.percentile(100) == max(values)

    @settings(deadline=None, max_examples=50)
    @given(st.floats(min_value=-1e9, max_value=1e9,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=1, max_value=40), _q)
    def test_duplicates_collapse_to_the_value(self, value, n, q):
        assert _hist([value] * n).percentile(q) == value

    @settings(deadline=None, max_examples=100)
    @given(_values, _q)
    def test_rank_is_exact_multiply_first(self, values, q):
        # The regression this guards: q=28, n=25 — q/100*n computes to
        # 7.000000000000001, whose ceiling lands one rank too high.
        ordered = sorted(values)
        n = len(ordered)
        rank = max(1, min(math.ceil(q * n / 100.0), n))
        assert _hist(values).percentile(q) == ordered[rank - 1]

    def test_q28_n25_regression(self):
        # ceil(28/100*25) = ceil(7.000000000000001) = 8, one rank too
        # high; multiply-first computes the exact 7.0.
        hist = _hist(range(1, 26))
        assert hist.percentile(28) == 7
        assert math.ceil(28 / 100.0 * 25) == 8, \
            "divide-first is inexact here; if this stops holding the " \
            "regression case needs a new witness"

    def test_monotone_in_q(self):
        hist = _hist([5.0, 1.0, 3.0, 2.0, 4.0])
        results = [hist.percentile(q) for q in range(0, 101, 5)]
        assert results == sorted(results)


class TestLinearInterpolation:
    @settings(deadline=None, max_examples=100)
    @given(_values, _q)
    def test_matches_numpy(self, values, q):
        ours = _hist(values).percentile(q, mode="linear")
        theirs = float(np.percentile(values, q))
        assert ours == theirs or abs(ours - theirs) <= 1e-9 * max(
            1.0, abs(theirs))

    @settings(deadline=None, max_examples=50)
    @given(_values, _q)
    def test_bounded_by_observed_range(self, values, q):
        result = _hist(values).percentile(q, mode="linear")
        assert min(values) <= result <= max(values)

    def test_interpolates_between_order_statistics(self):
        assert _hist([0.0, 10.0]).percentile(50, mode="linear") == 5.0


class TestValidation:
    def test_out_of_range_q_rejected(self):
        hist = _hist([1.0])
        for q in (-0.1, 100.1):
            try:
                hist.percentile(q)
            except ValueError:
                continue
            raise AssertionError(f"q={q} accepted")

    def test_unknown_mode_rejected(self):
        try:
            _hist([1.0]).percentile(50, mode="cubic")
        except ValueError:
            return
        raise AssertionError("mode='cubic' accepted")

    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram("h").percentile(50))
        assert math.isnan(Histogram("h").percentile(50, mode="linear"))
