"""Tests for repro.experiments.scaling (prior-library sweep)."""

import pytest

from repro.experiments.harness import default_context
from repro.experiments.scaling import prior_scaling_experiment


@pytest.fixture(scope="module")
def cores_ctx():
    return default_context(space_kind="cores", seed=0)


class TestPriorScaling:
    def test_structure(self, cores_ctx):
        result = prior_scaling_experiment(
            cores_ctx, library_sizes=(1, 4, 24),
            targets=("kmeans", "swish"), subsets_per_size=1)
        assert result.library_sizes == (1, 4, 24)
        assert set(result.perf) == {"leo", "knn"}
        assert all(len(v) == 3 for v in result.perf.values())
        for values in result.perf.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_more_priors_help(self, cores_ctx):
        result = prior_scaling_experiment(
            cores_ctx, library_sizes=(1, 24),
            targets=("kmeans", "swish", "bfs"), subsets_per_size=2)
        assert result.perf["leo"][-1] > result.perf["leo"][0]

    def test_size_clamped_to_library(self, cores_ctx):
        # 40 > 24 available priors: must not crash, just uses all 24.
        result = prior_scaling_experiment(
            cores_ctx, library_sizes=(40,), targets=("x264",),
            subsets_per_size=1)
        assert len(result.perf["leo"]) == 1

    def test_validation(self, cores_ctx):
        with pytest.raises(ValueError):
            prior_scaling_experiment(cores_ctx, library_sizes=(0,))
        with pytest.raises(ValueError):
            prior_scaling_experiment(cores_ctx, subsets_per_size=0)
