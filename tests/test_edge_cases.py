"""Adversarial edge cases across module boundaries.

Configurations collapse to one, idle power inverts, priors are singular,
deadlines are tiny — states a long-lived deployment will eventually see.
"""

import numpy as np
import pytest

from repro.core.em import EMConfig, EMEngine
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.estimators.base import EstimationProblem
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.pareto import TradeoffFrontier


class TestSingleConfiguration:
    def test_em_with_one_config(self):
        values = np.array([[2.0], [2.2], [1.9]])
        mask = np.ones((3, 1), dtype=bool)
        obs = ObservationSet(values, mask)
        result = EMEngine(prior=NIWPrior.paper_default(),
                          config=EMConfig(max_iterations=5)).fit(obs)
        assert result.zhat.shape == (3, 1)
        assert np.isfinite(result.zhat).all()

    def test_leo_with_one_config(self):
        problem = EstimationProblem(
            features=np.array([[1.0]]), prior=np.array([[5.0], [6.0]]),
            observed_indices=np.array([0]),
            observed_values=np.array([5.5]))
        estimate = LEOEstimator().estimate(problem)
        assert estimate.shape == (1,)
        assert np.isfinite(estimate).all()

    def test_minimizer_with_one_config(self):
        minimizer = EnergyMinimizer([10.0], [200.0], idle_power=80.0)
        schedule = minimizer.solve(work=50.0, deadline=10.0)
        assert schedule.work([10.0]) == pytest.approx(50.0)


class TestInvertedEconomics:
    def test_idle_power_above_active_power(self):
        """A machine whose idle draw exceeds a config's draw: running
        flat-out is then optimal, and the hull handles it."""
        minimizer = EnergyMinimizer([10.0, 20.0], [50.0, 90.0],
                                    idle_power=100.0)
        energy_low = minimizer.min_energy(work=10.0, deadline=10.0)
        # Mixing toward the cheap active config beats idling.
        assert energy_low < 100.0 * 10.0

    def test_frontier_with_descending_power(self):
        """Power decreasing in rate: the fast config dominates."""
        frontier = TradeoffFrontier([1.0, 2.0, 3.0],
                                    [300.0, 200.0, 100.0],
                                    idle_power=80.0)
        assert frontier.power_at(3.0) == pytest.approx(100.0)
        # Interpolation at lower rates uses the idle anchor and the
        # dominant vertex, never the dominated expensive slow configs.
        assert frontier.power_at(1.5) < 300.0


class TestDegeneratePriors:
    def test_identical_prior_rows(self):
        prior = np.tile(np.linspace(1, 2, 6), (5, 1))
        problem = EstimationProblem(
            features=np.ones((6, 1)), prior=prior,
            observed_indices=np.array([0, 3]),
            observed_values=np.array([1.0, 1.6]))
        estimate = LEOEstimator().estimate(problem)
        assert np.isfinite(estimate).all()

    def test_offline_single_prior_app(self):
        prior = np.array([[1.0, 2.0, 3.0]])
        problem = EstimationProblem(
            features=np.ones((3, 1)), prior=prior,
            observed_indices=np.array([0]),
            observed_values=np.array([9.0]))
        np.testing.assert_allclose(OfflineEstimator().estimate(problem),
                                   prior[0])

    def test_leo_single_prior_app(self):
        prior = np.array([[1.0, 2.0, 3.0, 4.0]])
        problem = EstimationProblem(
            features=np.ones((4, 1)), prior=prior,
            observed_indices=np.array([1]),
            observed_values=np.array([2.5]))
        estimate = LEOEstimator().estimate(problem)
        assert np.isfinite(estimate).all()


class TestTinyDeadlines:
    def test_minimizer_microsecond_deadline(self):
        minimizer = EnergyMinimizer([1e6], [200.0], idle_power=80.0)
        schedule = minimizer.solve(work=1.0, deadline=1e-6)
        assert schedule.work([1e6]) == pytest.approx(1.0)

    def test_controller_short_window(self, cores_space, cores_dataset):
        from repro.platform.machine import Machine
        from repro.runtime.controller import (RuntimeController,
                                              TradeoffEstimate)
        from repro.workloads.suite import get_benchmark
        machine = Machine(seed=91)
        kmeans = get_benchmark("kmeans")
        view = cores_dataset.leave_one_out("kmeans")
        rates = np.array([machine.true_rate(kmeans, c)
                          for c in cores_space])
        powers = np.array([machine.true_power(kmeans, c)
                           for c in cores_space])
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        report = controller.run(
            kmeans, work=rates.max() * 0.1, deadline=0.5,
            estimate=TradeoffEstimate.from_truth(rates, powers))
        assert report.work_done > 0


class TestExtremeScales:
    def test_leo_with_enormous_values(self):
        rng = np.random.default_rng(0)
        prior = np.abs(rng.normal(1e12, 1e11, (5, 8))) + 1e10
        problem = EstimationProblem(
            features=np.ones((8, 1)), prior=prior,
            observed_indices=np.array([0, 4]),
            observed_values=prior.mean(axis=0)[[0, 4]])
        estimate = LEOEstimator().estimate(problem)
        assert np.isfinite(estimate).all()
        assert estimate.mean() > 1e10

    def test_leo_with_minuscule_values(self):
        rng = np.random.default_rng(1)
        prior = np.abs(rng.normal(1e-9, 1e-10, (5, 8))) + 1e-10
        problem = EstimationProblem(
            features=np.ones((8, 1)), prior=prior,
            observed_indices=np.array([2, 6]),
            observed_values=prior.mean(axis=0)[[2, 6]])
        estimate = LEOEstimator().estimate(problem)
        assert np.isfinite(estimate).all()
        assert estimate.mean() < 1e-7
