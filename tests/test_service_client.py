"""Tests for repro.service.client (retries, RemoteEstimator)."""

import json
import socket
import threading

import numpy as np
import pytest

from repro.estimators.base import EstimationProblem, InsufficientSamplesError
from repro.service import (
    EstimationService,
    RemoteEstimator,
    ServerThread,
    ServiceAddress,
    ServiceClient,
    ServiceOverloaded,
)
from repro.service.protocol import encode_frame


class _FlakyServer:
    """A raw socket server scripted per connection, for retry tests.

    Each element of ``script`` handles one connection: ``"drop"`` closes
    it immediately, ``"overloaded"`` answers every request with a shed,
    ``"overloaded-once"`` sheds the first request then answers normally,
    ``"ok"`` answers every request with a successful pong.
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.address = ServiceAddress(
            host="127.0.0.1", port=self._sock.getsockname()[1])
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for behaviour in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:  # listener closed during teardown
                return
            self.connections += 1
            if behaviour == "drop":
                conn.close()
                continue
            with conn:
                reader = conn.makefile("rb")
                shed_remaining = 1 if behaviour == "overloaded-once" else 0
                for line in reader:
                    frame = json.loads(line)
                    if behaviour == "overloaded" or shed_remaining:
                        shed_remaining = max(0, shed_remaining - 1)
                        reply = {"v": 1, "id": frame.get("id"), "ok": False,
                                 "error": {"type": "overloaded",
                                           "message": "full",
                                           "details": {}}}
                    else:
                        reply = {"v": 1, "id": frame.get("id"), "ok": True,
                                 "payload": {"pong": True, "echo": None}}
                    conn.sendall(encode_frame(reply))

    def close(self):
        self._sock.close()


class TestRetries:
    def test_reconnects_after_dropped_connection(self):
        server = _FlakyServer(["drop", "ok"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.01)
            assert client.ping()["pong"] is True
            assert server.connections == 2
            client.close()
        finally:
            server.close()

    def test_transport_retries_exhausted(self):
        server = _FlakyServer(["drop", "drop", "drop"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.01)
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            assert server.connections == 3  # initial + 2 retries
            client.close()
        finally:
            server.close()

    def test_overloaded_surfaces_by_default(self):
        server = _FlakyServer(["overloaded"])
        try:
            client = ServiceClient(server.address, retries=3, backoff=0.01)
            with pytest.raises(ServiceOverloaded):
                client.ping()
            assert server.connections == 1  # no retry without opt-in
            client.close()
        finally:
            server.close()

    def test_retry_overloaded_opt_in(self):
        # The shed arrives on a healthy connection, so the retry reuses
        # it (the client reconnects only on transport failure) — the
        # server must recover per-request, not per-connection.
        server = _FlakyServer(["overloaded-once"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.01,
                                   retry_overloaded=True)
            assert client.ping()["pong"] is True
            assert server.connections == 1
            client.close()
        finally:
            server.close()

    def test_invalid_configuration_rejected(self):
        addr = ServiceAddress(host="127.0.0.1", port=1)
        with pytest.raises(ValueError):
            ServiceClient(addr, retries=-1)
        with pytest.raises(ValueError):
            ServiceClient(addr, backoff=-0.1)

    def test_unreachable_address_raises_after_retries(self):
        # A closed port: connect() fails fast with ECONNREFUSED.
        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        client = ServiceClient(ServiceAddress(host="127.0.0.1", port=port),
                               retries=1, backoff=0.01, timeout=2.0)
        with pytest.raises(OSError):
            client.ping()


class TestRemoteEstimator:
    @pytest.fixture()
    def server(self):
        with ServerThread(EstimationService(), max_pending=8,
                          max_workers=2) as thread:
            yield thread

    def test_implements_estimator_protocol(self, server):
        from repro.estimators.base import Estimator
        with ServiceClient(server.bound_address) as client:
            remote = RemoteEstimator(client, estimator="leo")
            assert isinstance(remote, Estimator)
            assert remote.name == "leo"  # keys/reports match in-process

    def test_estimate_delegates(self, server):
        rng = np.random.default_rng(2)
        problem = EstimationProblem(
            features=rng.random((12, 3)),
            prior=rng.random((3, 12)) + 0.5,
            observed_indices=np.array([0, 4, 8]),
            observed_values=rng.random(3) + 0.5)
        with ServiceClient(server.bound_address, timeout=60.0) as client:
            remote = RemoteEstimator(client, estimator="leo")
            from repro.estimators import LEOEstimator
            assert np.array_equal(remote.estimate(problem),
                                  LEOEstimator().estimate(problem))

    def test_insufficient_samples_translated(self, server):
        # Online polynomial regression needs >= its coefficient count;
        # one observation is ill-posed, and the remote error must come
        # back as the same exception the in-process estimator raises.
        rng = np.random.default_rng(3)
        problem = EstimationProblem(
            features=rng.random((12, 3)), prior=None,
            observed_indices=np.array([2]),
            observed_values=np.array([1.0]))
        with ServiceClient(server.bound_address, timeout=60.0) as client:
            remote = RemoteEstimator(client, estimator="online")
            with pytest.raises(InsufficientSamplesError):
                remote.estimate(problem)

    def test_constructor_kwargs_forwarded(self, server):
        rng = np.random.default_rng(4)
        problem = EstimationProblem(
            features=rng.random((20, 3)),
            prior=rng.random((3, 20)) + 0.5,
            observed_indices=np.arange(0, 20, 2),
            observed_values=rng.random(10) + 0.5)
        with ServiceClient(server.bound_address, timeout=60.0) as client:
            remote = RemoteEstimator(client, estimator="knn", k=2)
            from repro.estimators import KNNEstimator
            assert np.array_equal(remote.estimate(problem),
                                  KNNEstimator(k=2).estimate(problem))
