"""Tests for repro.service.client (retries, deadlines, RemoteEstimator)."""

import json
import random
import socket
import threading
import time

import numpy as np
import pytest

from repro.estimators.base import EstimationProblem, InsufficientSamplesError
from repro.service import (
    DeadlineExceeded,
    EstimationService,
    RemoteEstimator,
    ServerThread,
    ServiceAddress,
    ServiceClient,
    ServiceOverloaded,
)
from repro.service.client import DEADLINE_GRACE_S
from repro.service.protocol import encode_frame


class _FlakyServer:
    """A raw socket server scripted per connection, for retry tests.

    Each element of ``script`` handles one connection: ``"drop"`` closes
    it immediately, ``"overloaded"`` answers every request with a shed,
    ``"overloaded-once"`` sheds the first request then answers normally,
    ``"ok"`` answers every request with a successful pong.
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.address = ServiceAddress(
            host="127.0.0.1", port=self._sock.getsockname()[1])
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for behaviour in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:  # listener closed during teardown
                return
            self.connections += 1
            if behaviour == "drop":
                conn.close()
                continue
            with conn:
                reader = conn.makefile("rb")
                shed_remaining = 1 if behaviour == "overloaded-once" else 0
                for line in reader:
                    frame = json.loads(line)
                    if behaviour == "overloaded" or shed_remaining:
                        shed_remaining = max(0, shed_remaining - 1)
                        reply = {"v": 1, "id": frame.get("id"), "ok": False,
                                 "error": {"type": "overloaded",
                                           "message": "full",
                                           "details": {}}}
                    else:
                        reply = {"v": 1, "id": frame.get("id"), "ok": True,
                                 "payload": {"pong": True, "echo": None}}
                    conn.sendall(encode_frame(reply))

    def close(self):
        self._sock.close()


class TestRetries:
    def test_reconnects_after_dropped_connection(self):
        server = _FlakyServer(["drop", "ok"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.01)
            assert client.ping()["pong"] is True
            assert server.connections == 2
            client.close()
        finally:
            server.close()

    def test_transport_retries_exhausted(self):
        server = _FlakyServer(["drop", "drop", "drop"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.01)
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            assert server.connections == 3  # initial + 2 retries
            client.close()
        finally:
            server.close()

    def test_overloaded_surfaces_by_default(self):
        server = _FlakyServer(["overloaded"])
        try:
            client = ServiceClient(server.address, retries=3, backoff=0.01)
            with pytest.raises(ServiceOverloaded):
                client.ping()
            assert server.connections == 1  # no retry without opt-in
            client.close()
        finally:
            server.close()

    def test_retry_overloaded_opt_in(self):
        # The shed arrives on a healthy connection, so the retry reuses
        # it (the client reconnects only on transport failure) — the
        # server must recover per-request, not per-connection.
        server = _FlakyServer(["overloaded-once"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.01,
                                   retry_overloaded=True)
            assert client.ping()["pong"] is True
            assert server.connections == 1
            client.close()
        finally:
            server.close()

    def test_invalid_configuration_rejected(self):
        addr = ServiceAddress(host="127.0.0.1", port=1)
        with pytest.raises(ValueError):
            ServiceClient(addr, retries=-1)
        with pytest.raises(ValueError):
            ServiceClient(addr, backoff=-0.1)

    def test_unreachable_address_raises_after_retries(self):
        # A closed port: connect() fails fast with ECONNREFUSED.
        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        client = ServiceClient(ServiceAddress(host="127.0.0.1", port=port),
                               retries=1, backoff=0.01, timeout=2.0)
        with pytest.raises(OSError):
            client.ping()


class _DeadlineRecordingServer:
    """Scripted like :class:`_FlakyServer`, but records the wire
    ``deadline_s`` of every request it actually reads — the oracle for
    the remaining-budget-on-retry contract."""

    def __init__(self, script):
        self.script = list(script)
        self.deadlines = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.address = ServiceAddress(
            host="127.0.0.1", port=self._sock.getsockname()[1])
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for behaviour in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            if behaviour == "drop":
                conn.close()
                continue
            with conn:
                for line in conn.makefile("rb"):
                    frame = json.loads(line)
                    self.deadlines.append(frame.get("deadline_s"))
                    conn.sendall(encode_frame(
                        {"v": 1, "id": frame.get("id"), "ok": True,
                         "payload": {"pong": True, "echo": None}}))

    def close(self):
        self._sock.close()


class TestDeadlineBudget:
    """The deadline bounds the call's *total* wall time (satellite of
    the sharding PR): exhausted budgets fail client-side, retries carry
    the remaining budget, and a hung server cannot pin an attempt past
    the budget even under a much larger socket timeout."""

    def test_exhausted_deadline_raises_before_any_attempt(self):
        server = _DeadlineRecordingServer(["ok"])
        try:
            client = ServiceClient(server.address, retries=2)
            with pytest.raises(DeadlineExceeded) as err:
                client.call("ping", {}, deadline_s=0.0)
            assert err.value.details["attempts"] == 0
            assert server.deadlines == []  # nothing reached the wire
            client.close()
        finally:
            server.close()

    def test_first_attempt_carries_the_deadline_verbatim(self):
        server = _DeadlineRecordingServer(["ok"])
        try:
            client = ServiceClient(server.address, retries=0)
            client.call("ping", {}, deadline_s=7.5)
            assert server.deadlines == [7.5]
            client.close()
        finally:
            server.close()

    def test_retry_carries_only_the_remaining_budget(self):
        server = _DeadlineRecordingServer(["drop", "ok"])
        try:
            client = ServiceClient(server.address, retries=2, backoff=0.05)
            client.call("ping", {}, deadline_s=30.0)
            # The dropped first attempt never reached the wire reader;
            # the retry must ask for strictly less than the original.
            assert len(server.deadlines) == 1
            assert 0.0 < server.deadlines[0] < 30.0
            client.close()
        finally:
            server.close()

    def test_hung_server_fails_at_the_budget_not_the_timeout(self):
        # A listener that accepts and then never answers: the classic
        # hang.  The per-attempt socket timeout must be capped at the
        # remaining budget (plus grace), not the 30s transport timeout.
        sock = socket.create_server(("127.0.0.1", 0))
        held = []
        thread = threading.Thread(
            target=lambda: held.append(sock.accept()), daemon=True)
        thread.start()
        try:
            address = ServiceAddress(host="127.0.0.1",
                                     port=sock.getsockname()[1])
            client = ServiceClient(address, timeout=30.0, retries=0)
            started = time.monotonic()
            with pytest.raises(OSError):  # socket.timeout is an OSError
                client.call("ping", {}, deadline_s=0.4)
            elapsed = time.monotonic() - started
            assert elapsed < 0.4 + DEADLINE_GRACE_S + 2.0, elapsed
            client.close()
        finally:
            sock.close()

    def test_overloaded_retries_stop_at_the_deadline(self):
        server = _FlakyServer(["overloaded"])
        try:
            client = ServiceClient(server.address, retries=10_000,
                                   backoff=0.01, retry_overloaded=True)
            started = time.monotonic()
            with pytest.raises((DeadlineExceeded, ServiceOverloaded)):
                client.call("ping", {}, deadline_s=0.3)
            assert time.monotonic() - started < 3.0
            client.close()
        finally:
            server.close()


class TestRemoteEstimator:
    @pytest.fixture()
    def server(self):
        with ServerThread(EstimationService(), max_pending=8,
                          max_workers=2) as thread:
            yield thread

    def test_implements_estimator_protocol(self, server):
        from repro.estimators.base import Estimator
        with ServiceClient(server.bound_address) as client:
            remote = RemoteEstimator(client, estimator="leo")
            assert isinstance(remote, Estimator)
            assert remote.name == "leo"  # keys/reports match in-process

    def test_estimate_delegates(self, server):
        rng = np.random.default_rng(2)
        problem = EstimationProblem(
            features=rng.random((12, 3)),
            prior=rng.random((3, 12)) + 0.5,
            observed_indices=np.array([0, 4, 8]),
            observed_values=rng.random(3) + 0.5)
        with ServiceClient(server.bound_address, timeout=60.0) as client:
            remote = RemoteEstimator(client, estimator="leo")
            from repro.estimators import LEOEstimator
            assert np.array_equal(remote.estimate(problem),
                                  LEOEstimator().estimate(problem))

    def test_insufficient_samples_translated(self, server):
        # Online polynomial regression needs >= its coefficient count;
        # one observation is ill-posed, and the remote error must come
        # back as the same exception the in-process estimator raises.
        rng = np.random.default_rng(3)
        problem = EstimationProblem(
            features=rng.random((12, 3)), prior=None,
            observed_indices=np.array([2]),
            observed_values=np.array([1.0]))
        with ServiceClient(server.bound_address, timeout=60.0) as client:
            remote = RemoteEstimator(client, estimator="online")
            with pytest.raises(InsufficientSamplesError):
                remote.estimate(problem)

    def test_constructor_kwargs_forwarded(self, server):
        rng = np.random.default_rng(4)
        problem = EstimationProblem(
            features=rng.random((20, 3)),
            prior=rng.random((3, 20)) + 0.5,
            observed_indices=np.arange(0, 20, 2),
            observed_values=rng.random(10) + 0.5)
        with ServiceClient(server.bound_address, timeout=60.0) as client:
            remote = RemoteEstimator(client, estimator="knn", k=2)
            from repro.estimators import KNNEstimator
            assert np.array_equal(remote.estimate(problem),
                                  KNNEstimator(k=2).estimate(problem))


class TestSeededBackoff:
    """The full-jitter backoff stream: seeded, clocked, budgeted."""

    def _delays(self, client, attempts, clk, deadline_s=None):
        delays = []
        for attempt in range(attempts):
            before = clk.now()
            if not client._backoff_sleep(attempt, started=0.0,
                                         deadline_s=deadline_s, clk=clk):
                break
            delays.append(clk.now() - before)
        return delays

    def test_same_seed_same_delays(self):
        from repro.clock import VirtualClock
        addr = ServiceAddress(host="127.0.0.1", port=1)
        first = self._delays(ServiceClient(addr, jitter_seed=7),
                             5, VirtualClock())
        second = self._delays(ServiceClient(addr, jitter_seed=7),
                              5, VirtualClock())
        assert first == second
        assert any(d > 0 for d in first)

    def test_different_seeds_decorrelate(self):
        from repro.clock import VirtualClock
        addr = ServiceAddress(host="127.0.0.1", port=1)
        assert (self._delays(ServiceClient(addr, jitter_seed=7),
                             5, VirtualClock())
                != self._delays(ServiceClient(addr, jitter_seed=8),
                                5, VirtualClock()))

    def test_delays_stay_inside_the_jitter_envelope(self):
        from repro.clock import VirtualClock
        addr = ServiceAddress(host="127.0.0.1", port=1)
        client = ServiceClient(addr, jitter_seed=0, backoff=0.05,
                               backoff_cap=0.4)
        delays = self._delays(client, 8, VirtualClock())
        for attempt, delay in enumerate(delays):
            assert 0.0 <= delay <= min(0.4, 0.05 * 2 ** attempt)

    def test_budget_exhaustion_refuses_the_sleep(self):
        from repro.clock import VirtualClock
        addr = ServiceAddress(host="127.0.0.1", port=1)
        client = ServiceClient(addr, jitter_seed=0, backoff=10.0,
                               backoff_cap=10.0)
        clk = VirtualClock()
        clk.advance(5.0)  # 5s into a 5s budget: nothing left
        assert client._backoff_sleep(3, started=0.0, deadline_s=5.0,
                                     clk=clk) is False
        assert clk.now() == 5.0  # no sleep happened

    def test_explicit_clock_beats_ambient(self):
        from repro.clock import VirtualClock, use
        addr = ServiceAddress(host="127.0.0.1", port=1)
        explicit = VirtualClock()
        client = ServiceClient(addr, jitter_seed=1, clock=explicit)
        with use(VirtualClock()) as ambient:
            client._backoff_sleep(4, started=0.0, deadline_s=None)
            assert explicit.sleep_count == 1
            assert ambient.sleep_count == 0
        assert client.clock is explicit

    def test_retries_consume_no_wall_time_on_a_virtual_clock(self):
        from repro.clock import VirtualClock, use
        server = _FlakyServer(["drop", "drop", "ok"])
        try:
            clk = VirtualClock()
            with use(clk):
                client = ServiceClient(server.address, retries=2,
                                       backoff=5.0, backoff_cap=60.0,
                                       jitter_seed=3)
                started = time.monotonic()
                assert client.ping()["pong"] is True
                assert time.monotonic() - started < 3.0
                assert clk.sleep_count == 2  # both backoffs virtual
                assert clk.now() > 0.0
                client.close()
        finally:
            server.close()

    def test_sharded_client_derives_per_shard_seeds(self):
        from repro.faults.injector import stable_seed
        from repro.shard.client import ShardedServiceClient
        addresses = {
            "shard-0": ServiceAddress(host="127.0.0.1", port=1),
            "shard-1": ServiceAddress(host="127.0.0.1", port=2),
        }
        sharded = ShardedServiceClient(addresses, jitter_seed=42)
        a = sharded.client_for("shard-0")
        b = sharded.client_for("shard-1")
        # Streams must be decorrelated across shards but reproducible
        # for (seed, shard): a retry storm never synchronizes.
        expect = random.Random(
            stable_seed("shard-jitter", 42, "shard-0")).uniform(0.0, 1.0)
        assert a._jitter.uniform(0.0, 1.0) == expect
        assert (random.Random(stable_seed("shard-jitter", 42, "shard-0"))
                .random()
                != random.Random(stable_seed("shard-jitter", 42, "shard-1"))
                .random())
        assert b._jitter is not a._jitter
        sharded.close()
