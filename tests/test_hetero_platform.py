"""Tests for the asymmetric-platform layer (repro.platform.hetero).

The load-bearing invariant is exact homogeneous degeneracy: a
single-cluster ``HeteroTopology`` built with ``from_topology`` must
reproduce the plain homogeneous stack bit for bit — space, model
outputs, noise draws, idle power — not merely within a tolerance.
"""

import numpy as np
import pytest

from repro.platform.config_space import ConfigurationSpace
from repro.platform.hetero import (
    BIG_LITTLE,
    CoreCluster,
    HeteroConfiguration,
    HeteroMachine,
    HeteroPerformanceModel,
    HeteroPowerModel,
    HeteroTopology,
    OffloadDevice,
    cluster_indices,
    hetero_space,
)
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def big_little_space() -> ConfigurationSpace:
    return hetero_space(BIG_LITTLE)


class TestCoreCluster:
    def test_speed_ladder_spans_range(self):
        cluster = CoreCluster("big", cores=4, min_ghz=1.2, max_ghz=2.9,
                              dvfs_steps=7, turbo=True)
        ladder = cluster.speed_ladder()
        assert len(ladder) == 8  # 7 steps + turbo
        assert ladder[0].base_ghz == pytest.approx(1.2)
        assert ladder[-1].turbo
        assert [s.index for s in ladder] == list(range(8))

    def test_no_turbo_ladder(self):
        cluster = CoreCluster("little", cores=2, min_ghz=0.6,
                              max_ghz=1.6, dvfs_steps=4)
        ladder = cluster.speed_ladder()
        assert len(ladder) == 4
        assert not any(s.turbo for s in ladder)

    @pytest.mark.parametrize("kwargs", [
        dict(cores=0),
        dict(min_ghz=-1.0),
        dict(min_ghz=3.0, max_ghz=2.0),
        dict(dvfs_steps=0),
        dict(perf_scale=0.0),
        dict(power_scale=-0.5),
        dict(tdp_watts=0.0),
    ])
    def test_validation(self, kwargs):
        base = dict(cores=4)
        base.update(kwargs)
        with pytest.raises(ValueError):
            CoreCluster("bad", **base)

    def test_offload_device_validation(self):
        with pytest.raises(ValueError):
            OffloadDevice(speedup=0.0)
        with pytest.raises(ValueError):
            OffloadDevice(transfer_seconds=-1.0)
        with pytest.raises(ValueError):
            OffloadDevice(idle_watts=100.0, active_watts=50.0)


class TestHeteroTopology:
    def test_totals_sum_over_clusters(self):
        assert BIG_LITTLE.total_cores == 8
        assert BIG_LITTLE.total_tdp_watts == pytest.approx(78.0)

    def test_cluster_lookup(self):
        assert BIG_LITTLE.cluster_named("little").perf_scale < 1.0
        with pytest.raises(KeyError):
            BIG_LITTLE.cluster_named("huge")

    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ValueError):
            HeteroTopology(clusters=(CoreCluster("a", cores=2),
                                     CoreCluster("a", cores=2)))

    def test_split_by_cluster_is_contiguous(self):
        parts = BIG_LITTLE.split_by_cluster()
        assert [p.name for p in parts] == ["big", "little"]
        assert parts[0].first_core == 0
        assert parts[1].first_core == parts[0].cores

    def test_signature_is_nine_dimensional(self):
        assert BIG_LITTLE.signature().shape == (9,)

    def test_from_topology_is_homogeneous(self):
        topo = HeteroTopology.from_topology(PAPER_TOPOLOGY)
        assert topo.is_homogeneous
        assert topo.base_topology is PAPER_TOPOLOGY
        assert not BIG_LITTLE.is_homogeneous
        with pytest.raises(ValueError):
            BIG_LITTLE.base_topology


class TestHeteroSpace:
    def test_size_exceeds_paper_space(self, big_little_space):
        # (5*4 - skip both-zero... ) x ladders x mem x offload = 2240
        assert len(big_little_space) == 2240
        assert len(big_little_space) > 1024

    def test_lookup_round_trip(self, big_little_space):
        for i in range(0, len(big_little_space), 97):
            config = big_little_space[i]
            assert big_little_space.index_of(config) == i
            assert config in big_little_space

    def test_all_configs_are_hetero_and_unique(self, big_little_space):
        keys = {c.lookup_key() for c in big_little_space}
        assert len(keys) == len(big_little_space)
        assert all(isinstance(c, HeteroConfiguration)
                   for c in big_little_space)

    def test_speed_decimation_shrinks_space(self):
        small = hetero_space(BIG_LITTLE,
                             speed_indices=([0, 7], [0]))
        assert 0 < len(small) < 2240
        big_speeds = {c.cluster_speeds[0].index for c in small
                      if c.cluster_cores[0] > 0}
        assert big_speeds == {0, 7}

    def test_cluster_indices_select_exclusive_configs(
            self, big_little_space):
        idx = cluster_indices(big_little_space, BIG_LITTLE, "little")
        assert len(idx) > 0
        for i in idx:
            config = big_little_space[int(i)]
            assert config.cluster_cores[0] == 0
            assert config.cluster_cores[1] > 0
            assert not config.offload
        # Non-contiguous: there are gaps between selected indices.
        assert np.any(np.diff(np.asarray(idx)) > 1)

    def test_empty_clusters_pin_ladder_floor(self, big_little_space):
        for config in big_little_space:
            for k, cores in enumerate(config.cluster_cores):
                if cores == 0:
                    assert config.cluster_speeds[k].index == 0

    def test_validation_rejects_mismatched_cores(self):
        big = BIG_LITTLE.clusters[0]
        little = BIG_LITTLE.clusters[1]
        with pytest.raises(ValueError):
            HeteroConfiguration(
                cores=5, threads=5, memory_controllers=1,
                speed=big.speed_ladder()[0],
                cluster_cores=(2, 2),
                cluster_speeds=(big.speed_ladder()[0],
                                little.speed_ladder()[0]))


class TestHeteroModels:
    def test_rejects_plain_config_on_hetero_platform(self):
        model = HeteroPerformanceModel(BIG_LITTLE)
        plain = ConfigurationSpace.paper_space(PAPER_TOPOLOGY)[100]
        with pytest.raises(TypeError):
            model.heartbeat_rate(get_benchmark("kmeans"), plain)

    def test_little_cores_are_slower_and_cheaper(self, big_little_space):
        perf = HeteroPerformanceModel(BIG_LITTLE)
        power = HeteroPowerModel(BIG_LITTLE)
        profile = get_benchmark("kmeans")
        idx = cluster_indices(big_little_space, BIG_LITTLE, "little")
        jdx = cluster_indices(big_little_space, BIG_LITTLE, "big")
        little_best = max(
            perf.heartbeat_rate(profile, big_little_space[int(i)])
            for i in idx)
        big_best = max(
            perf.heartbeat_rate(profile, big_little_space[int(j)])
            for j in jdx)
        assert little_best < big_best
        little_power = min(
            power.system_power(profile, big_little_space[int(i)])
            for i in idx)
        big_power = min(
            power.system_power(profile, big_little_space[int(j)])
            for j in jdx)
        assert little_power < big_power

    def test_offload_caps_rate_by_transfer_overhead(
            self, big_little_space):
        perf = HeteroPerformanceModel(BIG_LITTLE)
        profile = get_benchmark("kmeans")
        cap = 1.0 / BIG_LITTLE.offload.transfer_seconds
        for config in big_little_space:
            if config.offload:
                rate = perf.heartbeat_rate(profile, config)
                assert rate <= cap + 1e-9

    def test_offload_adds_device_power(self, big_little_space):
        power = HeteroPowerModel(BIG_LITTLE)
        profile = get_benchmark("kmeans")
        by_key = {}
        for config in big_little_space:
            key = (config.cluster_cores,
                   tuple(s.index for s in config.cluster_speeds),
                   config.memory_controllers)
            by_key.setdefault(key, {})[config.offload] = config
        pair = next(v for v in by_key.values() if len(v) == 2)
        delta = (power.system_power(profile, pair[True])
                 - power.system_power(profile, pair[False]))
        assert delta == pytest.approx(
            BIG_LITTLE.offload.active_watts
            - BIG_LITTLE.offload.idle_watts)


class TestHomogeneousDegeneracy:
    """The bit-identity guarantee enforced by CI (hetero-smoke)."""

    def test_space_is_exactly_paper_space(self):
        topo = HeteroTopology.from_topology(PAPER_TOPOLOGY)
        assert list(hetero_space(topo)) == list(
            ConfigurationSpace.paper_space(PAPER_TOPOLOGY))

    def test_sweeps_bit_identical(self):
        topo = HeteroTopology.from_topology(PAPER_TOPOLOGY)
        space = hetero_space(topo)
        profile = get_benchmark("swish")
        base = Machine(PAPER_TOPOLOGY, seed=42)
        het = HeteroMachine(topo, seed=42)
        assert het.idle_power() == base.idle_power()
        for noisy in (False, True):
            r0, p0 = base.sweep(profile, space, noisy=noisy)
            r1, p1 = het.sweep(profile, space, noisy=noisy)
            assert np.array_equal(r0, r1)
            assert np.array_equal(p0, p1)

    def test_hetero_machine_exposes_hetero_topology(self):
        assert HeteroMachine(BIG_LITTLE, seed=0).hetero is BIG_LITTLE
        topo = HeteroTopology.from_topology(PAPER_TOPOLOGY)
        machine = HeteroMachine(topo, seed=0)
        assert machine.hetero.is_homogeneous
