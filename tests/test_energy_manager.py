"""Tests for repro.runtime.energy_manager (the public facade)."""

import numpy as np
import pytest

from repro.platform.config_space import ConfigurationSpace
from repro.runtime.energy_manager import EnergyManager
from repro.workloads.suite import get_benchmark, paper_suite


@pytest.fixture(scope="module")
def manager(cores_space_module):
    return EnergyManager(estimator="leo", space=cores_space_module,
                         seed=0, sample_count=6)


@pytest.fixture(scope="module")
def cores_space_module():
    return ConfigurationSpace.cores_only()


class TestSetup:
    def test_defaults_to_paper_suite(self, cores_space_module):
        manager = EnergyManager(space=cores_space_module)
        assert len(manager.profiles) == 25

    def test_dataset_collected_lazily_once(self, manager):
        first = manager.dataset
        second = manager.dataset
        assert first is second
        assert len(first) == 25


class TestEstimateTradeoffs:
    def test_leave_one_out_for_suite_member(self, manager):
        kmeans = get_benchmark("kmeans")
        estimate = manager.estimate_tradeoffs(kmeans)
        assert estimate.rates.shape == (32,)
        assert estimate.estimator_name == "leo"

    def test_unknown_app_uses_full_priors(self, manager):
        foreign = get_benchmark("kmeans").scaled(0.8, name="kmeans-variant")
        estimate = manager.estimate_tradeoffs(foreign)
        assert (estimate.rates > 0).all()


class TestOptimize:
    def test_meets_utilization_demand(self, manager):
        swish = get_benchmark("swish")
        report = manager.optimize(swish, utilization=0.4, deadline=30.0)
        assert report.met_target
        assert report.energy > 0

    def test_reuses_precomputed_estimate(self, manager):
        swish = get_benchmark("swish")
        estimate = manager.estimate_tradeoffs(swish)
        report = manager.optimize(swish, utilization=0.3, deadline=30.0,
                                  estimate=estimate)
        assert report.met_target

    def test_rejects_bad_utilization(self, manager):
        with pytest.raises(ValueError):
            manager.optimize(get_benchmark("swish"), utilization=0.0)
        with pytest.raises(ValueError):
            manager.optimize(get_benchmark("swish"), utilization=1.5)

    def test_beats_race_to_idle_on_kmeans(self, manager):
        """The headline claim, end to end, on the motivating app."""
        kmeans = get_benchmark("kmeans")
        estimate = manager.estimate_tradeoffs(kmeans)
        leo = manager.optimize(kmeans, utilization=0.4, deadline=30.0,
                               estimate=estimate)
        race = manager.race_to_idle(kmeans, utilization=0.4, deadline=30.0)
        assert leo.energy < race.energy

    def test_true_tradeoffs_match_machine(self, manager):
        kmeans = get_benchmark("kmeans")
        truth = manager.true_tradeoffs(kmeans)
        expected = [manager.machine.true_rate(kmeans, c)
                    for c in manager.space]
        np.testing.assert_allclose(truth.rates, expected)


class TestRaceToIdle:
    def test_validation(self, manager):
        with pytest.raises(ValueError):
            manager.race_to_idle(get_benchmark("swish"), utilization=0.0)

    def test_runs(self, manager):
        report = manager.race_to_idle(get_benchmark("x264"),
                                      utilization=0.3, deadline=30.0)
        assert report.energy > 0
