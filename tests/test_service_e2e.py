"""End-to-end acceptance: a RemoteEstimator-backed RuntimeController.

The ISSUE 3 acceptance criterion: pointing the controller at a service
instead of an in-process estimator must not change a single bit of the
result — same seed, same samples, same curves, same schedule, same
energy.  This holds because the wire protocol round-trips IEEE doubles
exactly and the estimators are deterministic functions of the problem.
"""

import numpy as np
import pytest

from repro.estimators.leo import LEOEstimator
from repro.platform.machine import Machine
from repro.runtime.controller import RuntimeController
from repro.runtime.sampling import RandomSampler
from repro.service import (
    EstimationService,
    ModelRegistry,
    RemoteEstimator,
    ServerThread,
    ServiceClient,
)
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def service_thread():
    with ServerThread(EstimationService(), max_pending=8,
                      max_workers=2) as thread:
        yield thread


def _controller(cores_space, view, estimator, machine_seed=77):
    return RuntimeController(
        machine=Machine(seed=machine_seed), space=cores_space,
        estimator=estimator,
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=5), sample_count=6)


class TestControllerParity:
    def test_calibration_bit_equal(self, service_thread, cores_space,
                                   cores_dataset):
        view = cores_dataset.leave_one_out("kmeans")
        kmeans = get_benchmark("kmeans")

        local = _controller(cores_space, view, LEOEstimator())
        local_estimate = local.calibrate(kmeans)

        with ServiceClient(service_thread.bound_address,
                           timeout=120.0) as client:
            remote = _controller(
                cores_space, view,
                RemoteEstimator(client, estimator="leo"))
            remote_estimate = remote.calibrate(kmeans)

        # Bit equality, not allclose: the service changes nothing.
        assert np.array_equal(remote_estimate.rates, local_estimate.rates)
        assert np.array_equal(remote_estimate.powers,
                              local_estimate.powers)
        assert remote_estimate.estimator_name == "leo"

    def test_full_run_bit_equal(self, service_thread, cores_space,
                                cores_dataset):
        view = cores_dataset.leave_one_out("swish")
        swish = get_benchmark("swish")

        local = _controller(cores_space, view, LEOEstimator())
        local_estimate = local.calibrate(swish)
        work = 0.6 * float(local_estimate.rates.max()) * 20.0
        local_report = local.run(swish, work=work, deadline=20.0,
                                 estimate=local_estimate)

        with ServiceClient(service_thread.bound_address,
                           timeout=120.0) as client:
            remote = _controller(
                cores_space, view,
                RemoteEstimator(client, estimator="leo"))
            remote_estimate = remote.calibrate(swish)
            remote_report = remote.run(swish, work=work, deadline=20.0,
                                       estimate=remote_estimate)

        assert remote_report.energy == local_report.energy
        assert remote_report.work_done == local_report.work_done
        assert remote_report.met_target == local_report.met_target
        assert remote_report.power_trace == local_report.power_trace
        assert remote_report.rate_trace == local_report.rate_trace


class TestWarmStartAcrossTenants:
    def test_second_tenant_skips_sampling(self, tmp_path):
        """The examples/service_demo.py scenario as a test: tenant A
        calibrates and publishes; tenant B gets the same curves with
        zero samples."""
        service = EstimationService(
            registry=ModelRegistry(tmp_path / "registry"))
        with ServerThread(service, max_pending=8,
                          max_workers=2) as thread:
            with ServiceClient(thread.bound_address,
                               timeout=300.0) as tenant_a:
                cold = tenant_a.calibrate_report(
                    "kmeans", space="cores", samples=6, estimator="leo",
                    deadline_s=240.0)
            with ServiceClient(thread.bound_address,
                               timeout=300.0) as tenant_b:
                warm = tenant_b.calibrate_report(
                    "kmeans", space="cores", samples=6, estimator="leo",
                    deadline_s=240.0)
        assert cold["source"] == "calibration"
        assert cold["samples_used"] == 6
        assert cold["version"] == 1
        assert warm["source"] == "registry"
        assert warm["samples_used"] == 0
        # Identical curves, bit for bit — the registry serves exactly
        # what was published.
        assert warm["rates"] == cold["rates"]
        assert warm["powers"] == cold["powers"]
