"""Tests for repro.estimators.base."""

import numpy as np
import pytest

from repro.estimators.base import EstimationProblem, normalize_problem


def _problem(n=8, m_prior=3, obs=(1, 4), seed=0):
    rng = np.random.default_rng(seed)
    features = np.column_stack([np.arange(1, n + 1)] * 4).astype(float)
    prior = rng.uniform(1, 10, (m_prior, n))
    obs = np.array(obs)
    values = rng.uniform(1, 10, obs.size)
    return EstimationProblem(features=features, prior=prior,
                             observed_indices=obs, observed_values=values)


class TestValidation:
    def test_valid_problem(self):
        problem = _problem()
        assert problem.num_configs == 8
        assert problem.num_observations == 2
        assert problem.num_prior_applications == 3

    def test_no_prior_allowed(self):
        problem = EstimationProblem(
            features=np.ones((4, 2)), prior=None,
            observed_indices=np.array([0]), observed_values=np.array([1.0]))
        assert problem.num_prior_applications == 0

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            EstimationProblem(features=np.ones((4, 2)), prior=None,
                              observed_indices=np.array([4]),
                              observed_values=np.array([1.0]))

    def test_rejects_duplicate_indices(self):
        with pytest.raises(ValueError):
            EstimationProblem(features=np.ones((4, 2)), prior=None,
                              observed_indices=np.array([1, 1]),
                              observed_values=np.array([1.0, 2.0]))

    def test_rejects_misaligned_observations(self):
        with pytest.raises(ValueError):
            EstimationProblem(features=np.ones((4, 2)), prior=None,
                              observed_indices=np.array([1, 2]),
                              observed_values=np.array([1.0]))

    def test_rejects_prior_with_wrong_width(self):
        with pytest.raises(ValueError):
            EstimationProblem(features=np.ones((4, 2)),
                              prior=np.ones((2, 5)),
                              observed_indices=np.array([1]),
                              observed_values=np.array([1.0]))

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            EstimationProblem(features=np.ones(4), prior=None,
                              observed_indices=np.array([1]),
                              observed_values=np.array([1.0]))


class TestNormalizeProblem:
    def test_scale_is_observed_mean(self):
        problem = _problem(seed=1)
        normalized, scale = normalize_problem(problem)
        assert scale == pytest.approx(problem.observed_values.mean())
        assert normalized.observed_values.mean() == pytest.approx(1.0)

    def test_prior_rows_anchored_at_observed_subset(self):
        problem = _problem(seed=2)
        normalized, _ = normalize_problem(problem)
        anchors = normalized.prior[:, problem.observed_indices].mean(axis=1)
        np.testing.assert_allclose(anchors, 1.0)

    def test_roundtrip_scaling(self):
        """estimate(normalized) * scale lives in original units."""
        problem = _problem(seed=3)
        normalized, scale = normalize_problem(problem)
        reconstructed = normalized.observed_values * scale
        np.testing.assert_allclose(reconstructed, problem.observed_values)

    def test_shape_preserving(self):
        problem = _problem(seed=4)
        normalized, _ = normalize_problem(problem)
        assert normalized.prior.shape == problem.prior.shape
        assert normalized.num_configs == problem.num_configs

    def test_none_prior_passthrough(self):
        problem = EstimationProblem(
            features=np.ones((4, 2)), prior=None,
            observed_indices=np.array([0, 1]),
            observed_values=np.array([2.0, 4.0]))
        normalized, scale = normalize_problem(problem)
        assert normalized.prior is None
        assert scale == 3.0

    def test_rejects_nonpositive_observed_mean(self):
        problem = EstimationProblem(
            features=np.ones((4, 2)), prior=None,
            observed_indices=np.array([0, 1]),
            observed_values=np.array([1.0, -3.0]))
        with pytest.raises(ValueError):
            normalize_problem(problem)
