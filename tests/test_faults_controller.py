"""Fault-plan tests for the runtime: degrade, survive, promote back.

The acceptance criteria of the resilience work, on fixed seeds: under
every fault class the RuntimeController never raises an unhandled
exception — it walks down the estimator ladder, keeps actuating a valid
configuration, and promotes back to the configured estimator within a
bounded number of healthy quanta once the faults clear.
"""

import numpy as np
import pytest

from repro.errors import InsufficientSamplesError, SensorReadError
from repro.estimators.leo import LEOEstimator
from repro.faults import FaultInjector, FaultPlan, FaultSpec, use
from repro.faults.plans import default_plan
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.runtime.controller import RuntimeController
from repro.runtime.resilience import PINNED_TIER
from repro.runtime.sampling import RandomSampler
from repro.telemetry.heartbeats import HeartbeatMonitor
from repro.telemetry.power_meter import WattsUpMeter
from repro.workloads.suite import get_benchmark


def build_controller(cores_space, cores_dataset, promotion_cooldown=3,
                     seed=1234):
    view = cores_dataset.leave_one_out("kmeans")
    return RuntimeController(
        machine=Machine(PAPER_TOPOLOGY, seed=seed), space=cores_space,
        estimator=LEOEstimator(),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=0), sample_count=6,
        promotion_cooldown=promotion_cooldown)


def plan(*specs, seed=0):
    return FaultPlan(name="test", seed=seed, specs=specs)


class TestCalibrationFaults:
    def test_total_dropout_raises_insufficient_samples(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("sensor-dropout", probability=1.0)))):
            with pytest.raises(InsufficientSamplesError):
                controller.calibrate(kmeans)

    def test_partial_dropout_calibrates_on_survivors(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        # Drop the first two sample windows only (clock < 2 s).
        with use(FaultInjector(plan(
                FaultSpec("sensor-dropout", end=2.0, probability=1.0)))):
            estimate = controller.calibrate(kmeans)
        assert estimate.estimator_name == "leo"
        assert np.all(np.isfinite(estimate.rates))
        assert np.all(estimate.rates > 0)

    def test_em_nonconvergence_demotes_to_online(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("em-nonconvergence", probability=1.0)))):
            estimate = controller.calibrate(kmeans)
        assert estimate.estimator_name == "online"
        assert controller.ladder.degraded
        assert controller.ladder.demotions == 1
        assert np.all(np.isfinite(estimate.rates))

    def test_poisoned_covariance_demotes(
            self, cores_space, cores_dataset, kmeans):
        # magnitude < 0 makes Sigma non-finite: the jitter escalation
        # cannot repair it, CovarianceError falls down the ladder.
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("singular-covariance", probability=1.0,
                          magnitude=-1.0)))):
            estimate = controller.calibrate(kmeans)
        assert estimate.estimator_name != "leo"
        assert controller.ladder.degraded

    def test_singular_covariance_repaired_in_place(
            self, cores_space, cores_dataset, kmeans):
        # magnitude = 0 zeroes Sigma — singular but repairable, so the
        # jitter guard absorbs it and LEO itself still fits.
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("singular-covariance", probability=1.0,
                          magnitude=0.0)))):
            estimate = controller.calibrate(kmeans)
        assert estimate.estimator_name == "leo"
        assert not controller.ladder.degraded
        assert np.all(np.isfinite(estimate.rates))

    def test_every_estimator_down_falls_to_pinned(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("estimator-crash", probability=1.0)))):
            estimate = controller.calibrate(kmeans)
        assert estimate.estimator_name == PINNED_TIER
        assert controller.ladder.current.name == PINNED_TIER
        # The pinned curve is conservative: no unmeasured configuration
        # looks faster than the slowest measurement.
        assert estimate.rates.min() == estimate.rates[0] or \
            np.sum(estimate.rates == estimate.rates.min()) >= 1
        assert np.all(np.isfinite(estimate.powers))

    def test_pinned_estimate_still_drives_a_run(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(plan(
                FaultSpec("estimator-crash", probability=1.0)))):
            estimate = controller.calibrate(kmeans)
            work = 0.3 * estimate.rates.max() * 40.0
            report = controller.run(kmeans, work, 40.0, estimate)
        assert report.energy > 0
        assert report.work_done > 0


class TestRunFaults:
    def test_run_survives_sensor_dropouts(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        estimate = controller.calibrate(kmeans)
        # Drop every reading for a mid-run stretch of simulated time.
        with use(FaultInjector(plan(
                FaultSpec("sensor-dropout", start=10.0, end=20.0,
                          probability=1.0)))):
            work = 0.4 * estimate.rates.max() * 50.0
            report = controller.run(kmeans, work, 50.0, estimate)
        assert report.energy > 0
        # Lost quanta charge time but credit no work, so the trace
        # still covers the deadline.
        assert sum(len(t) for t in (report.power_trace,)) > 0

    def test_promotes_back_after_faults_clear(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset,
                                      promotion_cooldown=3)
        # One estimator crash demotes the first calibration; the fault
        # then exhausts (max_events=1), so the run's promotion probe
        # must climb back to LEO.
        with use(FaultInjector(plan(
                FaultSpec("estimator-crash", probability=1.0,
                          max_events=1)))):
            estimate = controller.calibrate(kmeans)
            assert controller.ladder.degraded
            work = 0.4 * estimate.rates.max() * 60.0
            report = controller.run(kmeans, work, 60.0, estimate)
        assert controller.ladder.tier_index == 0
        assert controller.ladder.promotions >= 1
        assert report.energy > 0

    def test_full_default_plan_never_raises(
            self, cores_space, cores_dataset, kmeans):
        controller = build_controller(cores_space, cores_dataset)
        with use(FaultInjector(default_plan(seed=5))) as injector:
            estimate = controller.calibrate(kmeans)
            work = 0.4 * estimate.rates.max() * 40.0
            for _ in range(3):
                report = controller.run(kmeans, work, 40.0, estimate,
                                        adapt=True)
                assert report.energy > 0
            assert injector.total_fired > 0


class TestTelemetryFaults:
    def _machine(self, kmeans, cores_space):
        machine = Machine(PAPER_TOPOLOGY, seed=7)
        machine.load(kmeans)
        machine.apply(cores_space[4])
        return machine

    def test_meter_dropout_raises_typed_error(self, kmeans, cores_space):
        machine = self._machine(kmeans, cores_space)
        meter = WattsUpMeter(machine)
        with use(FaultInjector(plan(
                FaultSpec("meter-dropout", probability=1.0)))):
            with pytest.raises(SensorReadError) as exc:
                meter.sample()
        assert exc.value.site == "telemetry.meter"

    def test_meter_bias_shifts_readings(self, kmeans, cores_space):
        machine = self._machine(kmeans, cores_space)
        clean = WattsUpMeter(machine, noise_std=0.0, quantum=0.0).sample()
        meter = WattsUpMeter(machine, noise_std=0.0, quantum=0.0)
        with use(FaultInjector(plan(
                FaultSpec("meter-bias", probability=1.0, magnitude=25.0)))):
            biased = meter.sample()
        assert biased.watts == pytest.approx(clean.watts + 25.0)

    def test_heartbeat_stall_drops_beats(self):
        monitor = HeartbeatMonitor(window=5)
        with use(FaultInjector(plan(
                FaultSpec("heartbeat-stall", start=2.0, end=4.0)))):
            for t in range(6):
                monitor.heartbeat(float(t), beats=10.0)
        # Beats at t=2 and t=3 were stalled away.
        assert monitor.total_beats == 40.0
