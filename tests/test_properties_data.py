"""Property-based tests for the data-plumbing layers.

Covers ObservationSet mask grouping, HeartbeatMonitor rate arithmetic,
the estimate store's round-trip, and the CSV exporter — the pieces whose
bugs would silently corrupt experiments rather than crash them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.observation import ObservationSet
from repro.reporting.csv_export import read_series, write_series
from repro.runtime.controller import TradeoffEstimate
from repro.runtime.persistence import EstimateStore
from repro.telemetry.heartbeats import HeartbeatMonitor


class TestObservationSetProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.integers(1, 8), st.integers(2, 12), st.integers(0, 10_000))
    def test_mask_groups_partition_applications(self, m, n, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((m, n)) < 0.6
        # Guarantee every row observes something.
        for i in range(m):
            if not mask[i].any():
                mask[i, int(rng.integers(n))] = True
        obs = ObservationSet(np.abs(rng.normal(5, 1, (m, n))), mask)

        seen = []
        for obs_idx, apps in obs.mask_groups():
            seen.extend(apps)
            for app in apps:
                np.testing.assert_array_equal(obs.observed_indices(app),
                                              obs_idx)
        assert sorted(seen) == list(range(m))

    @settings(deadline=None, max_examples=40)
    @given(st.integers(1, 8), st.integers(2, 12), st.integers(0, 10_000))
    def test_total_observations_equals_mask_sum(self, m, n, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((m, n)) < 0.7
        for i in range(m):
            if not mask[i].any():
                mask[i, 0] = True
        obs = ObservationSet(np.ones((m, n)), mask)
        assert obs.total_observations == int(mask.sum())


class TestHeartbeatProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        min_size=2, max_size=30))
    def test_window_rate_bounded_by_peak_instantaneous(self, steps):
        """The windowed rate never exceeds the max per-step rate."""
        monitor = HeartbeatMonitor(window=10)
        t = 0.0
        peak = 0.0
        for dt, beats in steps:
            t += dt
            monitor.heartbeat(t, beats=beats)
            peak = max(peak, beats / dt)
        assert monitor.window_rate() <= peak + 1e-6

    @settings(deadline=None, max_examples=40)
    @given(st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
           st.integers(3, 20))
    def test_constant_stream_recovers_rate(self, rate, count):
        monitor = HeartbeatMonitor(window=count + 1)
        for i in range(count):
            monitor.heartbeat((i + 1) / rate, beats=1.0)
        assert monitor.window_rate() == pytest.approx(rate, rel=1e-6)


class TestStoreProperties:
    @settings(deadline=None, max_examples=25)
    @given(n=st.integers(2, 50), seed=st.integers(0, 10_000),
           raw_name=st.text(alphabet="abcdefgh-_.0123456789", min_size=1,
                            max_size=20))
    def test_roundtrip_preserves_curves(self, tmp_path_factory, n, seed,
                                        raw_name):
        rng = np.random.default_rng(seed)
        store = EstimateStore(tmp_path_factory.mktemp("store"))
        estimate = TradeoffEstimate(
            rates=rng.uniform(0.1, 100, n),
            powers=rng.uniform(50, 400, n),
            estimator_name="leo")
        try:
            store.save(raw_name, estimate)
        except ValueError:
            return  # unsanitizable name: acceptable rejection
        loaded = store.load(raw_name, n, "leo")
        np.testing.assert_allclose(loaded.rates, estimate.rates)
        np.testing.assert_allclose(loaded.powers, estimate.powers)


class TestCsvProperties:
    @settings(deadline=None, max_examples=25)
    @given(rows=st.integers(1, 40), cols=st.integers(1, 4),
           seed=st.integers(0, 10_000))
    def test_roundtrip_exact(self, tmp_path_factory, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.uniform(0, 100, rows))
        series = {f"s{i}": rng.uniform(-1e6, 1e6, rows)
                  for i in range(cols)}
        path = tmp_path_factory.mktemp("csv") / "data.csv"
        write_series(path, "x", x, series)
        back = read_series(path)
        np.testing.assert_array_equal(back["x"], x)
        for label, values in series.items():
            np.testing.assert_array_equal(back[label], values)
