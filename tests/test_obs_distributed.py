"""End-to-end distributed observability.

The PR-6 acceptance surface: spans recorded in pool workers and in the
estimation service merge with the originating tracer's spans into one
orphan-free tree; worker metrics registries aggregate into the parent;
and none of it changes experiment results — tracing on and off are
bit-identical.

Tasks are module-level so they pickle by name into pool workers.
"""

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, Tenant
from repro.cluster.partition import PartitionedMachine
from repro.experiments.parallel import ParallelRunner
from repro.obs import (
    Observability,
    Span,
    get_metrics,
    merge_spans,
    orphan_spans,
    use,
)
from repro.reporting import critical_path, render_span_tree
from repro.service import (
    EstimationService,
    RemoteEstimator,
    RequestRejected,
    ServerThread,
    ServiceClient,
)
from repro.workloads.suite import get_benchmark

TRACE_ID = "feedbeefcafe0123"


def _counting_task(shared, cell):
    """Increment a worker-side counter and do a tiny bit of work."""
    get_metrics().inc("distributed_cells_total")
    return cell * cell


def _draw_task(shared, cell):
    """A task whose result would expose any RNG perturbation."""
    rng = np.random.default_rng(cell)
    return float(rng.normal(loc=shared or 0.0))


def _cells(n=8):
    return list(range(n))


def _span(name, span_id, parent_id=None, start=0.0, end=1.0,
          trace_id=None):
    return Span(name=name, span_id=span_id, parent_id=parent_id,
                start=start, end=end, trace_id=trace_id)


# ----------------------------------------------------------------------
# ParallelRunner: worker spans and metrics come home
# ----------------------------------------------------------------------
class TestWorkerExport:
    def _traced_map(self, workers, cells, task=_counting_task):
        ob = Observability.recording(trace_id=TRACE_ID)
        with use(ob):
            with ob.tracer.span("run.root"):
                results = ParallelRunner(workers=workers,
                                         chunk_size=3).map(task, cells)
        return ob, results

    def test_worker_spans_adopted_into_parent_trace(self):
        cells = _cells()
        ob, results = self._traced_map(2, cells)
        assert results == [c * c for c in cells]
        spans = ob.tracer.spans
        assert orphan_spans(spans) == []
        cell_spans = [s for s in spans if s.name == "harness.cell"]
        assert len(cell_spans) == len(cells)
        parent = next(s for s in spans if s.name == "harness.parallel_map")
        assert {s.parent_id for s in cell_spans} == {parent.span_id}
        assert {s.trace_id for s in cell_spans} == {TRACE_ID}
        assert {s.attributes["index"] for s in cell_spans} \
            == set(range(len(cells)))

    def test_worker_counters_aggregate_to_process_sum(self):
        cells = _cells()
        ob, _ = self._traced_map(2, cells)
        counters = ob.metrics.snapshot()["counters"]
        # Both counters were incremented once per cell inside worker
        # processes; the merged parent registry holds the exact sum.
        assert counters["distributed_cells_total"] == len(cells)
        assert counters["harness_worker_cells_total"] == len(cells)

    def test_span_ids_independent_of_worker_count(self):
        # Shard bases key on chunk content, not on which worker ran the
        # chunk, so the same cells produce the same span ids at any
        # parallelism (timings aside).
        def identities(workers):
            ob, _ = self._traced_map(workers, _cells())
            return sorted((s.attributes["index"], s.span_id, s.parent_id)
                          for s in ob.tracer.spans
                          if s.name == "harness.cell")
        assert identities(2) == identities(3)

    def test_serial_path_records_cells_too(self):
        cells = _cells(4)
        ob, results = self._traced_map(1, cells)
        assert results == [c * c for c in cells]
        assert len([s for s in ob.tracer.spans
                    if s.name == "harness.cell"]) == len(cells)
        assert ob.metrics.snapshot()["counters"][
            "distributed_cells_total"] == len(cells)

    def test_tracing_does_not_change_results(self):
        cells = _cells()
        baseline = ParallelRunner(workers=2, chunk_size=3).map(
            _draw_task, cells, shared=0.5)
        ob = Observability.recording()
        with use(ob):
            traced = ParallelRunner(workers=2, chunk_size=3).map(
                _draw_task, cells, shared=0.5)
        assert traced == baseline  # bit-identical, not approx


# ----------------------------------------------------------------------
# Service: client and server shards stitch into one tree
# ----------------------------------------------------------------------
@pytest.fixture()
def server():
    with ServerThread(EstimationService(), max_pending=4,
                      max_workers=1) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServiceClient(server.bound_address, timeout=30.0) as c:
        yield c


class TestServicePropagation:
    def test_request_span_parents_under_client_span(self, server, client):
        # "sleep" runs through the executor like a real fit (inline ops
        # such as ping never reach the handler span).
        ob = Observability.recording(trace_id=TRACE_ID)
        with use(ob):
            client.call("sleep", {"seconds": 0.0})
        merged = merge_spans(ob.tracer.spans, server.server.request_spans)
        assert orphan_spans(merged) == []
        call = next(s for s in merged if s.name == "client.call")
        request = next(s for s in merged if s.name == "service.request")
        assert request.parent_id == call.span_id
        assert request.trace_id == TRACE_ID
        # The stitched tree renders as one hierarchy.
        tree = render_span_tree(merged)
        assert tree.index("client.call") < tree.index("service.request")

    def test_server_traces_only_when_asked(self, server, client):
        client.call("sleep", {"seconds": 0.0})
        assert server.server.request_spans == []

    def test_error_details_carry_trace_id(self, server, client):
        ob = Observability.recording(trace_id=TRACE_ID)
        with use(ob):
            with pytest.raises(RequestRejected) as excinfo:
                client.call("frobnicate")
        assert excinfo.value.details.get("trace_id") == TRACE_ID

    def test_untraced_errors_carry_no_trace_id(self, server, client):
        with pytest.raises(RequestRejected) as excinfo:
            client.call("frobnicate")
        assert "trace_id" not in (excinfo.value.details or {})

    def test_distinct_requests_get_distinct_span_blocks(self, server,
                                                        client):
        ob = Observability.recording(trace_id=TRACE_ID)
        with use(ob):
            client.call("sleep", {"seconds": 0.0})
            client.call("sleep", {"seconds": 0.0})
        spans = server.server.request_spans
        roots = [s for s in spans if s.name == "service.request"]
        assert len(roots) == 2
        assert roots[0].span_id != roots[1].span_id
        merged = merge_spans(ob.tracer.spans, spans)
        assert orphan_spans(merged) == []


# ----------------------------------------------------------------------
# The acceptance run: cluster + pool workers + remote estimator
# ----------------------------------------------------------------------
DEADLINE = 15.0
CAP = 220.0


def _tenant_work(cores_space, name, utilization):
    share = cores_space.topology.total_cores
    node = PartitionedMachine(cores_space, [(name, share)])
    node.set_profile(name, get_benchmark(name))
    view = node.view(name)
    profile = get_benchmark(name)
    max_rate = max(view.true_rate(profile, c)
                   for c in node.space_for(name).space)
    return utilization * max_rate * DEADLINE


class TestDistributedAcceptance:
    def test_one_trace_across_pool_and_service(self, cores_space,
                                               cores_dataset):
        """Workers=2 plus a RemoteEstimator tenant: one orphan-free
        tree, and parent counters equal the per-process sums."""
        work = _tenant_work(cores_space, "kmeans", 0.3)
        view = cores_dataset.leave_one_out("kmeans")
        cells = _cells()
        ob = Observability.recording(trace_id=TRACE_ID)
        with ServerThread(EstimationService(), max_pending=4,
                          max_workers=1) as thread:
            with ServiceClient(thread.bound_address,
                               timeout=120.0) as remote_client:
                with use(ob):
                    with ob.tracer.span("acceptance.run"):
                        pool_results = ParallelRunner(
                            workers=2, chunk_size=3).map(
                                _counting_task, cells)
                        coordinator = ClusterCoordinator(
                            cores_space, cap_watts=CAP, seed=3)
                        coordinator.admit(Tenant(
                            name="kmeans",
                            workload=get_benchmark("kmeans"),
                            work=work, deadline=DEADLINE,
                            estimator=RemoteEstimator(remote_client,
                                                      estimator="leo"),
                            prior_rates=view.prior_rates,
                            prior_powers=view.prior_powers))
                        report = coordinator.run()
            server_spans = thread.server.request_spans

        assert report.all_deadlines_met
        assert pool_results == [c * c for c in cells]

        merged = merge_spans(ob.tracer.spans, server_spans)
        assert orphan_spans(merged) == [], \
            "every cross-process edge must resolve in the merged tree"
        names = {s.name for s in merged}
        assert "harness.cell" in names, "pool worker shard missing"
        assert "service.request" in names, "service shard missing"
        assert {s.trace_id for s in merged} == {TRACE_ID}

        counters = ob.metrics.snapshot()["counters"]
        assert counters["distributed_cells_total"] == len(cells)
        assert counters["cluster_deadline_met_total{tenant=kmeans}"] == 1

        # The merged tree is coherent enough to analyze: the critical
        # path starts at the root span recorded above.
        path = critical_path(merged)
        assert path and path[0].name == "acceptance.run"


# ----------------------------------------------------------------------
# Renderer robustness on merged (possibly damaged) distributed traces
# ----------------------------------------------------------------------
class TestSpanTreeRobustness:
    def test_orphan_promoted_to_root(self):
        spans = [_span("root", 1, start=0.0),
                 _span("lost", 7, parent_id=99, start=0.5)]
        tree = render_span_tree(spans)
        lines = tree.splitlines()
        assert len(lines) == 2
        assert all(not line.startswith(" ") for line in lines), \
            "an orphan renders as a root, not a child"

    def test_self_parent_terminates(self):
        tree = render_span_tree([_span("loop", 3, parent_id=3)])
        assert tree.count("loop") == 1

    def test_duplicate_span_ids_render_once_each(self):
        spans = [_span("parent", 1, start=0.0),
                 _span("twin", 2, parent_id=1, start=0.1),
                 _span("twin", 2, parent_id=1, start=0.2)]
        tree = render_span_tree(spans)
        assert tree.count("twin") == 2  # both objects, each exactly once

    def test_cycle_between_spans_terminates(self):
        spans = [_span("a", 1, parent_id=2, start=0.0),
                 _span("b", 2, parent_id=1, start=0.1)]
        tree = render_span_tree(spans)
        assert tree.count("a") >= 1 and tree.count("b") >= 1

    def test_interleaved_shards_render_as_one_tree(self, tmp_path):
        # Two shards whose spans interleave in time; after merging the
        # renderer nests the remote child under its cross-process
        # parent despite the shard boundary.
        local = [_span("root", 1, start=0.0, end=4.0,
                       trace_id=TRACE_ID),
                 _span("late", 2, parent_id=1, start=3.0, end=3.5,
                       trace_id=TRACE_ID)]
        remote = [_span("remote.op", 2 ** 32 + 1, parent_id=1,
                        start=1.0, end=2.0, trace_id=TRACE_ID)]
        tree = render_span_tree(merge_spans(local, remote))
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  remote.op")
        assert lines[2].startswith("  late")


class TestCriticalPath:
    def test_walks_heaviest_chain(self):
        spans = [_span("root", 1, start=0.0, end=10.0),
                 _span("light", 2, parent_id=1, start=0.0, end=3.0),
                 _span("heavy", 3, parent_id=1, start=3.0, end=9.0),
                 _span("leaf", 4, parent_id=3, start=4.0, end=6.0)]
        assert [s.name for s in critical_path(spans)] \
            == ["root", "heavy", "leaf"]

    def test_empty_trace(self):
        assert critical_path([]) == []

    def test_crosses_process_boundaries(self):
        base = 2 ** 32
        spans = [_span("harness", 1, start=0.0, end=5.0),
                 _span("cell", base + 1, parent_id=1,
                       start=0.5, end=4.5),
                 _span("service.request", 2 * base + 1,
                       parent_id=base + 1, start=1.0, end=4.0)]
        assert [s.name for s in critical_path(spans)] \
            == ["harness", "cell", "service.request"]

    def test_cycle_terminates(self):
        spans = [_span("a", 1, parent_id=2, start=0.0, end=2.0),
                 _span("b", 2, parent_id=1, start=0.0, end=1.0)]
        path = critical_path(spans)
        assert 1 <= len(path) <= 2
