"""End-to-end observability: the traced LEO runtime loop.

Asserts the span tree the acceptance criteria promise — a traced
controller run emits nested ``controller.calibrate`` → ``estimator.fit``
→ ``em.iteration`` spans and ``lp.solve`` spans under quanta — plus the
span-derived TradeoffEstimate bookkeeping, the CLI surface, and the
structured-logging helper.
"""

import logging

import numpy as np
import pytest

from repro.estimators.leo import LEOEstimator
from repro.obs import Observability, logging_setup, read_trace, use
from repro.reporting import render_span_tree, summarize_spans
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.sampling import RandomSampler


@pytest.fixture()
def traced_controller(machine, cores_space, cores_dataset):
    view = cores_dataset.leave_one_out("kmeans")
    observability = Observability.recording()
    controller = RuntimeController(
        machine=machine, space=cores_space, estimator=LEOEstimator(),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=0), sample_count=6,
        observability=observability)
    return controller, observability


def _by_id(spans):
    return {span.span_id: span for span in spans}


class TestControllerSpanTree:
    def test_calibrate_emits_nested_fit_spans(self, traced_controller,
                                              kmeans):
        controller, ob = traced_controller
        controller.calibrate(kmeans)
        spans = ob.tracer.spans
        by_id = _by_id(spans)
        names = [s.name for s in spans]
        assert names.count("controller.calibrate") == 1
        assert names.count("controller.sample") == 1
        assert names.count("estimator.fit") == 2  # rates + powers
        assert names.count("em.iteration") >= 2

        calibrate = next(s for s in spans if s.name == "controller.calibrate")
        for fit in (s for s in spans if s.name == "estimator.fit"):
            assert by_id[fit.parent_id].name == "controller.calibrate"
        sample = next(s for s in spans if s.name == "controller.sample")
        assert sample.parent_id == calibrate.span_id
        for it in (s for s in spans if s.name == "em.iteration"):
            em_fit = by_id[it.parent_id]
            assert em_fit.name == "em.fit"
            assert by_id[em_fit.parent_id].name == "estimator.fit"

    def test_run_emits_quantum_and_lp_spans(self, traced_controller,
                                            kmeans):
        controller, ob = traced_controller
        estimate = controller.calibrate(kmeans)
        work = 0.8 * float(estimate.rates.max()) * 10.0
        report = controller.run(kmeans, work, 10.0, estimate)
        assert report.met_target
        spans = ob.tracer.spans
        by_id = _by_id(spans)
        run = next(s for s in spans if s.name == "controller.run")
        quanta = [s for s in spans if s.name == "controller.quantum"]
        assert quanta and all(q.parent_id == run.span_id for q in quanta)
        lp = [s for s in spans if s.name == "lp.solve"]
        assert lp and all(
            by_id[s.parent_id].name == "controller.quantum" for s in lp)
        assert run.attributes["met_target"] is True

    def test_run_metrics(self, traced_controller, kmeans):
        controller, ob = traced_controller
        estimate = controller.calibrate(kmeans)
        work = 0.5 * float(estimate.rates.max()) * 10.0
        controller.run(kmeans, work, 10.0, estimate)
        snap = ob.metrics.snapshot()
        assert snap["counters"]["quanta_total"] >= 1
        assert snap["counters"]["lp_resolves_total"] >= 1
        assert snap["counters"]["em_iterations_total"] >= 2
        assert snap["counters"]["sampling_energy_joules"] > 0
        assert snap["gauges"]["constraint_violation_ratio"] == pytest.approx(
            0.0, abs=0.02)
        assert snap["histograms"]["fit_seconds"]["count"] == 2


class TestSpanDerivedEstimate:
    def test_bookkeeping_matches_spans_when_traced(self, traced_controller,
                                                   kmeans):
        controller, ob = traced_controller
        estimate = controller.calibrate(kmeans)
        assert estimate.spans
        assert estimate.sampling_time == pytest.approx(6.0)  # 6 x 1s windows
        assert estimate.sampling_energy > 0
        assert estimate.fit_seconds > 0
        fit_spans = [s for s in estimate.spans if s.name == "estimator.fit"]
        assert estimate.fit_seconds == pytest.approx(
            sum(s.duration for s in fit_spans))

    def test_bookkeeping_present_without_tracing(self, machine, cores_space,
                                                 cores_dataset, kmeans):
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=0), sample_count=6)
        estimate = controller.calibrate(kmeans)
        # No ambient tracer, yet the estimate is still self-describing.
        assert estimate.sampling_time == pytest.approx(6.0)
        assert estimate.fit_seconds > 0
        assert estimate.sampling_energy > 0

    def test_stored_fallbacks_for_spanless_estimates(self):
        estimate = TradeoffEstimate(
            rates=np.array([1.0]), powers=np.array([2.0]),
            estimator_name="synthetic", sampling_time=3.0,
            sampling_energy=4.0, sampling_heartbeats=5.0, fit_seconds=6.0)
        assert estimate.sampling_time == 3.0
        assert estimate.sampling_energy == 4.0
        assert estimate.sampling_heartbeats == 5.0
        assert estimate.fit_seconds == 6.0


class TestRenderAndSummarize:
    def test_render_span_tree_nests_by_indent(self, traced_controller,
                                              kmeans):
        controller, ob = traced_controller
        controller.calibrate(kmeans)
        rendered = render_span_tree(ob.tracer.spans)
        lines = rendered.splitlines()
        assert lines[0].startswith("controller.calibrate")
        assert any(line.startswith("  controller.sample") for line in lines)
        assert any(line.startswith("  estimator.fit") for line in lines)
        assert any(line.startswith("      em.iteration") for line in lines)

    def test_summarize_spans_aggregates(self, traced_controller, kmeans):
        controller, ob = traced_controller
        controller.calibrate(kmeans)
        summary = summarize_spans(ob.tracer.spans)
        assert summary["estimator.fit"]["count"] == 2.0
        assert summary["estimator.fit"]["total_s"] == pytest.approx(
            2 * summary["estimator.fit"]["mean_s"])


class TestCliSurface:
    def test_estimate_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(["estimate", "--benchmark", "kmeans", "--space", "cores",
                     "--samples", "8", "--trace", str(trace),
                     "--metrics", str(metrics)])
        assert code == 0
        assert trace.exists() and metrics.exists()
        spans = read_trace(trace)
        assert any(s.name == "em.iteration" for s in spans)

    def test_obs_summarize_renders_tree(self, tmp_path, capsys):
        from repro.cli import main
        trace = tmp_path / "trace.jsonl"
        assert main(["estimate", "--benchmark", "kmeans", "--space", "cores",
                     "--samples", "8", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "estimator.fit" in out
        assert "em.iteration" in out
        assert "mean s" in out

    def test_obs_summarize_missing_file(self, capsys):
        from repro.cli import main
        assert main(["obs", "summarize", "/nonexistent/trace.jsonl"]) == 1


class TestLoggingSetup:
    def test_formatter_appends_fields(self):
        import io
        stream = io.StringIO()
        logger = logging_setup(level=logging.DEBUG, stream=stream,
                               logger_name="repro-test-logger")
        logger.info("phase change", extra={"fields": {"quantum": 3,
                                                      "deviation": 0.5}})
        line = stream.getvalue().strip()
        assert "phase change" in line
        assert "deviation=0.5" in line
        assert "quantum=3" in line

    def test_idempotent(self):
        first = logging_setup(logger_name="repro-test-idem")
        second = logging_setup(logger_name="repro-test-idem")
        assert first is second
        assert len(first.handlers) == 1
