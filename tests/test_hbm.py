"""Tests for repro.core.hbm: the model facade."""

import numpy as np
import pytest

from repro.core.em import EMConfig
from repro.core.hbm import HierarchicalBayesianModel
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior


def _obs(seed=0, m=6, n=8):
    rng = np.random.default_rng(seed)
    prior = rng.normal(1.0, 0.3, (m - 1, n)).cumsum(axis=1)
    prior = np.abs(prior) + 1.0
    target_idx = [1, 5]
    target_vals = prior.mean(axis=0)[target_idx] * 1.1
    return ObservationSet.from_prior_and_target(prior, target_idx,
                                                target_vals)


class TestDefaults:
    def test_uses_paper_prior_by_default(self):
        model = HierarchicalBayesianModel()
        assert model.prior == NIWPrior.paper_default()

    def test_can_disable_prior(self):
        model = HierarchicalBayesianModel(use_paper_prior=False)
        assert model.prior is None

    def test_explicit_prior_wins(self):
        custom = NIWPrior(pi=5.0)
        model = HierarchicalBayesianModel(prior=custom)
        assert model.prior is custom


class TestFittedModel:
    def test_curve_shapes_and_copies(self):
        obs = _obs()
        fitted = HierarchicalBayesianModel().fit(obs)
        curve = fitted.target_curve()
        assert curve.shape == (obs.num_configs,)
        curve[0] = 1e9
        assert fitted.target_curve()[0] != 1e9

    def test_curve_by_app_index(self):
        obs = _obs()
        fitted = HierarchicalBayesianModel().fit(obs)
        np.testing.assert_array_equal(fitted.curve(obs.target_row),
                                      fitted.target_curve())

    def test_credible_band_brackets_mean(self):
        obs = _obs(seed=2)
        fitted = HierarchicalBayesianModel().fit(obs)
        lower, upper = fitted.credible_band(obs.target_row)
        mean = fitted.target_curve()
        assert (lower <= mean + 1e-12).all()
        assert (upper >= mean - 1e-12).all()

    def test_wider_band_for_more_stddevs(self):
        obs = _obs(seed=3)
        fitted = HierarchicalBayesianModel().fit(obs)
        narrow_lo, narrow_hi = fitted.credible_band(obs.target_row, 1.0)
        wide_lo, wide_hi = fitted.credible_band(obs.target_row, 3.0)
        assert ((wide_hi - wide_lo) >= (narrow_hi - narrow_lo) - 1e-12).all()

    def test_credible_band_rejects_negative(self):
        obs = _obs()
        fitted = HierarchicalBayesianModel().fit(obs)
        with pytest.raises(ValueError):
            fitted.credible_band(0, -1.0)

    def test_band_tight_at_observed_configs(self):
        obs = _obs(seed=4)
        fitted = HierarchicalBayesianModel().fit(obs)
        target = obs.target_row
        lower, upper = fitted.credible_band(target)
        width = upper - lower
        observed = obs.observed_indices(target)
        unobserved = np.setdiff1d(np.arange(obs.num_configs), observed)
        assert width[observed].mean() < width[unobserved].mean()

    def test_configuration_correlations_well_formed(self):
        """The Figure 4 structure: unit diagonal, symmetric, bounded."""
        obs = _obs(seed=6)
        fitted = HierarchicalBayesianModel().fit(obs)
        corr = fitted.configuration_correlations()
        assert corr.shape == (obs.num_configs, obs.num_configs)
        np.testing.assert_allclose(np.diag(corr), 1.0)
        np.testing.assert_allclose(corr, corr.T)
        assert corr.min() >= -1.0 and corr.max() <= 1.0

    def test_correlations_reflect_shared_structure(self, cores_dataset):
        """Adjacent core counts correlate more than distant ones."""
        from repro.core.observation import ObservationSet
        view = cores_dataset.leave_one_out("kmeans")
        prior = view.prior_rates / view.prior_rates.mean(axis=1,
                                                         keepdims=True)
        obs = ObservationSet.from_prior_and_target(
            prior, [4, 20], [prior.mean(axis=0)[4], prior.mean(axis=0)[20]])
        fitted = HierarchicalBayesianModel().fit(obs)
        corr = fitted.configuration_correlations()
        assert corr[10, 11] > corr[10, 31]

    def test_metadata_passthrough(self):
        obs = _obs()
        fitted = HierarchicalBayesianModel(
            em_config=EMConfig(max_iterations=3)).fit(obs)
        assert fitted.iterations <= 3
        assert isinstance(fitted.loglik, float)
        assert isinstance(fitted.converged, bool)

    def test_init_mu_is_honoured(self):
        """A one-iteration fit from different inits differs."""
        obs = _obs(seed=5)
        model = HierarchicalBayesianModel(
            em_config=EMConfig(max_iterations=1))
        a = model.fit(obs, init_mu=np.zeros(obs.num_configs))
        b = model.fit(obs, init_mu=np.full(obs.num_configs, 10.0))
        assert not np.allclose(a.target_curve(), b.target_curve())
