"""Tests for repro.runtime.phase_detector."""

import pytest

from repro.runtime.phase_detector import PhaseDetector


class TestDetection:
    def test_fires_after_patience_consecutive_anomalies(self):
        detector = PhaseDetector(threshold=0.15, patience=3)
        assert not detector.update(100.0, 50.0)
        assert not detector.update(100.0, 50.0)
        assert detector.update(100.0, 50.0)
        assert detector.detections == 1

    def test_streak_reset_by_normal_window(self):
        detector = PhaseDetector(threshold=0.15, patience=3)
        detector.update(100.0, 50.0)
        detector.update(100.0, 50.0)
        detector.update(100.0, 99.0)  # back to normal
        assert not detector.update(100.0, 50.0)
        assert not detector.update(100.0, 50.0)
        assert detector.update(100.0, 50.0)

    def test_resets_after_firing(self):
        detector = PhaseDetector(threshold=0.1, patience=2)
        detector.update(10.0, 1.0)
        assert detector.update(10.0, 1.0)
        # Streak restarted: needs two more anomalies to fire again.
        assert not detector.update(10.0, 1.0)
        assert detector.update(10.0, 1.0)
        assert detector.detections == 2

    def test_within_threshold_never_fires(self):
        detector = PhaseDetector(threshold=0.2, patience=1)
        for _ in range(10):
            assert not detector.update(100.0, 85.0)

    def test_detects_rate_increase_too(self):
        """Phase 2 of fluidanimate is lighter: rates jump UP."""
        detector = PhaseDetector(threshold=0.15, patience=1)
        assert detector.update(100.0, 150.0)

    def test_manual_reset(self):
        detector = PhaseDetector(threshold=0.1, patience=2)
        detector.update(10.0, 1.0)
        detector.reset()
        assert not detector.update(10.0, 1.0)


class TestThresholdOverride:
    def test_looser_override_suppresses_anomaly(self):
        detector = PhaseDetector(threshold=0.15, patience=1)
        # 30% deviation: anomalous by default, normal at a 0.5 override.
        assert not detector.update(100.0, 70.0, threshold=0.5)
        assert detector.update(100.0, 70.0)

    def test_tighter_override_detects_small_shift(self):
        detector = PhaseDetector(threshold=0.5, patience=1)
        assert detector.update(100.0, 90.0, threshold=0.05)

    def test_override_rejects_nonpositive(self):
        detector = PhaseDetector()
        import pytest as _pytest
        with _pytest.raises(ValueError):
            detector.update(100.0, 90.0, threshold=0.0)


class TestValidation:
    def test_constructor(self):
        with pytest.raises(ValueError):
            PhaseDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PhaseDetector(patience=0)

    def test_update_inputs(self):
        detector = PhaseDetector()
        with pytest.raises(ValueError):
            detector.update(0.0, 1.0)
        with pytest.raises(ValueError):
            detector.update(1.0, -1.0)
