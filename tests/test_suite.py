"""Tests for repro.workloads.suite: the 25 paper benchmarks."""

import numpy as np
import pytest

from repro.platform.machine import Machine
from repro.workloads.suite import (
    SUITE_MEMBERSHIP,
    benchmark_names,
    get_benchmark,
    paper_suite,
)


class TestSuiteComposition:
    def test_twenty_five_benchmarks(self):
        assert len(paper_suite()) == 25

    def test_unique_names(self):
        names = benchmark_names()
        assert len(set(names)) == 25

    def test_membership_matches_section_6_1(self):
        by_suite = {}
        for name, suite in SUITE_MEMBERSHIP.items():
            by_suite.setdefault(suite, set()).add(name)
        assert by_suite["parsec"] == {
            "blackscholes", "bodytrack", "fluidanimate", "swaptions", "x264"}
        assert len(by_suite["minebench"]) == 8
        assert len(by_suite["rodinia"]) == 9
        assert by_suite["other"] == {"jacobi", "filebound", "swish"}

    def test_every_profile_has_membership(self):
        assert set(benchmark_names()) == set(SUITE_MEMBERSHIP)

    def test_lookup_case_insensitive(self):
        assert get_benchmark("KMeans").name == "kmeans"

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("doom")


class TestDocumentedBehaviours:
    """The behaviours the paper states must hold in the ground truth."""

    def test_kmeans_early_peak(self, cores_space):
        machine = Machine()
        rates = [machine.true_rate(get_benchmark("kmeans"), c)
                 for c in cores_space]
        assert int(np.argmax(rates)) + 1 == 8

    def test_swish_peak_sixteen(self, cores_space):
        machine = Machine()
        rates = [machine.true_rate(get_benchmark("swish"), c)
                 for c in cores_space]
        assert int(np.argmax(rates)) + 1 == 16

    def test_rate_scales_span_orders_of_magnitude(self, cores_space):
        """kmeans clusters thousands of samples/s; semphy is the slowest."""
        machine = Machine()
        base = {p.name: machine.true_rate(p, cores_space[0])
                for p in paper_suite()}
        assert base["kmeans"] / base["semphy"] > 1000

    def test_semphy_is_slowest(self, cores_space):
        machine = Machine()
        rates = {p.name: machine.true_rate(p, cores_space[0])
                 for p in paper_suite()}
        assert min(rates, key=rates.get) == "semphy"

    def test_diverse_scaling_peaks(self):
        peaks = {p.scaling_peak for p in paper_suite()}
        assert len(peaks) >= 8  # genuinely diverse scaling behaviours

    def test_includes_io_bound_workloads(self):
        io_apps = [p for p in paper_suite() if p.io_intensity > 0.2]
        assert {p.name for p in io_apps} >= {"filebound", "swish"}

    def test_includes_memory_bound_workloads(self):
        memory_apps = [p for p in paper_suite() if p.memory_intensity >= 0.5]
        assert len(memory_apps) >= 3

    def test_some_apps_hurt_by_hyperthreading(self):
        assert any(p.ht_efficiency < 0 for p in paper_suite())
