"""Property-based tests over the whole simulated system.

Where ``test_properties.py`` pins down the core data structures, these
properties quantify over *applications*: for any profile the generator
can produce, the platform models, the frontier, and the LP must satisfy
the physical and mathematical invariants the runtime relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.lp import EnergyMinimizer
from repro.optimize.pareto import TradeoffFrontier, pareto_optimal_mask
from repro.optimize.schedule import Schedule, Slot
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.runtime.race_to_idle import all_resources_config
from repro.workloads.generator import ProfileGenerator

SPACE = ConfigurationSpace.cores_only()
MACHINE = Machine(PAPER_TOPOLOGY)


def _profile_from_seed(seed: int):
    return ProfileGenerator(seed=seed).sample()


class TestPlatformInvariants:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_rates_positive_and_finite(self, seed):
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        assert np.all(rates > 0)
        assert np.all(np.isfinite(rates))

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_power_within_physical_envelope(self, seed):
        profile = _profile_from_seed(seed)
        idle = MACHINE.idle_power()
        for config in SPACE:
            power = MACHINE.true_power(profile, config)
            assert idle < power < 500.0

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000))
    def test_single_thread_never_fastest_overall(self, seed):
        """More resources help at least somewhere: one logical CPU is
        never the unique global performance peak."""
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        assert np.argmax(rates) != 0 or np.isclose(rates[0], rates.max())

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000))
    def test_peak_related_to_profile_peak(self, seed):
        """Sharp contention pins the rate peak near scaling_peak.

        For near-linear speedup S(t) ~ t, the rate t / (1 + s(t - p))
        decreases past p exactly when s * p > 1, so the optimum cannot
        sit far beyond the profile's scaling peak in that regime.
        """
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        best_threads = SPACE[int(np.argmax(rates))].threads
        product = profile.contention_slope * profile.scaling_peak
        if product > 1.5:
            assert best_threads <= profile.scaling_peak + 2


class TestEndToEndLPInvariants:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000),
           st.floats(min_value=0.05, max_value=1.0))
    def test_lp_feasible_for_any_generated_app(self, seed, utilization):
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        powers = np.array([MACHINE.true_power(profile, c) for c in SPACE])
        minimizer = EnergyMinimizer(rates, powers, MACHINE.idle_power())
        deadline = 50.0
        work = utilization * minimizer.max_rate * deadline
        schedule = minimizer.solve(work, deadline)
        assert schedule.work(rates) == pytest.approx(work, rel=1e-6)
        energy = minimizer.min_energy(work, deadline)
        # Bounded by idling the window and by racing flat out.
        assert energy >= MACHINE.idle_power() * deadline * (1 - 1e-9)
        assert energy <= powers.max() * deadline * (1 + 1e-9)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000),
           st.floats(min_value=0.05, max_value=0.95))
    def test_race_never_beats_lp(self, seed, utilization):
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        powers = np.array([MACHINE.true_power(profile, c) for c in SPACE])
        idle = MACHINE.idle_power()
        minimizer = EnergyMinimizer(rates, powers, idle)
        deadline = 50.0
        race_index = SPACE.index_of(all_resources_config(SPACE))
        work = utilization * rates[race_index] * deadline
        race = minimizer.race_to_idle(work, deadline, race_index)
        assert (race.energy(powers, idle)
                >= minimizer.min_energy(work, deadline) - 1e-6)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000))
    def test_pareto_front_nonempty_and_contains_peak(self, seed):
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        powers = np.array([MACHINE.true_power(profile, c) for c in SPACE])
        mask = pareto_optimal_mask(rates, powers)
        assert mask.any()
        # The max-rate config is undominated (nothing is faster).
        fastest = np.flatnonzero(rates == rates.max())
        assert mask[fastest].any()

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000))
    def test_hull_vertices_are_pareto_optimal(self, seed):
        profile = _profile_from_seed(seed)
        rates = np.array([MACHINE.true_rate(profile, c) for c in SPACE])
        powers = np.array([MACHINE.true_power(profile, c) for c in SPACE])
        mask = pareto_optimal_mask(rates, powers)
        frontier = TradeoffFrontier(rates, powers, MACHINE.idle_power())
        for vertex in frontier.vertices:
            if vertex.config_index is not None:
                assert mask[vertex.config_index]


class TestScheduleProperties:
    @settings(deadline=None, max_examples=40)
    @given(st.lists(
        st.tuples(st.one_of(st.none(), st.integers(0, 9)),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False)),
        min_size=0, max_size=8))
    def test_schedule_accounting_identities(self, slot_specs):
        schedule = Schedule([Slot(c, d) for c, d in slot_specs])
        rates = np.arange(1.0, 11.0)
        powers = np.linspace(100.0, 300.0, 10)
        idle = 50.0
        assert schedule.busy_time <= schedule.total_time + 1e-9
        assert schedule.work(rates) >= 0
        energy = schedule.energy(powers, idle)
        lo = min(idle, powers.min()) * schedule.total_time
        hi = max(idle, powers.max()) * schedule.total_time
        assert lo - 1e-6 <= energy <= hi + 1e-6

    @settings(deadline=None, max_examples=40)
    @given(st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
           st.floats(min_value=50.0, max_value=100.0, allow_nan=False))
    def test_padding_reaches_exact_deadline(self, busy, deadline):
        schedule = Schedule([Slot(0, busy)]).padded_to(deadline)
        assert schedule.total_time == pytest.approx(deadline)
