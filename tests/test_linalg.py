"""Tests for repro.core.linalg: the masked-posterior machinery."""

import numpy as np
import pytest

from repro.core.linalg import (
    MaskedPosterior,
    dense_posterior,
    nearest_psd_jitter,
    symmetrize,
)


def _random_spd(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestSymmetrize:
    def test_result_is_symmetric(self, rng):
        a = rng.standard_normal((5, 5))
        s = symmetrize(a)
        np.testing.assert_allclose(s, s.T)

    def test_symmetric_input_unchanged(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        np.testing.assert_allclose(symmetrize(a), a)


class TestNearestPsdJitter:
    def test_spd_input_untouched(self):
        a = _random_spd(6, 0)
        np.testing.assert_allclose(nearest_psd_jitter(a), a)

    def test_repairs_slightly_indefinite(self):
        a = _random_spd(4, 1)
        a[0, 0] -= np.linalg.eigvalsh(a)[0] * 1.0000001  # tip negative
        repaired = nearest_psd_jitter(a)
        np.linalg.cholesky(repaired)  # must not raise

    def test_gives_up_on_hopeless_matrix(self):
        hopeless = -1e6 * np.eye(3)
        with pytest.raises(np.linalg.LinAlgError):
            nearest_psd_jitter(hopeless)


class TestMaskedPosterior:
    def test_matches_dense_eq3_partial_mask(self):
        """Woodbury form equals the literal Eq. (3) inverses."""
        n = 12
        sigma = _random_spd(n, 2)
        mu = np.linspace(-1, 1, n)
        noise = 0.3
        obs_idx = np.array([1, 4, 7, 9])
        y_obs = np.array([0.5, -0.2, 1.0, 0.3])

        post = MaskedPosterior(sigma, noise, obs_idx)
        z_dense, cov_dense = dense_posterior(sigma, noise, obs_idx, mu, y_obs)
        np.testing.assert_allclose(post.mean(mu, y_obs), z_dense,
                                   rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(post.covariance, cov_dense,
                                   rtol=1e-7, atol=1e-9)

    def test_matches_dense_eq3_full_mask(self):
        n = 8
        sigma = _random_spd(n, 3)
        mu = np.zeros(n)
        noise = 0.1
        obs_idx = np.arange(n)
        y_obs = np.linspace(0, 1, n)
        post = MaskedPosterior(sigma, noise, obs_idx)
        z_dense, cov_dense = dense_posterior(sigma, noise, obs_idx, mu, y_obs)
        np.testing.assert_allclose(post.mean(mu, y_obs), z_dense,
                                   rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(post.covariance, cov_dense,
                                   rtol=1e-7, atol=1e-9)

    def test_posterior_mean_interpolates_observations(self):
        """With tiny noise, the posterior passes through the data."""
        sigma = _random_spd(6, 4)
        mu = np.zeros(6)
        obs_idx = np.array([0, 3])
        y_obs = np.array([2.0, -1.0])
        post = MaskedPosterior(sigma, 1e-10, obs_idx)
        zhat = post.mean(mu, y_obs)
        np.testing.assert_allclose(zhat[obs_idx], y_obs, atol=1e-4)

    def test_posterior_variance_shrinks_at_observations(self):
        sigma = _random_spd(6, 5)
        post = MaskedPosterior(sigma, 0.01, np.array([2]))
        cov = post.covariance
        assert cov[2, 2] < sigma[2, 2] * 0.1
        # Unrelated coordinates keep most of their prior variance.
        assert cov[5, 5] > 0

    def test_covariance_is_psd(self):
        sigma = _random_spd(10, 6)
        post = MaskedPosterior(sigma, 0.5, np.array([0, 2, 9]))
        eigenvalues = np.linalg.eigvalsh(symmetrize(post.covariance))
        assert eigenvalues.min() > -1e-9

    def test_unobserved_prior_recovery(self):
        """With huge noise, the posterior reverts to the prior mean."""
        sigma = _random_spd(5, 7)
        mu = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        post = MaskedPosterior(sigma, 1e12, np.array([0]))
        zhat = post.mean(mu, np.array([100.0]))
        np.testing.assert_allclose(zhat, mu, rtol=1e-3)

    def test_observed_loglik_matches_scipy(self):
        from scipy.stats import multivariate_normal
        sigma = _random_spd(7, 8)
        mu = np.linspace(0, 1, 7)
        obs_idx = np.array([1, 3, 6])
        y_obs = np.array([0.4, 0.9, 0.1])
        noise = 0.2
        post = MaskedPosterior(sigma, noise, obs_idx)
        expected = multivariate_normal(
            mean=mu[obs_idx],
            cov=sigma[np.ix_(obs_idx, obs_idx)] + noise * np.eye(3),
        ).logpdf(y_obs)
        assert post.observed_loglik(mu, y_obs) == pytest.approx(expected)

    def test_validation(self):
        sigma = _random_spd(4, 9)
        with pytest.raises(ValueError):
            MaskedPosterior(sigma, 0.0, np.array([0]))
        with pytest.raises(ValueError):
            MaskedPosterior(sigma, 1.0, np.array([], dtype=int))
        post = MaskedPosterior(sigma, 1.0, np.array([0, 1]))
        with pytest.raises(ValueError):
            post.mean(np.zeros(4), np.array([1.0]))
