"""Property tests for the parallel harness and the batched E-step.

These lock down the two claims the parallel/batched PR rests on:

* **Batching changes nothing** — the stacked mask-group E-step
  (`MaskedPosterior.means` / `logliks`, `EMEngine._dense_group_posterior`,
  the `PosteriorCache`) produces the same numbers as the one-application-
  at-a-time loops it replaced;
* **Scheduling changes nothing** — `ParallelRunner(workers=k)` returns
  results identical to the serial path for every k, chunking, and
  fallback mode, because each cell's seed is fixed in its payload.

Plus the optimizer invariants the golden fixtures rely on (hull vertices
are Pareto-optimal; the LP never loses to a single configuration) and
counter-based assertions that the batched E-step performs fewer
factorizations than one per application.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.em import EMConfig, EMEngine
from repro.core.linalg import MaskedPosterior, PosteriorCache, dense_posterior
from repro.core.observation import ObservationSet
from repro.experiments.parallel import ParallelRunner, cell_seed
from repro.obs import Observability, use
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.pareto import TradeoffFrontier, pareto_optimal_mask

# ----------------------------------------------------------------------
# Shared generators
# ----------------------------------------------------------------------


def _random_spd(rng, n):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _random_obs_set(rng, m, n, num_masks):
    """Observations where groups of applications share random masks."""
    values = rng.standard_normal((m, n))
    mask = np.zeros((m, n), dtype=bool)
    masks = []
    for _ in range(num_masks):
        k = int(rng.integers(1, n + 1))
        masks.append(np.sort(rng.choice(n, size=k, replace=False)))
    for i in range(m):
        mask[i, masks[i % num_masks]] = True
    return ObservationSet(values=values, mask=mask)


# ----------------------------------------------------------------------
# Batched-vs-loop equality
# ----------------------------------------------------------------------


class TestBatchedEStepEqualsLoop:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(2, 12), st.integers(2, 8), st.integers(0, 10_000))
    def test_means_match_per_row_mean(self, n, m, seed):
        """The stacked means() is the per-application mean(), row by row."""
        rng = np.random.default_rng(seed)
        sigma = _random_spd(rng, n)
        mu = rng.standard_normal(n)
        k = int(rng.integers(1, n + 1))
        obs_idx = np.sort(rng.choice(n, size=k, replace=False))
        y_rows = rng.standard_normal((m, k))

        post = MaskedPosterior(sigma, 0.3, obs_idx)
        stacked = post.means(mu, y_rows)
        for i in range(m):
            np.testing.assert_allclose(stacked[i], post.mean(mu, y_rows[i]),
                                       rtol=1e-12, atol=1e-12)

    @settings(deadline=None, max_examples=25)
    @given(st.integers(2, 12), st.integers(2, 8), st.integers(0, 10_000))
    def test_logliks_match_per_row_loglik(self, n, m, seed):
        rng = np.random.default_rng(seed)
        sigma = _random_spd(rng, n)
        mu = rng.standard_normal(n)
        k = int(rng.integers(1, n + 1))
        obs_idx = np.sort(rng.choice(n, size=k, replace=False))
        y_rows = rng.standard_normal((m, k))

        post = MaskedPosterior(sigma, 0.7, obs_idx)
        stacked = post.logliks(mu, y_rows)
        singles = [post.observed_loglik(mu, y_rows[i]) for i in range(m)]
        np.testing.assert_allclose(stacked, singles, rtol=1e-10, atol=1e-10)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(2, 10), st.integers(2, 8), st.integers(0, 10_000))
    def test_dense_group_posterior_matches_per_app(self, n, m, seed):
        """The stacked literal Eq. (3) equals dense_posterior per app."""
        rng = np.random.default_rng(seed)
        sigma = _random_spd(rng, n)
        mu = rng.standard_normal(n)
        k = int(rng.integers(1, n + 1))
        obs_idx = np.sort(rng.choice(n, size=k, replace=False))
        y_rows = rng.standard_normal((m, k))
        noise = 0.4

        sigma_inv = np.linalg.inv(sigma)
        cov, zhat_rows = EMEngine._dense_group_posterior(
            sigma_inv, noise, obs_idx, mu, y_rows, n)
        for i in range(m):
            z_i, cov_i = dense_posterior(sigma, noise, obs_idx, mu, y_rows[i])
            np.testing.assert_allclose(zhat_rows[i], z_i,
                                       rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(cov, cov_i, rtol=1e-8, atol=1e-10)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(3, 8), st.integers(4, 10), st.integers(1, 3),
           st.integers(0, 10_000))
    def test_woodbury_engine_matches_dense_engine(self, n, m, num_masks,
                                                  seed):
        """Both E-step formulations fit to the same posterior curves."""
        rng = np.random.default_rng(seed)
        obs = _random_obs_set(rng, m, n, num_masks)
        kwargs = dict(max_iterations=10, tol=1e-10)
        wood = EMEngine(config=EMConfig(use_woodbury=True, **kwargs)).fit(obs)
        dense = EMEngine(config=EMConfig(use_woodbury=False,
                                         **kwargs)).fit(obs)
        np.testing.assert_allclose(wood.zhat, dense.zhat,
                                   rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(wood.mu, dense.mu, rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(wood.loglik_history, dense.loglik_history,
                                   rtol=1e-6)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(3, 8), st.integers(4, 10), st.integers(1, 3),
           st.integers(0, 10_000))
    def test_posterior_cache_is_bit_transparent(self, n, m, num_masks, seed):
        """Caching factorizations never changes a single bit of the fit."""
        rng = np.random.default_rng(seed)
        obs = _random_obs_set(rng, m, n, num_masks)
        kwargs = dict(max_iterations=8, tol=1e-9)
        cached = EMEngine(config=EMConfig(cache_posteriors=True,
                                          **kwargs)).fit(obs)
        plain = EMEngine(config=EMConfig(cache_posteriors=False,
                                         **kwargs)).fit(obs)
        assert np.array_equal(cached.zhat, plain.zhat)
        assert np.array_equal(cached.zvar, plain.zvar)
        assert np.array_equal(cached.sigma_mat, plain.sigma_mat)
        assert cached.loglik_history == plain.loglik_history
        assert cached.iterations == plain.iterations

    def test_cache_exact_hit_returns_same_object(self):
        rng = np.random.default_rng(3)
        sigma = _random_spd(rng, 6)
        obs_idx = np.array([0, 2, 5])
        cache = PosteriorCache(maxsize=4)
        first = cache.get(sigma, 0.5, obs_idx)
        second = cache.get(sigma.copy(), 0.5, obs_idx.copy())
        assert second is first  # content-addressed, not identity-addressed
        assert cache.hits == 1 and cache.misses == 1
        # Any parameter change is a miss.
        assert cache.get(sigma, 0.25, obs_idx) is not first
        assert cache.get(sigma + 1e-14, 0.5, obs_idx) is not first

    def test_cache_tolerance_mode_reuses_near_sigma(self):
        rng = np.random.default_rng(4)
        sigma = _random_spd(rng, 6)
        obs_idx = np.array([1, 3])
        cache = PosteriorCache(maxsize=4, tol=1e-6)
        first = cache.get(sigma, 0.5, obs_idx)
        drifted = sigma + 1e-9 * np.abs(sigma).max()
        assert cache.get(drifted, 0.5, obs_idx) is first
        far = sigma + 1e-3 * np.abs(sigma).max()
        assert cache.get(far, 0.5, obs_idx) is not first


# ----------------------------------------------------------------------
# Factorization counters: the batched path does strictly less work
# ----------------------------------------------------------------------


class TestFactorizationCounters:
    def _fit_counting(self, obs, config):
        ob = Observability.recording()
        with use(ob):
            result = EMEngine(config=config).fit(obs)
        counters = ob.metrics.snapshot()["counters"]
        return result, counters

    def test_one_factorization_per_group_per_iteration(self):
        rng = np.random.default_rng(11)
        obs = _random_obs_set(rng, m=12, n=8, num_masks=3)
        groups = obs.mask_groups()
        assert len(groups) == 3 and obs.num_applications == 12

        result, counters = self._fit_counting(
            obs, EMConfig(max_iterations=6, tol=1e-12))
        factorizations = counters["linalg_posterior_factorizations_total"]
        # One per (mask group, iteration) — NOT one per application.
        assert factorizations == result.iterations * len(groups)
        assert factorizations < result.iterations * obs.num_applications

    def test_dense_ablation_also_factorizes_per_group(self):
        rng = np.random.default_rng(12)
        obs = _random_obs_set(rng, m=10, n=6, num_masks=2)
        result, counters = self._fit_counting(
            obs, EMConfig(max_iterations=5, tol=1e-12, use_woodbury=False))
        factorizations = counters["linalg_posterior_factorizations_total"]
        assert factorizations == result.iterations * len(obs.mask_groups())

    def test_repeated_fit_hits_the_cache(self):
        """Re-fitting identical data reuses every factorization."""
        rng = np.random.default_rng(13)
        obs = _random_obs_set(rng, m=8, n=6, num_masks=2)
        config = EMConfig(max_iterations=4, tol=1e-12)
        engine = EMEngine(config=config)

        ob = Observability.recording()
        with use(ob):
            first = engine.fit(obs)
            before = ob.metrics.snapshot()["counters"]
            second = engine.fit(obs)
            after = ob.metrics.snapshot()["counters"]

        new_factorizations = (
            after["linalg_posterior_factorizations_total"]
            - before["linalg_posterior_factorizations_total"])
        assert new_factorizations == 0
        assert after["linalg_posterior_cache_hits_total"] >= (
            first.iterations * len(obs.mask_groups()))
        assert np.array_equal(first.zhat, second.zhat)


# ----------------------------------------------------------------------
# ParallelRunner: worker count is invisible in the results
# ----------------------------------------------------------------------

# Tasks must be module-level so they pickle by name into workers.


def _draw_task(shared, cell):
    """A cell whose result depends only on its payload-carried seed."""
    label, seed = cell
    rng = np.random.default_rng(seed)
    return label, float(rng.standard_normal()), shared


def _square_task(shared, cell):
    return cell * cell + (shared or 0)


def _make_cells(base_seed, count):
    return [(f"cell-{i}", cell_seed(base_seed, "prop", i))
            for i in range(count)]


class TestParallelRunnerEquality:
    def test_serial_matches_process_for_any_worker_count(self):
        cells = _make_cells(0, 13)
        serial = ParallelRunner(workers=1).map(_draw_task, cells, shared=7)
        for k in (2, 3):
            runner = ParallelRunner(workers=k)
            parallel = runner.map(_draw_task, cells, shared=7)
            assert parallel == serial
            assert runner.last_backend in ("process", "serial")

    def test_chunk_size_does_not_change_results(self):
        cells = _make_cells(1, 9)
        serial = ParallelRunner(workers=1).map(_draw_task, cells)
        for chunk_size in (1, 2, 5, 100):
            runner = ParallelRunner(workers=2, chunk_size=chunk_size)
            assert runner.map(_draw_task, cells) == serial

    def test_results_keep_input_order(self):
        cells = list(range(20))
        out = ParallelRunner(workers=3).map(_square_task, cells, shared=1)
        assert out == [c * c + 1 for c in cells]

    def test_empty_cells(self):
        runner = ParallelRunner(workers=4)
        assert runner.map(_square_task, []) == []

    def test_unavailable_start_method_falls_back_to_serial(self):
        cells = _make_cells(2, 5)
        runner = ParallelRunner(workers=4, mp_context="no-such-method")
        out = runner.map(_draw_task, cells, shared=None)
        assert runner.last_backend == "serial"
        assert out == ParallelRunner(workers=1).map(_draw_task, cells,
                                                    shared=None)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)
        with pytest.raises(ValueError):
            ParallelRunner(workers=2, chunk_size=0)


class TestCellSeed:
    def test_stable_and_distinct(self):
        a = cell_seed(0, "kmeans", "leo", 3)
        assert a == cell_seed(0, "kmeans", "leo", 3)  # deterministic
        others = {cell_seed(0, "kmeans", "leo", t) for t in range(50)}
        assert len(others) == 50  # no collisions across trials
        assert cell_seed(1, "kmeans", "leo", 3) != a  # base seed matters

    def test_fits_numpy_seed_range(self):
        for i in range(100):
            s = cell_seed(i, "x")
            assert 0 <= s < 2 ** 63
            np.random.default_rng(s)  # must be accepted


# ----------------------------------------------------------------------
# Optimizer invariants the golden fixtures rely on
# ----------------------------------------------------------------------


class TestHullAndLPInvariants:
    @settings(deadline=None, max_examples=30)
    @given(st.integers(2, 40), st.integers(0, 10_000))
    def test_hull_vertices_are_pareto_optimal(self, n, seed):
        """Every hull vertex tied to a config is on the Pareto frontier."""
        rng = np.random.default_rng(seed)
        rates = rng.uniform(1.0, 100.0, n)
        powers = rng.uniform(50.0, 400.0, n)
        frontier = TradeoffFrontier(rates, powers, idle_power=25.0)
        mask = pareto_optimal_mask(rates, powers)
        for vertex in frontier.vertices:
            if vertex.config_index is not None:
                assert mask[vertex.config_index]

    @settings(deadline=None, max_examples=30)
    @given(st.integers(2, 30), st.integers(0, 10_000),
           st.floats(min_value=0.05, max_value=1.0))
    def test_lp_beats_every_single_config(self, n, seed, utilization):
        """The LP schedule never costs more than any one feasible config."""
        rng = np.random.default_rng(seed)
        rates = rng.uniform(1.0, 100.0, n)
        powers = rng.uniform(60.0, 400.0, n)
        idle = 40.0
        minimizer = EnergyMinimizer(rates, powers, idle)
        deadline = 10.0
        work = utilization * minimizer.max_rate * deadline
        best = minimizer.min_energy(work, deadline)
        for rate, power in zip(rates, powers):
            time_needed = work / rate
            if time_needed > deadline:
                continue  # this config alone cannot meet the deadline
            single = power * time_needed + idle * (deadline - time_needed)
            assert best <= single * (1 + 1e-9) + 1e-9
