"""Tests for repro.platform.machine."""

import numpy as np
import pytest

from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.suite import get_benchmark


class TestActuation:
    def test_requires_load_before_run(self, machine, cores_space):
        machine.apply(cores_space[0])
        with pytest.raises(RuntimeError):
            machine.run_for(1.0)

    def test_requires_apply_before_run(self, machine, kmeans):
        machine.load(kmeans)
        with pytest.raises(RuntimeError):
            machine.run_for(1.0)

    def test_apply_rejects_oversized(self, machine, kmeans):
        import dataclasses
        from repro.platform.config_space import Configuration
        from repro.platform.dvfs import speed_ladder
        big = Configuration(cores=17, threads=17, memory_controllers=1,
                            speed=speed_ladder()[0])
        with pytest.raises(ValueError):
            machine.apply(big)


class TestExecution:
    def test_run_advances_clock_and_energy(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[7])
        measurement = machine.run_for(2.0)
        assert machine.clock == pytest.approx(2.0)
        assert machine.total_energy == pytest.approx(measurement.energy)
        assert measurement.heartbeats == pytest.approx(
            measurement.rate * 2.0)

    def test_measurement_near_truth(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        config = cores_space[7]
        machine.apply(config)
        m = machine.run_for(1.0)
        assert m.rate == pytest.approx(machine.true_rate(kmeans, config),
                                       rel=0.1)
        assert m.system_power == pytest.approx(
            machine.true_power(kmeans, config), rel=0.1)

    def test_noise_is_seeded(self, kmeans, cores_space):
        def measure(seed):
            m = Machine(PAPER_TOPOLOGY, seed=seed)
            m.load(kmeans)
            m.apply(cores_space[3])
            return m.run_for(1.0).rate
        assert measure(5) == measure(5)
        assert measure(5) != measure(6)

    def test_longer_windows_less_noisy(self, kmeans, cores_space):
        truth = Machine(PAPER_TOPOLOGY).true_rate(kmeans, cores_space[3])
        def spread(window):
            errs = []
            for seed in range(30):
                m = Machine(PAPER_TOPOLOGY, seed=seed)
                m.load(kmeans)
                m.apply(cores_space[3])
                errs.append(abs(m.run_for(window).rate - truth) / truth)
            return np.mean(errs)
        assert spread(16.0) < spread(1.0)

    def test_rejects_nonpositive_duration(self, machine, kmeans, cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[0])
        with pytest.raises(ValueError):
            machine.run_for(0.0)

    def test_idle_charges_idle_power(self, machine):
        energy = machine.idle_for(10.0)
        assert energy == pytest.approx(10.0 * machine.idle_power())
        assert machine.clock == pytest.approx(10.0)

    def test_idle_rejects_negative(self, machine):
        with pytest.raises(ValueError):
            machine.idle_for(-1.0)


class TestSweep:
    def test_sweep_shapes(self, machine, kmeans, cores_space):
        rates, powers = machine.sweep(kmeans, cores_space, noisy=False)
        assert rates.shape == powers.shape == (len(cores_space),)

    def test_noise_free_sweep_equals_truth(self, machine, kmeans, cores_space):
        rates, powers = machine.sweep(kmeans, cores_space, noisy=False)
        for i, config in enumerate(cores_space):
            assert rates[i] == machine.true_rate(kmeans, config)
            assert powers[i] == machine.true_power(kmeans, config)

    def test_noisy_sweep_close_to_truth(self, machine, kmeans, cores_space):
        noisy, _ = machine.sweep(kmeans, cores_space, noisy=True)
        clean, _ = machine.sweep(kmeans, cores_space, noisy=False)
        rel = np.abs(noisy - clean) / clean
        assert rel.max() < 0.1

    def test_sweep_restores_running_state(self, machine, kmeans, swish,
                                          cores_space):
        machine.load(kmeans)
        machine.apply(cores_space[2])
        machine.sweep(swish, cores_space, noisy=False)
        assert machine.profile is kmeans
        assert machine.config is cores_space[2]
