"""Error-path tests for the runtime controller and facade."""

import numpy as np
import pytest

from repro.estimators.base import InsufficientSamplesError
from repro.estimators.online import OnlineEstimator
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.controller import RuntimeController
from repro.runtime.sampling import RandomSampler
from repro.workloads.suite import get_benchmark


class TestCalibrationErrors:
    def test_online_below_coefficients_raises_clearly(self, paper_space,
                                                      cores_dataset):
        """Calibrating the online estimator with too few samples fails
        loudly (the experiment harness catches this and scores 0; direct
        users get the explanatory error)."""
        # Use the paper space: 4 varying knobs -> 15 coefficients.
        machine = Machine(seed=51)
        controller = RuntimeController(
            machine=machine, space=paper_space, estimator=OnlineEstimator(),
            prior_rates=None, prior_powers=None,
            sampler=RandomSampler(seed=0), sample_count=10)
        with pytest.raises(InsufficientSamplesError, match="15"):
            controller.calibrate(get_benchmark("x264"))

    def test_leo_without_priors_raises(self, cores_space):
        from repro.estimators.leo import LEOEstimator
        machine = Machine(seed=52)
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=None, prior_powers=None, sample_count=6)
        with pytest.raises(ValueError, match="prior"):
            controller.calibrate(get_benchmark("kmeans"))

    def test_sampling_cost_charged_even_on_failure(self, paper_space):
        """The machine time spent sampling is real even if the fit
        fails afterwards."""
        machine = Machine(seed=53)
        controller = RuntimeController(
            machine=machine, space=paper_space, estimator=OnlineEstimator(),
            prior_rates=None, prior_powers=None,
            sampler=RandomSampler(seed=0), sample_count=10)
        with pytest.raises(InsufficientSamplesError):
            controller.calibrate(get_benchmark("x264"))
        assert machine.clock == pytest.approx(10.0)


class TestRunReportHonesty:
    def test_work_done_never_exceeds_possible(self, cores_space,
                                              cores_dataset):
        from repro.estimators.leo import LEOEstimator
        from repro.runtime.controller import TradeoffEstimate
        machine = Machine(seed=54)
        kmeans = get_benchmark("kmeans")
        view = cores_dataset.leave_one_out("kmeans")
        truth = np.array([machine.true_rate(kmeans, c)
                          for c in cores_space])
        powers = np.array([machine.true_power(kmeans, c)
                           for c in cores_space])
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        deadline = 20.0
        report = controller.run(
            kmeans, work=truth.max() * deadline * 2.0, deadline=deadline,
            estimate=TradeoffEstimate.from_truth(truth, powers))
        # Even flat out, no more than max-rate x deadline (+noise slack).
        assert report.work_done <= truth.max() * deadline * 1.05
        assert not report.met_target

    def test_energy_matches_machine_accounting(self, cores_space,
                                               cores_dataset):
        from repro.estimators.leo import LEOEstimator
        from repro.runtime.controller import TradeoffEstimate
        machine = Machine(seed=55)
        swish = get_benchmark("swish")
        view = cores_dataset.leave_one_out("swish")
        truth = np.array([machine.true_rate(swish, c)
                          for c in cores_space])
        powers = np.array([machine.true_power(swish, c)
                           for c in cores_space])
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        before = machine.total_energy
        report = controller.run(
            swish, work=0.3 * truth.max() * 20.0, deadline=20.0,
            estimate=TradeoffEstimate.from_truth(truth, powers))
        assert report.energy == pytest.approx(
            machine.total_energy - before)
        assert machine.clock == pytest.approx(20.0)
