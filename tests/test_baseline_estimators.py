"""Tests for the offline, online, and exhaustive estimators."""

import numpy as np
import pytest

from repro.estimators.base import EstimationProblem, InsufficientSamplesError
from repro.estimators.exhaustive import ExhaustiveOracle
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import (
    OnlineEstimator,
    design_matrix,
    monomial_exponents,
)


def _features(n=32, knobs=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(1, 16, (n, knobs))


class TestOfflineEstimator:
    def test_returns_prior_mean(self):
        prior = np.array([[1.0, 2.0], [3.0, 4.0]])
        problem = EstimationProblem(
            features=np.ones((2, 1)), prior=prior,
            observed_indices=np.array([0]), observed_values=np.array([9.0]))
        estimate = OfflineEstimator().estimate(problem)
        np.testing.assert_allclose(estimate, [2.0, 3.0])

    def test_ignores_observations(self):
        prior = np.ones((3, 4))
        base = dict(features=np.ones((4, 1)), prior=prior)
        a = EstimationProblem(observed_indices=np.array([0]),
                              observed_values=np.array([100.0]), **base)
        b = EstimationProblem(observed_indices=np.array([2]),
                              observed_values=np.array([-5.0]), **base)
        np.testing.assert_allclose(OfflineEstimator().estimate(a),
                                   OfflineEstimator().estimate(b))

    def test_requires_prior(self):
        problem = EstimationProblem(
            features=np.ones((2, 1)), prior=None,
            observed_indices=np.array([0]), observed_values=np.array([1.0]))
        with pytest.raises(ValueError):
            OfflineEstimator().estimate(problem)


class TestMonomialBasis:
    def test_quadratic_in_four_knobs_has_15_terms(self):
        """The Figure 12 threshold: 1 + 4 + 10 = 15 coefficients."""
        assert len(monomial_exponents(4, 2)) == 15

    def test_constant_first(self):
        exps = monomial_exponents(3, 2)
        assert exps[0] == (0, 0, 0)

    def test_counts_follow_stars_and_bars(self):
        # C(d + k, k) monomials of degree <= k in d variables.
        from math import comb
        for d, k in [(2, 2), (3, 3), (4, 2), (1, 5)]:
            assert len(monomial_exponents(d, k)) == comb(d + k, k)

    def test_design_matrix_shape(self):
        features = _features(n=10, knobs=3)
        design = design_matrix(features, 2)
        assert design.shape == (10, len(monomial_exponents(3, 2)))

    def test_design_matrix_constant_column(self):
        design = design_matrix(_features(n=5), 2)
        np.testing.assert_allclose(design[:, 0], 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            monomial_exponents(0, 2)
        with pytest.raises(ValueError):
            monomial_exponents(2, -1)


class TestOnlineEstimator:
    def test_recovers_exact_quadratic(self):
        """A quadratic ground truth is fit exactly from enough samples."""
        rng = np.random.default_rng(3)
        features = _features(n=40, knobs=2, seed=3)
        truth = (2.0 + 0.5 * features[:, 0] - 0.1 * features[:, 1]
                 + 0.03 * features[:, 0] * features[:, 1]
                 + 0.02 * features[:, 1] ** 2)
        idx = rng.choice(40, size=10, replace=False)
        problem = EstimationProblem(features=features, prior=None,
                                    observed_indices=np.sort(idx),
                                    observed_values=truth[np.sort(idx)])
        estimate = OnlineEstimator(degree=2).estimate(problem)
        np.testing.assert_allclose(estimate, truth, rtol=1e-6, atol=1e-8)

    def test_raises_below_coefficient_count(self):
        """Figure 12: rank-deficient below 15 samples on 4 knobs."""
        features = _features(n=32, knobs=4)
        problem = EstimationProblem(
            features=features, prior=None,
            observed_indices=np.arange(14),
            observed_values=np.ones(14))
        with pytest.raises(InsufficientSamplesError):
            OnlineEstimator(degree=2).estimate(problem)

    def test_exactly_15_samples_succeeds(self):
        features = _features(n=32, knobs=4)
        problem = EstimationProblem(
            features=features, prior=None,
            observed_indices=np.arange(15),
            observed_values=np.linspace(1, 2, 15))
        estimate = OnlineEstimator(degree=2).estimate(problem)
        assert estimate.shape == (32,)

    def test_constant_knobs_are_dropped(self):
        """Cores-only spaces have fixed speed/memory knobs (Section 2)."""
        n = 32
        cores = np.arange(1, n + 1, dtype=float)
        features = np.column_stack([
            cores, cores, np.full(n, 2.0), np.full(n, 14.0)])
        problem = EstimationProblem(
            features=features, prior=None,
            observed_indices=np.array([4, 9, 14, 19, 24, 29]),
            observed_values=np.array([5.0, 9.0, 12.0, 11.0, 9.0, 6.0]))
        estimate = OnlineEstimator(degree=2).estimate(problem)
        assert estimate.shape == (n,)

    def test_predictions_floored_positive(self):
        """Extrapolation must not produce negative rates."""
        n = 20
        features = np.column_stack([np.arange(1, n + 1, dtype=float)])
        downhill = np.linspace(10, 1, 6)
        problem = EstimationProblem(
            features=features, prior=None,
            observed_indices=np.arange(6),
            observed_values=downhill)
        estimate = OnlineEstimator(degree=2).estimate(problem)
        assert (estimate > 0).all()

    def test_ignores_prior_data(self):
        features = _features(n=20, knobs=2, seed=5)
        kwargs = dict(features=features,
                      observed_indices=np.arange(8),
                      observed_values=np.linspace(1, 3, 8))
        with_prior = EstimationProblem(prior=np.ones((3, 20)), **kwargs)
        without = EstimationProblem(prior=None, **kwargs)
        np.testing.assert_allclose(
            OnlineEstimator().estimate(with_prior),
            OnlineEstimator().estimate(without))

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineEstimator(degree=0)
        with pytest.raises(ValueError):
            OnlineEstimator(clip_floor=-1.0)


class TestExhaustiveOracle:
    def test_returns_truth(self):
        truth = np.array([1.0, 2.0, 3.0])
        problem = EstimationProblem(
            features=np.ones((3, 1)), prior=None,
            observed_indices=np.array([0]), observed_values=np.array([9.0]))
        np.testing.assert_allclose(
            ExhaustiveOracle(truth).estimate(problem), truth)

    def test_returns_copy(self):
        truth = np.array([1.0, 2.0])
        oracle = ExhaustiveOracle(truth)
        problem = EstimationProblem(
            features=np.ones((2, 1)), prior=None,
            observed_indices=np.array([0]), observed_values=np.array([1.0]))
        estimate = oracle.estimate(problem)
        estimate[0] = 99.0
        assert oracle.truth[0] == 1.0

    def test_size_mismatch_raises(self):
        oracle = ExhaustiveOracle(np.ones(5))
        problem = EstimationProblem(
            features=np.ones((3, 1)), prior=None,
            observed_indices=np.array([0]), observed_values=np.array([1.0]))
        with pytest.raises(ValueError):
            oracle.estimate(problem)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExhaustiveOracle(np.ones((2, 2)))
        with pytest.raises(ValueError):
            ExhaustiveOracle(np.array([np.inf]))
