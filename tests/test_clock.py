"""Tests for repro.clock: the protocol, the virtual clock, ambience.

The virtual clock is the soak harness's foundation: ``sleep`` must be
free, timers must fire in deterministic order, and explicit injection
must always beat the ambient default.
"""

import time

import pytest

from repro import clock as clockmod
from repro.clock import (
    WALL_CLOCK,
    Clock,
    VirtualClock,
    WallClock,
    get_clock,
    resolve,
    use,
)


class TestWallClock:
    def test_tracks_real_time(self):
        clk = WallClock()
        before = time.monotonic()
        now = clk.now()
        after = time.monotonic()
        assert before <= now <= after

    def test_epoch_time_tracks_time_time(self):
        assert abs(WallClock().time() - time.time()) < 5.0

    def test_not_virtual(self):
        assert WallClock().is_virtual is False

    def test_negative_sleep_is_a_noop(self):
        started = time.monotonic()
        WallClock().sleep(-10.0)
        assert time.monotonic() - started < 1.0


class TestVirtualClock:
    def test_starts_where_told(self):
        clk = VirtualClock(start=100.0, epoch=1.7e9)
        assert clk.now() == 100.0
        assert clk.time() == pytest.approx(1.7e9)

    def test_sleep_advances_instantly(self):
        clk = VirtualClock()
        started = time.monotonic()
        clk.sleep(86400.0)  # a simulated day
        assert clk.now() == 86400.0
        assert time.monotonic() - started < 1.0
        assert clk.sleep_count == 1

    def test_epoch_advances_in_lockstep(self):
        clk = VirtualClock(start=0.0, epoch=50.0)
        clk.advance(10.0)
        assert clk.time() == pytest.approx(60.0)

    def test_negative_sleep_clamps(self):
        clk = VirtualClock(start=5.0)
        clk.sleep(-3.0)
        assert clk.now() == 5.0

    def test_advance_to_never_goes_backwards(self):
        clk = VirtualClock(start=10.0)
        clk.advance_to(3.0)
        assert clk.now() == 10.0

    def test_timers_fire_in_deadline_order(self):
        clk = VirtualClock()
        fired = []
        clk.schedule(2.0, lambda: fired.append("b"))
        clk.schedule(1.0, lambda: fired.append("a"))
        clk.schedule(3.0, lambda: fired.append("c"))
        clk.advance(2.5)
        assert fired == ["a", "b"]
        assert clk.pending_timers == 1

    def test_simultaneous_timers_fire_in_scheduling_order(self):
        clk = VirtualClock()
        fired = []
        for tag in ("first", "second", "third"):
            clk.schedule(1.0, lambda t=tag: fired.append(t))
        clk.advance(1.0)
        assert fired == ["first", "second", "third"]

    def test_timer_observes_its_own_deadline(self):
        clk = VirtualClock()
        seen = []
        clk.schedule(4.0, lambda: seen.append(clk.now()))
        clk.advance(10.0)
        assert seen == [4.0]
        assert clk.now() == 10.0

    def test_cancelled_timer_never_fires(self):
        clk = VirtualClock()
        fired = []
        timer = clk.schedule(1.0, lambda: fired.append("x"))
        timer.cancel()
        clk.advance(5.0)
        assert fired == []
        assert clk.pending_timers == 0

    def test_next_deadline_and_run_until_idle(self):
        clk = VirtualClock()
        fired = []
        clk.schedule(5.0, lambda: fired.append(5))
        clk.schedule(9.0, lambda: fired.append(9))
        assert clk.next_deadline() == 5.0
        clk.run_until_idle(limit=6.0)
        assert fired == [5] and clk.now() == 5.0
        clk.run_until_idle()
        assert fired == [5, 9]
        assert clk.next_deadline() is None

    def test_timer_callback_may_reschedule(self):
        clk = VirtualClock()
        ticks = []

        def tick():
            ticks.append(clk.now())
            if len(ticks) < 3:
                clk.schedule(10.0, tick)

        clk.schedule(10.0, tick)
        clk.advance(100.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_two_identical_schedules_produce_identical_timelines(self):
        def timeline():
            clk = VirtualClock()
            fired = []
            clk.schedule(3.0, lambda: fired.append(("a", clk.now())))
            clk.schedule(3.0, lambda: fired.append(("b", clk.now())))
            clk.sleep(1.5)
            clk.advance(4.0)
            return fired, clk.now()

        assert timeline() == timeline()


class TestAmbience:
    def test_default_is_the_wall_clock(self):
        assert get_clock() is WALL_CLOCK

    def test_use_installs_and_restores(self):
        clk = VirtualClock()
        with use(clk) as installed:
            assert installed is clk
            assert get_clock() is clk
        assert get_clock() is WALL_CLOCK

    def test_use_none_is_a_passthrough(self):
        outer = VirtualClock()
        with use(outer):
            with use(None) as seen:
                assert seen is outer
                assert get_clock() is outer

    def test_resolve_prefers_explicit(self):
        explicit = VirtualClock()
        ambient = VirtualClock()
        with use(ambient):
            assert resolve(explicit) is explicit
            assert resolve(None) is ambient
        assert resolve(None) is WALL_CLOCK

    def test_nested_use_restores_in_order(self):
        a, b = VirtualClock(), VirtualClock()
        with use(a):
            with use(b):
                assert get_clock() is b
            assert get_clock() is a

    def test_protocol_base_raises(self):
        base = Clock()
        for method in (base.now, base.time):
            with pytest.raises(NotImplementedError):
                method()
        with pytest.raises(NotImplementedError):
            base.sleep(1.0)

    def test_package_root_reexports(self):
        import repro

        assert repro.VirtualClock is VirtualClock
        assert repro.get_clock is clockmod.get_clock
        with repro.use_clock(VirtualClock()) as clk:
            assert get_clock() is clk
