"""Unit tests for the degradation ladder and its circuit breaker."""

import numpy as np
import pytest

from repro.errors import InsufficientSamplesError
from repro.runtime.resilience import (
    PINNED_TIER,
    CircuitBreaker,
    DegradationLadder,
    Tier,
    pinned_curves,
)


def make_ladder(cooldown=3):
    tiers = [Tier("leo", object()), Tier("online", object()),
             Tier(PINNED_TIER, None)]
    return DegradationLadder(
        tiers, breaker=CircuitBreaker(cooldown_quanta=cooldown))


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_quanta=0)

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_cooldown_half_opens(self):
        breaker = CircuitBreaker(cooldown_quanta=3)
        breaker.record_failure()
        for _ in range(2):
            breaker.note_healthy()
            assert not breaker.allows_probe
        breaker.note_healthy()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allows_probe

    def test_fault_during_cooldown_restarts_it(self):
        breaker = CircuitBreaker(cooldown_quanta=2)
        breaker.record_failure()
        breaker.note_healthy()
        breaker.note_fault()
        assert breaker.healthy_quanta == 0
        breaker.note_healthy()
        assert breaker.state == CircuitBreaker.OPEN  # 1 of 2 again

    def test_fault_reopens_half_open(self):
        breaker = CircuitBreaker(cooldown_quanta=1)
        breaker.record_failure()
        breaker.note_healthy()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.note_fault()
        assert breaker.state == CircuitBreaker.OPEN

    def test_success_closes_and_forgets(self):
        breaker = CircuitBreaker(cooldown_quanta=1)
        breaker.record_failure()
        breaker.note_healthy()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0

    def test_healthy_quanta_only_cool_open_breakers(self):
        breaker = CircuitBreaker(cooldown_quanta=1)
        breaker.note_healthy()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_snapshot_round_trip(self):
        breaker = CircuitBreaker(cooldown_quanta=4)
        breaker.record_failure()
        breaker.note_healthy()
        clone = CircuitBreaker(cooldown_quanta=4)
        clone.restore(breaker.snapshot())
        assert clone.state == breaker.state
        assert clone.failures == breaker.failures
        assert clone.healthy_quanta == breaker.healthy_quanta


class TestDegradationLadder:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            DegradationLadder([])
        with pytest.raises(ValueError):
            DegradationLadder([Tier("leo", object())])  # last not pinned

    def test_starts_trusting_the_top(self):
        ladder = make_ladder()
        assert ladder.tier_index == 0
        assert not ladder.degraded
        assert ladder.current.name == "leo"
        assert [t.name for _, t in ladder.tiers_from_current()] == \
            ["leo", "online", PINNED_TIER]

    def test_demote_records_and_trips_breaker(self):
        ladder = make_ladder()
        ladder.demote_to(1, reason="ConvergenceError: injected")
        assert ladder.degraded
        assert ladder.current.name == "online"
        assert ladder.demotions == 1
        assert ladder.breaker.state == CircuitBreaker.OPEN
        assert [t.name for _, t in ladder.tiers_from_current()] == \
            ["online", PINNED_TIER]

    def test_demote_never_moves_up(self):
        ladder = make_ladder()
        ladder.demote_to(2, reason="x")
        ladder.demote_to(1, reason="y")
        assert ladder.tier_index == 2
        assert ladder.demotions == 1

    def test_promotion_cycle(self):
        ladder = make_ladder(cooldown=2)
        ladder.demote_to(1, reason="x")
        assert not ladder.promotion_ready
        ladder.note_healthy_quantum()
        ladder.note_healthy_quantum()
        assert ladder.promotion_ready
        ladder.record_promotion(0)
        assert not ladder.degraded
        assert ladder.promotions == 1
        assert ladder.breaker.state == CircuitBreaker.CLOSED

    def test_partial_promotion_rearms_breaker(self):
        # Climbing 2 -> 1 must not strand the ladder: the breaker
        # re-opens so tier 0 gets its own cooldown-then-probe cycle.
        ladder = make_ladder(cooldown=1)
        ladder.demote_to(2, reason="x")
        ladder.note_healthy_quantum()
        assert ladder.promotion_ready
        ladder.record_promotion(1)
        assert ladder.tier_index == 1
        assert ladder.breaker.state == CircuitBreaker.OPEN
        ladder.note_healthy_quantum()
        assert ladder.promotion_ready

    def test_failed_probe_restarts_cooldown(self):
        ladder = make_ladder(cooldown=1)
        ladder.demote_to(1, reason="x")
        ladder.note_healthy_quantum()
        assert ladder.promotion_ready
        ladder.record_failed_probe()
        assert not ladder.promotion_ready
        ladder.note_healthy_quantum()
        assert ladder.promotion_ready

    def test_healthy_quanta_ignored_until_degraded(self):
        ladder = make_ladder(cooldown=1)
        ladder.note_healthy_quantum()
        assert ladder.breaker.healthy_quanta == 0

    def test_snapshot_round_trip(self):
        ladder = make_ladder(cooldown=2)
        ladder.demote_to(1, reason="x")
        ladder.note_healthy_quantum()
        clone = make_ladder(cooldown=2)
        clone.restore(ladder.snapshot())
        assert clone.tier_index == 1
        assert clone.demotions == 1
        assert clone.breaker.snapshot() == ladder.breaker.snapshot()


class TestPinnedCurves:
    def test_pads_conservatively(self):
        indices = np.array([1, 3])
        rates = np.array([4.0, 8.0])
        powers = np.array([50.0, 90.0])
        rate_curve, power_curve = pinned_curves(5, indices, rates, powers)
        assert rate_curve[1] == 4.0 and rate_curve[3] == 8.0
        assert power_curve[1] == 50.0 and power_curve[3] == 90.0
        # Unmeasured configs: slowest measured rate, hungriest power.
        for i in (0, 2, 4):
            assert rate_curve[i] == 4.0
            assert power_curve[i] == 90.0

    def test_needs_at_least_one_sample(self):
        with pytest.raises(InsufficientSamplesError):
            pinned_curves(5, np.array([], dtype=int),
                          np.array([]), np.array([]))
