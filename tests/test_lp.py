"""Tests for repro.optimize.lp: the Eq. (1) energy minimizer."""

import numpy as np
import pytest

from repro.optimize.lp import EnergyMinimizer


@pytest.fixture()
def simple():
    """Three configs: slow/cheap, efficient, fast/hungry; idle at 50 W."""
    return EnergyMinimizer(rates=[1.0, 4.0, 5.0],
                           powers=[100.0, 160.0, 400.0],
                           idle_power=50.0)


class TestGeometry:
    def test_max_rate(self, simple):
        assert simple.max_rate == 5.0

    def test_work_for_utilization(self, simple):
        assert simple.work_for_utilization(0.5, 10.0) == pytest.approx(25.0)

    def test_work_for_utilization_validation(self, simple):
        with pytest.raises(ValueError):
            simple.work_for_utilization(0.0, 10.0)
        with pytest.raises(ValueError):
            simple.work_for_utilization(1.1, 10.0)
        with pytest.raises(ValueError):
            simple.work_for_utilization(0.5, 0.0)


class TestHullSolve:
    def test_schedule_meets_work_and_deadline(self, simple):
        schedule = simple.solve(work=20.0, deadline=10.0)
        assert schedule.work(simple.rates) == pytest.approx(20.0)
        assert schedule.total_time <= 10.0 + 1e-9

    def test_uses_at_most_two_configs(self, simple):
        schedule = simple.solve(work=20.0, deadline=10.0)
        assert len(schedule) <= 2

    def test_zero_work(self, simple):
        schedule = simple.solve(work=0.0, deadline=10.0)
        assert schedule.work(simple.rates) == 0.0

    def test_full_demand_uses_fastest(self, simple):
        schedule = simple.solve(work=50.0, deadline=10.0)
        indices = {slot.config_index for slot in schedule}
        assert indices == {2}

    def test_infeasible_demand_raises(self, simple):
        with pytest.raises(ValueError):
            simple.solve(work=51.0, deadline=10.0)

    def test_rejects_bad_inputs(self, simple):
        with pytest.raises(ValueError):
            simple.solve(work=-1.0, deadline=10.0)
        with pytest.raises(ValueError):
            simple.solve(work=1.0, deadline=0.0)

    def test_min_energy_includes_idle_window(self, simple):
        # Demand achievable by the efficient config in 5 of 10 seconds:
        # LP mixes idle (50 W) and config 1 (160 W at rate 4).
        energy = simple.min_energy(work=20.0, deadline=10.0)
        assert energy == pytest.approx(5 * 160.0 + 5 * 50.0)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            EnergyMinimizer([1.0], [10.0], 5.0, mode="bogus")


class TestActiveEnergyMode:
    def test_runs_most_efficient_alone_when_time_allows(self):
        minimizer = EnergyMinimizer([1.0, 4.0], [100.0, 160.0], 50.0,
                                    mode="active-energy")
        schedule = minimizer.solve(work=8.0, deadline=10.0)
        # Config 1 at 40 J/work beats config 0 at 100 J/work.
        assert [s.config_index for s in schedule] == [1]
        assert schedule.total_time == pytest.approx(2.0)

    def test_active_energy_excludes_idle(self):
        minimizer = EnergyMinimizer([1.0, 4.0], [100.0, 160.0], 50.0,
                                    mode="active-energy")
        energy = minimizer.min_energy(work=8.0, deadline=10.0)
        assert energy == pytest.approx(2.0 * 160.0)

    def test_time_constrained_mixes_on_hull(self):
        minimizer = EnergyMinimizer([1.0, 4.0], [100.0, 160.0], 50.0,
                                    mode="active-energy")
        schedule = minimizer.solve(work=40.0, deadline=10.0)
        assert schedule.work(minimizer.rates) == pytest.approx(40.0)


class TestSimplexCrossCheck:
    @pytest.mark.parametrize("seed", range(5))
    def test_hull_matches_simplex(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        rates = rng.uniform(1, 50, n)
        powers = 80 + 2.5 * rates + rng.uniform(0, 50, n)
        idle = 60.0
        minimizer = EnergyMinimizer(rates, powers, idle)
        deadline = 10.0
        for utilization in (0.2, 0.5, 0.9):
            work = utilization * minimizer.max_rate * deadline
            hull_energy = minimizer.min_energy(work, deadline)
            _, solution = minimizer.solve_simplex(work, deadline)
            assert hull_energy == pytest.approx(solution.objective,
                                                rel=1e-6)

    def test_simplex_schedule_is_feasible(self, simple):
        schedule, _ = simple.solve_simplex(work=20.0, deadline=10.0)
        assert schedule.work(simple.rates) == pytest.approx(20.0)
        assert schedule.total_time == pytest.approx(10.0)

    def test_active_mode_simplex_matches(self):
        minimizer = EnergyMinimizer([1.0, 4.0], [100.0, 160.0], 50.0,
                                    mode="active-energy")
        schedule, solution = minimizer.solve_simplex(8.0, 10.0)
        direct = minimizer.min_energy(8.0, 10.0)
        assert solution.objective == pytest.approx(direct, rel=1e-9)


class TestRaceToIdle:
    def test_race_schedule_shape(self, simple):
        schedule = simple.race_to_idle(work=25.0, deadline=10.0)
        assert [s.config_index for s in schedule] == [2, None]
        assert schedule.total_time == pytest.approx(10.0)

    def test_race_energy_at_least_optimal(self, simple):
        work, deadline = 20.0, 10.0
        race = simple.race_to_idle(work, deadline)
        race_energy = race.energy(simple.powers, simple.idle_power)
        assert race_energy >= simple.min_energy(work, deadline) - 1e-9

    def test_race_infeasible_raises(self, simple):
        with pytest.raises(ValueError):
            simple.race_to_idle(work=60.0, deadline=10.0)

    def test_race_with_explicit_config(self, simple):
        schedule = simple.race_to_idle(work=5.0, deadline=10.0,
                                       race_config=1)
        assert schedule.slots[0].config_index == 1


class TestInfeasibleConstraintError:
    def test_typed_error_with_capacity_attached(self, simple):
        from repro.optimize.lp import InfeasibleConstraintError
        with pytest.raises(InfeasibleConstraintError) as excinfo:
            simple.solve(work=51.0, deadline=10.0)
        assert excinfo.value.max_rate == pytest.approx(5.0)
        assert excinfo.value.required == pytest.approx(5.1)

    def test_subclasses_value_error(self):
        from repro.optimize.lp import InfeasibleConstraintError
        assert issubclass(InfeasibleConstraintError, ValueError)

    def test_exported_from_package(self):
        from repro.optimize import InfeasibleConstraintError
        assert InfeasibleConstraintError is not None

    def test_min_energy_propagates_typed_error(self, simple):
        from repro.optimize.lp import InfeasibleConstraintError
        with pytest.raises(InfeasibleConstraintError):
            simple.min_energy(work=60.0, deadline=10.0)
