"""Tests for repro.service.registry (the versioned model registry)."""

import json
import threading

import numpy as np
import pytest

from repro.runtime.controller import TradeoffEstimate
from repro.service.registry import (
    REGISTRY_SCHEMA_VERSION,
    ModelRegistry,
    PriorPool,
)


def _estimate(n=8, fill=1.0, name="leo"):
    return TradeoffEstimate(rates=np.full(n, fill),
                            powers=np.full(n, fill * 10.0),
                            estimator_name=name,
                            sampling_time=3.0, sampling_energy=500.0)


class TestPublishAndRead:
    def test_publish_allocates_versions(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        first = reg.publish("kmeans", _estimate(fill=1.0))
        second = reg.publish("kmeans", _estimate(fill=2.0))
        assert (first.version, second.version) == (1, 2)
        assert reg.versions("kmeans", 8, "leo") == [1, 2]

    def test_latest_returns_newest(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate(fill=1.0))
        reg.publish("kmeans", _estimate(fill=2.0))
        latest = reg.latest("kmeans", 8, "leo")
        assert latest.version == 2
        np.testing.assert_array_equal(latest.rates, np.full(8, 2.0))

    def test_history_oldest_first(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        for fill in (1.0, 2.0, 3.0):
            reg.publish("kmeans", _estimate(fill=fill))
        history = reg.history("kmeans", 8, "leo")
        assert [r.version for r in history] == [1, 2, 3]
        assert [r.rates[0] for r in history] == [1.0, 2.0, 3.0]

    def test_keys_are_independent(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate(n=8))
        reg.publish("kmeans", _estimate(n=16))
        reg.publish("swish", _estimate(n=8, name="online"))
        assert reg.latest("kmeans", 8, "leo").version == 1
        assert reg.latest("kmeans", 16, "leo").version == 1
        assert reg.latest("swish", 8, "online").version == 1
        assert reg.latest("swish", 8, "leo") is None

    def test_metadata_and_provenance_roundtrip(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        record = reg.publish("kmeans", _estimate(),
                             metadata={"note": "trial", "seed": 4})
        back = reg.latest("kmeans", 8, "leo")
        assert back.metadata["note"] == "trial"
        assert back.metadata["seed"] == 4
        # Estimate provenance defaults in unless explicitly overridden.
        assert back.metadata["sampling_time"] == 3.0
        assert record.created_unix > 0

    def test_to_estimate(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate(fill=4.0))
        estimate = reg.latest("kmeans", 8, "leo").to_estimate()
        assert isinstance(estimate, TradeoffEstimate)
        assert estimate.estimator_name == "leo"
        assert estimate.sampling_time == 3.0
        np.testing.assert_array_equal(estimate.rates, np.full(8, 4.0))

    def test_known_models_summary(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate())
        reg.publish("kmeans", _estimate())
        reg.publish("swish", _estimate(name="online"))
        rows = {(r["app"], r["estimator"]): r for r in reg.known_models()}
        assert rows[("kmeans", "leo")]["versions"] == 2
        assert rows[("kmeans", "leo")]["latest_version"] == 2
        assert rows[("swish", "online")]["versions"] == 1

    def test_mismatched_curves_rejected(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        bad = TradeoffEstimate(rates=np.ones(4), powers=np.ones(5),
                               estimator_name="leo")
        with pytest.raises(ValueError):
            reg.publish("kmeans", bad)


class TestWarmStart:
    def test_warm_estimate_after_publish(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        assert reg.warm_estimate("kmeans", 8, "leo") is None
        reg.publish("kmeans", _estimate(fill=5.0))
        warm = reg.warm_estimate("kmeans", 8, "leo")
        np.testing.assert_array_equal(warm.rates, np.full(8, 5.0))

    def test_warm_falls_back_to_history_when_store_damaged(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate(fill=5.0))
        # Wreck the write-through npz; the version history still serves.
        store_path = reg.store._path("kmeans", 8, "leo")
        store_path.write_bytes(b"garbage")
        warm = reg.warm_estimate("kmeans", 8, "leo")
        assert warm is not None
        np.testing.assert_array_equal(warm.rates, np.full(8, 5.0))


class TestTolerantReads:
    def test_corrupt_version_skipped_for_older_valid(self, tmp_path, caplog):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate(fill=1.0))
        record = reg.publish("kmeans", _estimate(fill=2.0))
        path = (reg._model_dir("kmeans", 8, "leo")
                / f"v{record.version:06d}.json")
        path.write_text("{broken json")
        with caplog.at_level("WARNING"):
            latest = reg.latest("kmeans", 8, "leo")
        assert latest.version == 1
        assert "skipping" in caplog.text

    def test_future_schema_version_skipped(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish("kmeans", _estimate(fill=1.0))
        record = reg.publish("kmeans", _estimate(fill=2.0))
        path = (reg._model_dir("kmeans", 8, "leo")
                / f"v{record.version:06d}.json")
        payload = json.loads(path.read_text())
        payload["schema_version"] = REGISTRY_SCHEMA_VERSION + 5
        path.write_text(json.dumps(payload))
        assert reg.latest("kmeans", 8, "leo").version == 1
        assert len(reg.history("kmeans", 8, "leo")) == 1

    def test_all_versions_unreadable_returns_none(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        record = reg.publish("kmeans", _estimate())
        path = (reg._model_dir("kmeans", 8, "leo")
                / f"v{record.version:06d}.json")
        path.write_text("nope")
        assert reg.latest("kmeans", 8, "leo") is None


class TestConcurrentPublishers:
    def test_racing_publishers_get_distinct_versions(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        results, errors = [], []
        barrier = threading.Barrier(4)

        def publish(fill):
            try:
                barrier.wait(5.0)
                for _ in range(5):
                    results.append(
                        reg.publish("racy", _estimate(fill=fill)).version)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=publish, args=(float(i),))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors, errors
        # Every publish landed, nobody clobbered anybody.
        assert sorted(results) == list(range(1, 21))
        assert reg.versions("racy", 8, "leo") == list(range(1, 21))
        assert len(reg.history("racy", 8, "leo")) == 20

    def test_no_tmp_files_leak(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        for _ in range(3):
            reg.publish("kmeans", _estimate())
        leftovers = [p for p in reg._model_dir("kmeans", 8, "leo").iterdir()
                     if p.name.startswith(".")]
        assert leftovers == []


class TestPriorPools:
    def test_publish_and_load(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        rates = np.arange(12.0).reshape(3, 4) + 1.0
        powers = rates * 10.0
        pool = reg.publish_prior_pool("cores", ["a", "b", "c"],
                                      rates, powers)
        assert isinstance(pool, PriorPool)
        assert pool.version == 1
        back = reg.latest_prior_pool("cores")
        assert back.names == ("a", "b", "c")
        np.testing.assert_array_equal(back.rates, rates)
        np.testing.assert_array_equal(back.powers, powers)

    def test_versions_advance(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        table = np.ones((2, 4))
        reg.publish_prior_pool("cores", ["a", "b"], table, table)
        pool = reg.publish_prior_pool("cores", ["a", "b"],
                                      table * 2, table * 2)
        assert pool.version == 2
        assert reg.latest_prior_pool("cores").version == 2

    def test_missing_pool_returns_none(self, tmp_path):
        assert ModelRegistry(tmp_path).latest_prior_pool("nope") is None

    def test_shape_validation(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(ValueError, match="2-D"):
            reg.publish_prior_pool("cores", ["a"], np.ones(4), np.ones(4))
        with pytest.raises(ValueError, match="names"):
            reg.publish_prior_pool("cores", ["a"], np.ones((2, 4)),
                                   np.ones((2, 4)))
