"""Failure-injection tests: degraded inputs must degrade gracefully.

The runtime lives on noisy measurements and imperfect models; these
tests verify that pathological-but-possible conditions (extreme noise,
wildly wrong estimates, degenerate priors, minimal observations) produce
bounded, honest behaviour rather than crashes or silent nonsense.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.accuracy import accuracy
from repro.core.em import EMConfig, EMEngine
from repro.core.observation import ObservationSet
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.optimize.pareto import TradeoffFrontier
from repro.platform.machine import Machine
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.workloads.suite import get_benchmark


class TestExtremeNoise:
    def test_leo_survives_very_noisy_target(self, cores_dataset,
                                            cores_truth, cores_space):
        """50% relative noise on the samples: accuracy drops but the
        pipeline completes and output stays positive and finite."""
        rng = np.random.default_rng(0)
        view = cores_dataset.leave_one_out("kmeans")
        truth = cores_truth.leave_one_out("kmeans").true_rates
        indices = np.array([2, 8, 14, 20, 26, 31])
        noisy = truth[indices] * rng.normal(1.0, 0.5, indices.size)
        noisy = np.abs(noisy) + 1.0
        problem = EstimationProblem(
            features=cores_space.feature_matrix(), prior=view.prior_rates,
            observed_indices=indices, observed_values=noisy)
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        assert np.all(np.isfinite(estimate))
        assert 0.0 <= accuracy(estimate, truth) <= 1.0

    def test_noisy_machine_measurements_stay_positive(self, cores_space):
        noisy_app = dataclasses.replace(get_benchmark("kmeans"), noise=0.5)
        machine = Machine(seed=13)
        machine.load(noisy_app)
        machine.apply(cores_space[5])
        for _ in range(50):
            measurement = machine.run_for(1.0)
            assert measurement.rate >= 0.0
            assert measurement.system_power >= 0.0


class TestWrongEstimates:
    def test_controller_honest_about_impossible_demand(self, cores_space,
                                                       cores_dataset):
        """Demand above true capacity: controller reports the miss."""
        machine = Machine(seed=14)
        kmeans = get_benchmark("kmeans")
        view = cores_dataset.leave_one_out("kmeans")
        truth_max = max(machine.true_rate(kmeans, c) for c in cores_space)
        rates = np.full(len(cores_space), truth_max * 10)  # delusional
        powers = np.full(len(cores_space), 150.0)
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        work = truth_max * 3.0 * 20.0  # 3x capacity
        report = controller.run(
            kmeans, work, 20.0,
            TradeoffEstimate(rates=rates, powers=powers,
                             estimator_name="delusional"))
        assert not report.met_target
        assert report.work_done < work
        assert report.energy > 0

    def test_underestimates_still_meet_demand(self, cores_space,
                                              cores_dataset):
        """Pessimistic rates: feedback discovers the machine is faster."""
        machine = Machine(seed=15)
        swish = get_benchmark("swish")
        view = cores_dataset.leave_one_out("swish")
        truth = np.array([machine.true_rate(swish, c) for c in cores_space])
        powers = np.array([machine.true_power(swish, c)
                           for c in cores_space])
        pessimistic = TradeoffEstimate(rates=truth * 0.3, powers=powers,
                                       estimator_name="pessimist")
        controller = RuntimeController(
            machine=machine, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        work = 0.25 * truth.max() * 40.0  # feasible even at 0.3x belief
        report = controller.run(swish, work, 40.0, pessimistic)
        assert report.met_target


class TestDegenerateInputs:
    def test_constant_prior_rows(self, cores_space):
        """Zero-variance prior table: standardization must not divide
        by zero."""
        prior = np.full((5, len(cores_space)), 100.0)
        indices = np.array([0, 10, 20])
        problem = EstimationProblem(
            features=cores_space.feature_matrix(), prior=prior,
            observed_indices=indices,
            observed_values=np.array([90.0, 110.0, 95.0]))
        estimate = LEOEstimator().estimate(problem)
        assert np.all(np.isfinite(estimate))

    def test_single_observation_target(self, cores_dataset, cores_space):
        view = cores_dataset.leave_one_out("x264")
        problem = EstimationProblem(
            features=cores_space.feature_matrix(), prior=view.prior_rates,
            observed_indices=np.array([16]),
            observed_values=np.array([view.true_rates[16]]))
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        assert np.all(np.isfinite(estimate))
        assert np.all(estimate > 0)

    def test_em_single_application(self):
        """M = 1 (target only, no priors): EM still runs."""
        rng = np.random.default_rng(3)
        values = np.abs(rng.normal(5, 1, (1, 10))) + 1
        mask = np.zeros((1, 10), dtype=bool)
        mask[0, [1, 4, 8]] = True
        obs = ObservationSet(np.where(mask, values, 0.0), mask)
        result = EMEngine(config=EMConfig(max_iterations=5)).fit(obs)
        assert np.all(np.isfinite(result.zhat))

    def test_frontier_single_config(self):
        frontier = TradeoffFrontier([5.0], [120.0], idle_power=80.0)
        assert frontier.max_rate == 5.0
        assert frontier.power_at(2.5) == pytest.approx(100.0)

    def test_accuracy_with_tiny_truth_variance(self):
        y = np.array([100.0, 100.0 + 1e-12])
        assert 0.0 <= accuracy(y * 1.001, y) <= 1.0


class TestClockAndEnergyInvariants:
    def test_machine_clock_never_regresses(self, cores_space):
        machine = Machine(seed=16)
        machine.load(get_benchmark("bfs"))
        last = 0.0
        for i in range(20):
            machine.apply(cores_space[i % len(cores_space)])
            machine.run_for(0.5)
            assert machine.clock >= last
            last = machine.clock

    def test_energy_monotone_nondecreasing(self, cores_space):
        machine = Machine(seed=17)
        machine.load(get_benchmark("bfs"))
        machine.apply(cores_space[3])
        last = 0.0
        for _ in range(10):
            machine.run_for(1.0)
            assert machine.total_energy >= last
            last = machine.total_energy
        machine.idle_for(5.0)
        assert machine.total_energy >= last
