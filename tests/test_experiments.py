"""Tests for the per-figure experiment modules (small-scale runs).

These verify the *structure* each paper figure depends on; the full-size
reproductions live under benchmarks/.  All tests here run on the 32-config
cores-only context or a small benchmark subset to stay fast.
"""

import numpy as np
import pytest

from repro.experiments.dynamic import dynamic_experiment, table1_rows
from repro.experiments.energy import (
    energy_experiment,
    overall_normalized,
    summarize_normalized,
)
from repro.experiments.estimation import accuracy_experiment, example_curves
from repro.experiments.frontier import frontier_experiment, frontier_summary
from repro.experiments.harness import default_context
from repro.experiments.motivation import motivation_experiment
from repro.experiments.overhead import overhead_experiment
from repro.experiments.sensitivity import sensitivity_experiment


@pytest.fixture(scope="module")
def cores_ctx():
    return default_context(space_kind="cores", seed=0)


class TestMotivation:
    def test_figure1_structure(self, cores_ctx):
        result = motivation_experiment(cores_ctx, num_utilizations=5)
        assert result.true_peak() == 8
        # LEO lands near the true peak; offline follows the global trend
        # toward high allocations.
        assert abs(result.estimated_peak("leo") - 8) <= 3
        assert result.estimated_peak("offline") > 12
        assert set(result.energy) >= {"leo", "online", "offline",
                                      "optimal", "race-to-idle"}

    def test_leo_energy_beats_race(self, cores_ctx):
        result = motivation_experiment(cores_ctx, num_utilizations=5)
        assert (np.mean(result.energy["leo"])
                < np.mean(result.energy["race-to-idle"]))


class TestEstimation:
    def test_accuracy_tables(self, cores_ctx):
        result = accuracy_experiment(cores_ctx, sample_count=8, trials=1,
                                     benchmarks=["kmeans", "swish", "x264"])
        assert set(result.perf) == {"kmeans", "swish", "x264"}
        for scores in result.perf.values():
            for value in scores.values():
                assert 0.0 <= value <= 1.0
        means = result.mean_perf()
        assert means["leo"] > means["offline"]

    def test_example_curves(self, cores_ctx):
        results = example_curves(cores_ctx, benchmarks=("kmeans",),
                                 sample_count=8)
        curves = results[0]
        assert curves.true_rates.shape == (32,)
        assert curves.estimates["leo"].feasible
        assert abs(curves.peak_rate_config("leo")
                   - int(np.argmax(curves.true_rates))) <= 3


class TestEnergy:
    def test_energy_curves(self, cores_ctx):
        curves = energy_experiment(cores_ctx, benchmarks=["kmeans"],
                                   num_utilizations=4)
        curve = curves[0]
        assert len(curve.energy["optimal"]) == 4
        # Optimal energy grows with utilization.
        assert curve.energy["optimal"][-1] > curve.energy["optimal"][0]
        # Every approach uses at least the optimal energy (after the
        # work-completion adjustment).
        for approach in ("leo", "online", "offline", "race-to-idle"):
            assert curve.normalized_mean(approach) > 0.9

    def test_summaries(self, cores_ctx):
        curves = energy_experiment(cores_ctx,
                                   benchmarks=["kmeans", "swish"],
                                   num_utilizations=3)
        table = summarize_normalized(curves)
        assert set(table) == {"kmeans", "swish"}
        overall = overall_normalized(curves)
        assert overall["leo"] < overall["race-to-idle"]

    def test_validation(self, cores_ctx):
        with pytest.raises(ValueError):
            energy_experiment(cores_ctx, benchmarks=["kmeans"],
                              num_utilizations=1)


class TestFrontier:
    def test_figure9_structure(self, cores_ctx):
        comparisons = frontier_experiment(cores_ctx,
                                          benchmarks=("kmeans", "swish"),
                                          sample_count=8)
        assert len(comparisons) == 2
        hulls = comparisons[0].hulls
        assert "true" in hulls and "leo" in hulls
        # Hull arrays are (k, 2) with increasing speedup.
        for hull in hulls.values():
            assert hull.ndim == 2 and hull.shape[1] == 2
            assert (np.diff(hull[:, 0]) > 0).all()

    def test_leo_hull_closest_to_truth(self, cores_ctx):
        comparisons = frontier_experiment(cores_ctx, benchmarks=("kmeans",),
                                          sample_count=8)
        gaps = frontier_summary(comparisons)["kmeans"]
        assert gaps["leo"] <= gaps["offline"]


class TestSensitivity:
    def test_figure12_structure(self, cores_ctx):
        result = sensitivity_experiment(
            cores_ctx, sizes=(0, 4, 8), benchmarks=["kmeans", "swish"])
        assert result.sizes == (0, 4, 8)
        # Zero samples: LEO == offline, online == 0.
        assert result.perf["leo"][0] == pytest.approx(result.offline_perf)
        assert result.perf["online"][0] == 0.0
        # LEO improves (or holds) as samples grow.
        assert result.perf["leo"][-1] >= result.perf["leo"][0] - 0.05

    def test_online_cliff_on_paper_space(self):
        ctx = default_context(space_kind="paper", seed=0)
        result = sensitivity_experiment(ctx, sizes=(10, 20),
                                        benchmarks=["x264"])
        # Below 15 samples the online design matrix is rank deficient.
        assert result.perf["online"][0] == 0.0
        assert result.perf["online"][1] > 0.0

    def test_rejects_negative_sizes(self, cores_ctx):
        with pytest.raises(ValueError):
            sensitivity_experiment(cores_ctx, sizes=(-1,),
                                   benchmarks=["kmeans"])


class TestDynamic:
    def test_table1_structure(self, cores_ctx):
        result = dynamic_experiment(cores_ctx, phase_seconds=20.0)
        rows = table1_rows(result)
        assert [row[0] for row in rows] == ["LEO", "Online", "Offline"]
        # Relative energies are near-but-above 1 for LEO.
        leo = result.relative["leo"]
        assert 0.9 < leo[2] < 1.3
        # Overall is between the two phases (it is a weighted mean).
        for rel in result.relative.values():
            assert min(rel[0], rel[1]) - 1e-9 <= rel[2] <= max(rel[0],
                                                               rel[1]) + 1e-9

    def test_leo_adapts(self, cores_ctx):
        result = dynamic_experiment(cores_ctx, phase_seconds=20.0)
        assert result.reestimations("leo") >= 1

    def test_validation(self, cores_ctx):
        with pytest.raises(ValueError):
            dynamic_experiment(cores_ctx, utilization=0.0)
        with pytest.raises(ValueError):
            dynamic_experiment(cores_ctx, phase_seconds=-1.0)


class TestOverhead:
    def test_measures_costs(self, cores_ctx):
        result = overhead_experiment(cores_ctx, benchmarks=["kmeans"],
                                     sample_count=6)
        assert result.mean_fit_seconds > 0
        assert result.sampling_time["kmeans"] == pytest.approx(6.0)
        assert result.mean_sampling_energy > 0
        assert result.exhaustive_seconds > 0
