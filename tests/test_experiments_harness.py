"""Tests for repro.experiments.harness."""

import numpy as np
import pytest

from repro.experiments import harness
from repro.experiments.harness import (
    CurveEstimate,
    accuracy_scores,
    bench_scale,
    default_context,
    estimate_curves,
    format_table,
    random_indices,
    sample_target,
    scaled,
    summarize_means,
)


@pytest.fixture(scope="module")
def cores_ctx():
    return default_context(space_kind="cores", seed=0)


class TestContext:
    def test_cached(self):
        assert default_context("cores", 0) is default_context("cores", 0)

    def test_rejects_unknown_space(self):
        with pytest.raises(ValueError):
            default_context(space_kind="galaxy")

    def test_shapes(self, cores_ctx):
        assert len(cores_ctx.space) == 32
        assert len(cores_ctx.suite) == 25
        assert cores_ctx.dataset.rates.shape == (25, 32)
        assert cores_ctx.truth.rates.shape == (25, 32)

    def test_truth_is_noise_free(self, cores_ctx):
        machine = cores_ctx.machine()
        kmeans = cores_ctx.profile("kmeans")
        truth, _ = cores_ctx.truth.row("kmeans")
        expected = [machine.true_rate(kmeans, c) for c in cores_ctx.space]
        np.testing.assert_allclose(truth, expected)

    def test_profile_lookup(self, cores_ctx):
        assert cores_ctx.profile("swish").name == "swish"
        with pytest.raises(KeyError):
            cores_ctx.profile("nope")

    def test_machines_are_seed_derived(self, cores_ctx):
        a = cores_ctx.machine(1)
        b = cores_ctx.machine(1)
        a.load(cores_ctx.profile("kmeans"))
        b.load(cores_ctx.profile("kmeans"))
        a.apply(cores_ctx.space[0])
        b.apply(cores_ctx.space[0])
        assert a.run_for(1.0).rate == b.run_for(1.0).rate


class TestSamplingAndEstimation:
    def test_sample_target_close_to_truth(self, cores_ctx):
        indices = np.array([0, 7, 15, 31])
        rates, powers = sample_target(cores_ctx, cores_ctx.profile("swish"),
                                      indices)
        truth = cores_ctx.truth.leave_one_out("swish")
        np.testing.assert_allclose(rates, truth.true_rates[indices],
                                   rtol=0.1)
        np.testing.assert_allclose(powers, truth.true_powers[indices],
                                   rtol=0.1)

    def test_estimate_curves_all_approaches(self, cores_ctx):
        view = cores_ctx.dataset.leave_one_out("kmeans")
        indices = random_indices(32, 8, seed=1)
        rates, powers = sample_target(cores_ctx, cores_ctx.profile("kmeans"),
                                      indices)
        for approach in ("leo", "offline", "online"):
            estimate = estimate_curves(cores_ctx, view, indices, rates,
                                       powers, approach)
            assert estimate.feasible, approach
            assert (estimate.rates > 0).all()

    def test_insufficient_samples_marked_infeasible(self):
        ctx = default_context(space_kind="paper", seed=0)
        view = ctx.dataset.leave_one_out("kmeans")
        indices = random_indices(1024, 5, seed=2)
        rates, powers = sample_target(ctx, ctx.profile("kmeans"), indices)
        estimate = estimate_curves(ctx, view, indices, rates, powers,
                                   "online")
        assert not estimate.feasible
        truth = ctx.truth.leave_one_out("kmeans")
        assert accuracy_scores(estimate, truth) == (0.0, 0.0)

    def test_random_indices_deterministic(self):
        np.testing.assert_array_equal(random_indices(100, 10, 5),
                                      random_indices(100, 10, 5))


class TestScaleKnob:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert scaled(10) == 10

    def test_scale_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert scaled(10) == 5
        assert scaled(1) == 1  # floored at minimum

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "fast")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [["leo", 0.97], ["online", 0.87]],
                            title="Accuracy")
        lines = text.splitlines()
        assert lines[0] == "Accuracy"
        assert "leo" in lines[3] and "0.970" in lines[3]

    def test_summarize_means(self):
        table = {"a": {"leo": 1.0, "online": 0.5},
                 "b": {"leo": 0.8, "online": 0.7}}
        means = summarize_means(table, ["leo", "online"])
        assert means["leo"] == pytest.approx(0.9)
        assert means["online"] == pytest.approx(0.6)

    def test_curve_estimate_feasibility(self):
        assert not CurveEstimate("x", None, None).feasible
        assert CurveEstimate("x", np.ones(2), np.ones(2)).feasible
