"""Tests for repro.platform.performance_model."""

import numpy as np
import pytest

from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.dvfs import speed_ladder
from repro.platform.performance_model import (
    PerformanceModel,
    contention_penalty,
    memory_speedup,
    thread_speedup,
)
from repro.workloads.profile import ApplicationProfile
from repro.workloads.suite import get_benchmark


def _profile(**overrides):
    base = dict(name="t", base_rate=100.0, serial_fraction=0.05,
                scaling_peak=32, contention_slope=0.0,
                memory_intensity=0.2, io_intensity=0.0, ht_efficiency=0.5,
                memory_parallelism=8, activity_factor=0.8, noise=0.0)
    base.update(overrides)
    return ApplicationProfile(**base)


def _config(cores=1, threads=None, mem=1, speed_idx=14):
    return Configuration(cores=cores,
                         threads=threads if threads is not None else cores,
                         memory_controllers=mem,
                         speed=speed_ladder()[speed_idx])


class TestThreadSpeedup:
    def test_single_core_is_unity(self):
        assert thread_speedup(_profile(), _config(cores=1)) == pytest.approx(1.0)

    def test_amdahl_limit(self):
        profile = _profile(serial_fraction=0.5)
        speedup = thread_speedup(profile, _config(cores=16, threads=32))
        assert speedup < 2.0  # 1/s bound

    def test_perfect_parallel_scales_linearly(self):
        profile = _profile(serial_fraction=0.0)
        assert thread_speedup(profile, _config(cores=8)) == pytest.approx(8.0)

    def test_hyperthreads_discounted(self):
        profile = _profile(serial_fraction=0.0, ht_efficiency=0.5)
        full = thread_speedup(profile, _config(cores=8, threads=8))
        with_ht = thread_speedup(profile, _config(cores=8, threads=16))
        assert full < with_ht < 2 * full

    def test_negative_ht_efficiency_hurts(self):
        profile = _profile(serial_fraction=0.0, ht_efficiency=-0.2)
        without = thread_speedup(profile, _config(cores=8, threads=8))
        with_ht = thread_speedup(profile, _config(cores=8, threads=16))
        assert with_ht < without


class TestContentionPenalty:
    def test_no_penalty_below_peak(self):
        profile = _profile(scaling_peak=8, contention_slope=0.1)
        assert contention_penalty(profile, _config(cores=8)) == 1.0

    def test_penalty_grows_past_peak(self):
        profile = _profile(scaling_peak=8, contention_slope=0.1)
        p12 = contention_penalty(profile, _config(cores=12))
        p16 = contention_penalty(profile, _config(cores=16))
        assert p16 < p12 < 1.0

    def test_zero_slope_never_penalizes(self):
        profile = _profile(scaling_peak=4, contention_slope=0.0)
        assert contention_penalty(profile, _config(cores=16)) == 1.0


class TestMemorySpeedup:
    def test_second_controller_helps(self):
        profile = _profile(memory_intensity=0.5)
        one = memory_speedup(profile, _config(cores=4, mem=1))
        two = memory_speedup(profile, _config(cores=4, mem=2))
        assert two > one

    def test_saturates_at_memory_parallelism(self):
        profile = _profile(memory_parallelism=4)
        at4 = memory_speedup(profile, _config(cores=4))
        at16 = memory_speedup(profile, _config(cores=16))
        assert at4 == at16


class TestHeartbeatRate:
    def test_base_configuration_near_base_rate(self):
        model = PerformanceModel()
        profile = _profile(memory_intensity=0.0)
        rate = model.heartbeat_rate(profile, _config(cores=1))
        assert rate == pytest.approx(profile.base_rate, rel=1e-9)

    def test_rates_always_positive(self, cores_space):
        model = PerformanceModel()
        profile = get_benchmark("kmeans")
        rates = [model.heartbeat_rate(profile, c) for c in cores_space]
        assert min(rates) > 0

    def test_kmeans_peaks_at_eight_threads(self, cores_space):
        """Section 2: kmeans scales to 8 cores then degrades sharply."""
        model = PerformanceModel()
        rates = [model.heartbeat_rate(get_benchmark("kmeans"), c)
                 for c in cores_space]
        assert int(np.argmax(rates)) + 1 == 8
        assert rates[31] < 0.5 * rates[7]  # sharp degradation

    def test_swish_peaks_at_sixteen(self, cores_space):
        model = PerformanceModel()
        rates = [model.heartbeat_rate(get_benchmark("swish"), c)
                 for c in cores_space]
        assert int(np.argmax(rates)) + 1 == 16

    def test_x264_flat_after_sixteen(self, cores_space):
        """Section 6.3: x264 essentially constant after 16 cores."""
        model = PerformanceModel()
        rates = [model.heartbeat_rate(get_benchmark("x264"), c)
                 for c in cores_space]
        assert abs(rates[31] - rates[15]) / rates[15] < 0.15

    def test_io_bound_app_insensitive_to_frequency(self):
        model = PerformanceModel()
        profile = _profile(io_intensity=0.9, memory_intensity=0.05)
        slow = model.heartbeat_rate(profile, _config(cores=4, speed_idx=0))
        fast = model.heartbeat_rate(profile, _config(cores=4, speed_idx=14))
        assert fast / slow < 1.2

    def test_compute_bound_app_tracks_frequency(self):
        model = PerformanceModel()
        profile = _profile(memory_intensity=0.0, serial_fraction=0.0)
        slow = model.heartbeat_rate(profile, _config(cores=4, speed_idx=0))
        fast = model.heartbeat_rate(profile, _config(cores=4, speed_idx=14))
        assert fast / slow == pytest.approx(2.9 / 1.2, rel=1e-6)

    def test_rejects_oversized_allocation(self):
        model = PerformanceModel()
        with pytest.raises(ValueError):
            model.heartbeat_rate(_profile(), _config(cores=17))

    def test_speedup_is_rate_ratio(self, cores_space):
        model = PerformanceModel()
        profile = _profile()
        base, other = cores_space[0], cores_space[7]
        expected = (model.heartbeat_rate(profile, other)
                    / model.heartbeat_rate(profile, base))
        assert model.speedup(profile, other, base) == pytest.approx(expected)

    def test_turbo_beats_nominal_for_compute(self, paper_space):
        model = PerformanceModel()
        profile = _profile(memory_intensity=0.0)
        nominal = paper_space[28]   # 1 core, speed 14, 1 mem
        turbo = paper_space[30]     # 1 core, turbo, 1 mem
        assert nominal.speed.index == 14 and turbo.speed.turbo
        assert (model.heartbeat_rate(profile, turbo)
                > model.heartbeat_rate(profile, nominal))
