"""Tests for repro.experiments.thermal_study."""

import pytest

from repro.experiments.harness import default_context
from repro.experiments.thermal_study import thermal_experiment


@pytest.fixture(scope="module")
def cores_ctx():
    return default_context(space_kind="cores", seed=0)


class TestThermalStudy:
    def test_throttling_and_adaptation(self, cores_ctx):
        result = thermal_experiment(cores_ctx, benchmark="swaptions",
                                    utilization=0.5, deadline=60.0,
                                    throttle_factor=0.6)
        assert result.throttled
        assert result.adaptive.reestimations >= 1
        assert result.static.reestimations == 0
        assert result.unthrottled_max_rate > 0

    def test_validation(self, cores_ctx):
        with pytest.raises(ValueError):
            thermal_experiment(cores_ctx, utilization=0.0)
        with pytest.raises(ValueError):
            thermal_experiment(cores_ctx, utilization=0.9)
