"""Tests for repro.runtime.feedback (hull-based integral control)."""

import numpy as np
import pytest

from repro.optimize.lp import EnergyMinimizer
from repro.platform.machine import Machine
from repro.runtime.controller import TradeoffEstimate
from repro.runtime.feedback import HullRateController
from repro.workloads.suite import get_benchmark


def _truth(machine, profile, space):
    rates = np.array([machine.true_rate(profile, c) for c in space])
    powers = np.array([machine.true_power(profile, c) for c in space])
    return TradeoffEstimate.from_truth(rates, powers)


class TestValidation:
    def test_constructor(self, cores_space):
        with pytest.raises(ValueError):
            HullRateController(Machine(), cores_space, gain=0.0)
        with pytest.raises(ValueError):
            HullRateController(Machine(), cores_space, gain=2.5)
        with pytest.raises(ValueError):
            HullRateController(Machine(), cores_space,
                               quantum_fraction=0.0)

    def test_run_inputs(self, cores_space):
        machine = Machine(seed=71)
        controller = HullRateController(machine, cores_space)
        estimate = _truth(machine, get_benchmark("swish"), cores_space)
        with pytest.raises(ValueError):
            controller.run(get_benchmark("swish"), -1.0, 10.0, estimate)
        with pytest.raises(ValueError):
            controller.run(get_benchmark("swish"), 1.0, 0.0, estimate)


class TestTracking:
    def test_meets_demand_with_true_model(self, cores_space):
        machine = Machine(seed=72)
        swish = get_benchmark("swish")
        estimate = _truth(machine, swish, cores_space)
        controller = HullRateController(machine, cores_space)
        work = 0.5 * estimate.rates.max() * 40.0
        report = controller.run(swish, work, 40.0, estimate)
        assert report.met_target
        assert machine.clock == pytest.approx(40.0)

    def test_near_optimal_energy_with_true_model(self, cores_space):
        machine = Machine(seed=73)
        x264 = get_benchmark("x264")
        estimate = _truth(machine, x264, cores_space)
        controller = HullRateController(machine, cores_space)
        work = 0.4 * estimate.rates.max() * 40.0
        report = controller.run(x264, work, 40.0, estimate)
        optimal = EnergyMinimizer(estimate.rates, estimate.powers,
                                  machine.idle_power())
        assert report.energy <= 1.08 * optimal.min_energy(work, 40.0)

    def test_integral_action_absorbs_model_bias(self, cores_space):
        """Rates overestimated 25%: the controller still converges on
        the demand by pushing the signal up the hull."""
        machine = Machine(seed=74)
        swish = get_benchmark("swish")
        truth = _truth(machine, swish, cores_space)
        biased = TradeoffEstimate(rates=truth.rates * 1.25,
                                  powers=truth.powers,
                                  estimator_name="biased")
        controller = HullRateController(machine, cores_space, gain=0.8)
        work = 0.5 * truth.rates.max() * 40.0
        report = controller.run(swish, work, 40.0, biased)
        assert report.work_done >= 0.97 * work

    def test_zero_work_idles(self, cores_space):
        machine = Machine(seed=75)
        swish = get_benchmark("swish")
        estimate = _truth(machine, swish, cores_space)
        controller = HullRateController(machine, cores_space)
        report = controller.run(swish, 0.0, 10.0, estimate)
        assert report.energy == pytest.approx(
            machine.idle_power() * 10.0, rel=0.01)

    def test_infeasible_demand_reported_honestly(self, cores_space):
        machine = Machine(seed=76)
        kmeans = get_benchmark("kmeans")
        estimate = _truth(machine, kmeans, cores_space)
        controller = HullRateController(machine, cores_space)
        work = estimate.rates.max() * 40.0 * 1.5
        report = controller.run(kmeans, work, 40.0, estimate)
        assert not report.met_target
        assert report.work_done < work


class TestAgainstLPController:
    def test_comparable_energy_on_good_model(self, cores_space,
                                             cores_dataset):
        """With an accurate model, the one-lookup controller lands within
        a few percent of the per-quantum LP re-solver."""
        from repro.estimators.leo import LEOEstimator
        from repro.runtime.controller import RuntimeController
        kmeans = get_benchmark("kmeans")
        view = cores_dataset.leave_one_out("kmeans")

        machine_a = Machine(seed=77)
        estimate = _truth(machine_a, kmeans, cores_space)
        work = 0.45 * estimate.rates.max() * 40.0

        feedback = HullRateController(machine_a, cores_space)
        fb_report = feedback.run(kmeans, work, 40.0, estimate)

        machine_b = Machine(seed=77)
        lp = RuntimeController(
            machine=machine_b, space=cores_space, estimator=LEOEstimator(),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers)
        lp_report = lp.run(kmeans, work, 40.0, estimate)

        assert fb_report.met_target and lp_report.met_target
        assert fb_report.energy <= 1.06 * lp_report.energy
