"""Tests for trace-context propagation and the span collector.

The PR-6 distributed primitives in isolation: the wire form of
:class:`TraceContext` (tolerant parsing — bad metadata must never fail
the request carrying it), deterministic trace ids, disjoint per-shard
span-id blocks, the tracer's distributed features (remote parents,
shard bases, adoption of foreign spans), the collector's collision
repair, and the bounded :class:`TimeSeries` the SLO layer reads.
"""

import pytest

from repro.obs import (
    Observability,
    Span,
    TimeSeries,
    TraceContext,
    Tracer,
    current_trace_context,
    merge_spans,
    new_trace_id,
    orphan_spans,
    read_shards,
    shard_span_base,
    use,
    write_trace,
)

TRACE_ID = "feedbeefcafe0123"


def _span(name, span_id, parent_id=None, start=0.0, end=1.0,
          trace_id=None):
    """A detached finished span (bypasses the tracer lifecycle)."""
    return Span(name=name, span_id=span_id, parent_id=parent_id,
                start=start, end=end, trace_id=trace_id)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext(trace_id=TRACE_ID, span_id=7,
                           baggage={"tenant": "kmeans"})
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_minimal_wire_form_omits_optional_fields(self):
        wire = TraceContext(trace_id=TRACE_ID).to_wire()
        assert wire == {"trace_id": TRACE_ID}

    def test_from_wire_tolerates_garbage(self):
        for payload in (None, "x", 7, [], {}, {"span_id": 3},
                        {"trace_id": ""}, {"trace_id": 12}):
            assert TraceContext.from_wire(payload) is None

    def test_from_wire_coerces_span_id(self):
        ctx = TraceContext.from_wire({"trace_id": TRACE_ID,
                                      "span_id": "12"})
        assert ctx.span_id == 12

    def test_from_wire_drops_unparseable_span_id(self):
        ctx = TraceContext.from_wire({"trace_id": TRACE_ID,
                                      "span_id": "not-an-int"})
        assert ctx is not None and ctx.span_id is None

    def test_from_wire_normalizes_baggage(self):
        ctx = TraceContext.from_wire(
            {"trace_id": TRACE_ID, "baggage": {"k": 3}})
        assert ctx.baggage == {"k": "3"}
        ctx = TraceContext.from_wire(
            {"trace_id": TRACE_ID, "baggage": "nope"})
        assert ctx.baggage == {}

    def test_child_repositions_within_same_trace(self):
        ctx = TraceContext(trace_id=TRACE_ID, span_id=1,
                           baggage={"a": "b"})
        child = ctx.child(9)
        assert child.trace_id == TRACE_ID
        assert child.span_id == 9
        assert child.baggage == {"a": "b"}


class TestNewTraceId:
    def test_seeded_ids_are_deterministic(self):
        assert new_trace_id(seed=42) == new_trace_id(seed=42)
        assert new_trace_id(seed=42) != new_trace_id(seed=43)

    def test_shape(self):
        for tid in (new_trace_id(), new_trace_id(seed="x")):
            assert len(tid) == 16
            int(tid, 16)  # valid hex

    def test_entropy_ids_differ(self):
        assert new_trace_id() != new_trace_id()


class TestShardSpanBase:
    def test_blocks_sit_above_local_id_range(self):
        base = shard_span_base(TRACE_ID, "chunk-0")
        assert base >= 2 ** 32
        assert base % 2 ** 32 == 0

    def test_deterministic_per_trace_and_shard(self):
        assert (shard_span_base(TRACE_ID, "chunk-0")
                == shard_span_base(TRACE_ID, "chunk-0"))

    def test_distinct_shards_get_distinct_blocks(self):
        shards = [f"chunk-{i}" for i in range(32)]
        shards += [f"server-req-{i}" for i in range(32)]
        bases = {shard_span_base(TRACE_ID, s) for s in shards}
        assert len(bases) == len(shards)

    def test_distinct_traces_get_distinct_blocks(self):
        assert (shard_span_base(TRACE_ID, "chunk-0")
                != shard_span_base("0" * 16, "chunk-0"))


class TestCurrentTraceContext:
    def test_none_when_disabled(self):
        assert current_trace_context() is None

    def test_none_for_trace_id_less_tracer(self):
        with use(Observability(tracer=Tracer())):
            assert current_trace_context() is None

    def test_snapshots_innermost_open_span(self):
        ob = Observability.recording(trace_id=TRACE_ID)
        with use(ob):
            with ob.tracer.span("outer"):
                with ob.tracer.span("inner") as inner:
                    ctx = current_trace_context()
                    assert ctx.trace_id == TRACE_ID
                    assert ctx.span_id == inner.span_id

    def test_no_open_span_propagates_none_parent(self):
        ob = Observability.recording(trace_id=TRACE_ID)
        with use(ob):
            ctx = current_trace_context()
        assert ctx.span_id is None


class TestTracerDistributed:
    def test_remote_parent_adopted_by_root_spans(self):
        base = shard_span_base(TRACE_ID, "chunk-0")
        tracer = Tracer(trace_id=TRACE_ID, remote_parent=99,
                        span_id_base=base)
        with tracer.span("shard.root"):
            with tracer.span("shard.child"):
                pass
        root = next(s for s in tracer.spans if s.name == "shard.root")
        child = next(s for s in tracer.spans if s.name == "shard.child")
        assert root.parent_id == 99
        assert root.span_id == base + 1
        assert child.parent_id == root.span_id

    def test_current_span_id_falls_back_to_remote_parent(self):
        tracer = Tracer(trace_id=TRACE_ID, remote_parent=42)
        assert tracer.current_span_id == 42

    def test_spans_stamped_with_trace_id(self):
        tracer = Tracer(trace_id=TRACE_ID)
        with tracer.span("a"):
            pass
        span = tracer.spans[0]
        assert span.trace_id == TRACE_ID
        assert span.to_dict()["trace_id"] == TRACE_ID

    def test_local_tracer_keeps_pr1_wire_shape(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert "trace_id" not in tracer.spans[0].to_dict()

    def test_adopt_folds_foreign_spans(self):
        worker = Tracer(trace_id=TRACE_ID, remote_parent=1,
                        span_id_base=shard_span_base(TRACE_ID, "w"))
        with worker.span("cell"):
            pass
        home = Tracer(trace_id=TRACE_ID)
        with home.span("root"):
            pass
        home.adopt(Span.from_dict(d)
                   for d in (s.to_dict() for s in worker.spans))
        names = {s.name for s in home.spans}
        assert names == {"root", "cell"}
        adopted = next(s for s in home.spans if s.name == "cell")
        assert adopted.parent_id == 1  # ids survive adoption verbatim

    def test_adopt_rejects_unfinished_spans(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="unfinished"):
            tracer.adopt([_span("open", 1, start=2.0, end=1.0)])


class TestMergeSpans:
    def test_disjoint_shards_pass_through(self):
        a = [_span("a", 1), _span("b", 2, parent_id=1)]
        b = [_span("c", 2 ** 32 + 1, parent_id=1)]
        merged = merge_spans(a, b)
        assert {s.span_id for s in merged} == {1, 2, 2 ** 32 + 1}
        assert orphan_spans(merged) == []

    def test_collision_remaps_later_shard(self):
        a = [_span("a1", 1), _span("a2", 2, parent_id=1)]
        b = [_span("b1", 1), _span("b2", 2, parent_id=1)]
        merged = merge_spans(a, b)
        ids = [s.span_id for s in merged]
        assert len(set(ids)) == 4, "collisions must be remapped"
        b1 = next(s for s in merged if s.name == "b1")
        b2 = next(s for s in merged if s.name == "b2")
        # The in-shard parent reference follows the remap.
        assert b2.parent_id == b1.span_id
        assert orphan_spans(merged) == []

    def test_cross_shard_parent_reference_is_not_remapped(self):
        # Shard b parents under shard a's span 5; 5 never collides, so
        # the edge must survive merging untouched.
        a = [_span("root", 5)]
        b = [_span("remote", 2 ** 32 + 1, parent_id=5)]
        merged = merge_spans(a, b)
        remote = next(s for s in merged if s.name == "remote")
        assert remote.parent_id == 5
        assert orphan_spans(merged) == []

    def test_within_shard_duplicates_kept_verbatim(self):
        shard = [_span("dup", 1), _span("dup", 1)]
        merged = merge_spans(shard)
        assert [s.span_id for s in merged] == [1, 1]

    def test_argument_order_decides_who_keeps_their_ids(self):
        a = [_span("first", 1)]
        b = [_span("second", 1)]
        merged = merge_spans(a, b)
        assert next(s for s in merged if s.name == "first").span_id == 1
        assert next(s for s in merged if s.name == "second").span_id != 1

    def test_read_shards_merges_jsonl_files(self, tmp_path):
        one = write_trace(tmp_path / "one.jsonl",
                          [_span("root", 1, trace_id=TRACE_ID)])
        two = write_trace(
            tmp_path / "two.jsonl",
            [_span("leaf", 2 ** 32 + 1, parent_id=1, trace_id=TRACE_ID)])
        merged = read_shards([one, two])
        assert [s.name for s in merged] == ["root", "leaf"]
        assert orphan_spans(merged) == []


class TestOrphanSpans:
    def test_detects_missing_parent(self):
        spans = [_span("root", 1), _span("lost", 7, parent_id=99)]
        assert [s.name for s in orphan_spans(spans)] == ["lost"]

    def test_resolved_by_merging_the_missing_shard(self):
        shard = [_span("lost", 7, parent_id=99)]
        assert orphan_spans(shard)
        merged = merge_spans([_span("found", 99)], shard)
        assert orphan_spans(merged) == []

    def test_roots_are_never_orphans(self):
        assert orphan_spans([_span("root", 1)]) == []


class TestTimeSeries:
    def test_append_and_read_in_order(self):
        series = TimeSeries(capacity=8)
        for t in range(5):
            series.append(float(t), float(t * 10))
        assert len(series) == 5
        assert list(series) == [(float(t), float(t * 10))
                                for t in range(5)]
        assert series.last_time == 4.0
        assert series.last_value == 40.0

    def test_eviction_keeps_newest(self):
        series = TimeSeries(capacity=3)
        for t in range(10):
            series.append(float(t), float(t))
        assert len(series) == 3
        assert [t for t, _ in series] == [7.0, 8.0, 9.0]

    def test_backwards_timestamp_rejected(self):
        series = TimeSeries()
        series.append(5.0, 1.0)
        with pytest.raises(ValueError, match="precedes"):
            series.append(4.0, 1.0)
        series.append(5.0, 2.0)  # equal timestamps are fine

    def test_empty_reads_raise(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.last_time
        with pytest.raises(ValueError):
            series.last_value

    def test_window_defaults_to_newest_timestamp(self):
        series = TimeSeries()
        for t in (0.0, 10.0, 19.0, 20.0):
            series.append(t, t)
        assert series.values(5.0) == [19.0, 20.0]
        assert series.values(None) == [0.0, 10.0, 19.0, 20.0]
        assert series.values(5.0, now=100.0) == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            TimeSeries(capacity=0)
