"""Service-client resilience: deadline-capped backoff and injected faults.

Covers the retry-backoff fix (total retry time is capped against the
request deadline, delays carry full jitter inside the exponential
envelope) and the service fault classes from the taxonomy — connection
drops, timeouts, corrupt responses — injected upstream of the retry
loop, against a live service thread where a real round trip is needed.
"""

import socket
import time

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.estimators.base import EstimationProblem
from repro.faults import FaultInjector, FaultPlan, FaultSpec, use
from repro.platform.machine import Machine
from repro.platform.topology import PAPER_TOPOLOGY
from repro.runtime.controller import RuntimeController
from repro.runtime.sampling import RandomSampler
from repro.service import (
    EstimationService,
    RemoteEstimator,
    ServerThread,
    ServiceClient,
)
from repro.service.protocol import ServiceAddress


def plan(*specs, seed=0):
    return FaultPlan(name="test", seed=seed, specs=specs)


def make_client(**kwargs):
    # The address is never dialled in the unit tests below.
    return ServiceClient(ServiceAddress.parse("127.0.0.1:1"), **kwargs)


class TestBackoffDeadlineCap:
    def test_no_retry_past_the_deadline(self):
        client = make_client(backoff=5.0, jitter_seed=0)
        # The deadline budget is already spent: the next backoff sleep
        # cannot fit, so the client must give up immediately.
        started = time.monotonic() - 10.0
        assert client._backoff_sleep(0, started, deadline_s=1.0) is False

    def test_zero_backoff_still_respects_deadline(self):
        client = make_client(backoff=0.0)
        started = time.monotonic() - 10.0
        assert client._backoff_sleep(0, started, deadline_s=1.0) is False

    def test_no_deadline_always_retries(self):
        client = make_client(backoff=0.0)
        assert client._backoff_sleep(5, time.monotonic(), None) is True

    def test_exhausted_deadline_fails_fast(self):
        # A dead address with a generous backoff but a tiny deadline:
        # the retry loop must surface the failure quickly instead of
        # sleeping through the full exponential schedule.
        client = ServiceClient(ServiceAddress.parse("127.0.0.1:1"),
                               timeout=0.2, retries=5, backoff=30.0,
                               default_deadline_s=0.3, jitter_seed=1)
        started = time.monotonic()
        with pytest.raises(OSError):
            client.ping()
        assert time.monotonic() - started < 5.0

    def test_jitter_within_exponential_envelope(self, monkeypatch):
        client = make_client(backoff=0.05, backoff_cap=0.4, jitter_seed=3)
        slept = []
        monkeypatch.setattr(time, "sleep", slept.append)
        for attempt in range(6):
            assert client._backoff_sleep(attempt, time.monotonic(), None)
        # Full jitter: each delay is uniform in [0, envelope) where the
        # envelope doubles per attempt and saturates at backoff_cap.
        for attempt, delay in enumerate(slept):
            envelope = min(0.4, 0.05 * 2 ** attempt)
            assert 0.0 <= delay < envelope

    def test_jitter_streams_deterministic_by_seed(self, monkeypatch):
        delays = {}
        for run in range(2):
            client = make_client(backoff=0.1, jitter_seed=42)
            slept = []
            monkeypatch.setattr(time, "sleep", slept.append)
            for attempt in range(4):
                client._backoff_sleep(attempt, time.monotonic(), None)
            delays[run] = slept
        assert delays[0] == delays[1]


@pytest.fixture(scope="module")
def service_thread():
    with ServerThread(EstimationService(), max_pending=8,
                      max_workers=2) as thread:
        yield thread


def make_problem(cores_space, cores_dataset):
    view = cores_dataset.leave_one_out("kmeans")
    indices = np.array([2, 9, 17, 25, 31])
    return EstimationProblem(
        features=cores_space.feature_matrix(), prior=view.prior_rates,
        observed_indices=indices,
        observed_values=view.prior_rates.mean(axis=0)[indices])


class TestInjectedServiceFaults:
    def test_retries_absorb_injected_drops(self, service_thread,
                                           cores_space, cores_dataset):
        problem = make_problem(cores_space, cores_dataset)
        with ServiceClient(service_thread.bound_address, timeout=60.0,
                           retries=2, backoff=0.0) as client:
            injector = FaultInjector(plan(
                FaultSpec("connection-drop", probability=1.0,
                          max_events=2)))
            with use(injector):
                curve = client.estimate(problem, estimator="offline")
        assert injector.fired_counts == {"connection-drop": 2}
        assert np.all(np.isfinite(curve))

    def test_injected_timeout_counts_as_transport_failure(
            self, service_thread, cores_space, cores_dataset):
        problem = make_problem(cores_space, cores_dataset)
        with ServiceClient(service_thread.bound_address, timeout=60.0,
                           retries=1, backoff=0.0) as client:
            with use(FaultInjector(plan(
                    FaultSpec("service-timeout", probability=1.0,
                              max_events=1)))):
                curve = client.estimate(problem, estimator="offline")
        assert np.all(np.isfinite(curve))

    def test_exhausted_retries_surface_the_drop(self, service_thread):
        with ServiceClient(service_thread.bound_address, timeout=60.0,
                           retries=1, backoff=0.0) as client:
            with use(FaultInjector(plan(
                    FaultSpec("connection-drop", probability=1.0)))):
                with pytest.raises(ConnectionError):
                    client.ping()

    def test_corrupt_response_is_not_retried(self, service_thread):
        # ProtocolError is not a transport failure: retrying a corrupt
        # frame would resend garbage, so it surfaces immediately.
        with ServiceClient(service_thread.bound_address, timeout=60.0,
                           retries=3, backoff=0.0) as client:
            injector = FaultInjector(plan(
                FaultSpec("corrupt-response", probability=1.0)))
            with use(injector):
                with pytest.raises(ProtocolError):
                    client.ping()
        assert injector.fired_counts == {"corrupt-response": 1}


class TestRemoteControllerDegradation:
    def test_dead_service_demotes_remote_estimator(self, cores_space,
                                                   cores_dataset, kmeans):
        # A RemoteEstimator whose service is permanently unreachable:
        # the ladder must absorb the ConnectionError and calibrate with
        # the local fallback instead of crashing the controller.
        client = ServiceClient(ServiceAddress.parse("127.0.0.1:1"),
                               timeout=0.2, retries=0, backoff=0.0)
        view = cores_dataset.leave_one_out("kmeans")
        controller = RuntimeController(
            machine=Machine(PAPER_TOPOLOGY, seed=1234), space=cores_space,
            estimator=RemoteEstimator(client, estimator="leo"),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=0), sample_count=6)
        estimate = controller.calibrate(kmeans)
        assert estimate.estimator_name == "online"
        assert controller.ladder.degraded
        assert np.all(np.isfinite(estimate.rates))

    def test_remote_run_survives_injected_drops(self, service_thread,
                                                cores_space, cores_dataset,
                                                kmeans):
        view = cores_dataset.leave_one_out("kmeans")
        with ServiceClient(service_thread.bound_address, timeout=60.0,
                           retries=2, backoff=0.0) as client:
            controller = RuntimeController(
                machine=Machine(PAPER_TOPOLOGY, seed=1234),
                space=cores_space,
                estimator=RemoteEstimator(client, estimator="leo"),
                prior_rates=view.prior_rates,
                prior_powers=view.prior_powers,
                sampler=RandomSampler(seed=0), sample_count=6)
            with use(FaultInjector(plan(
                    FaultSpec("connection-drop", probability=0.5,
                              max_events=3)))):
                estimate = controller.calibrate(kmeans)
                work = 0.4 * estimate.rates.max() * 40.0
                report = controller.run(kmeans, work, 40.0, estimate)
        assert report.energy > 0
        assert np.all(np.isfinite(estimate.rates))
