"""Bench reporter: one JSON perf record per PR, at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [--out BENCH_8.json]
    PYTHONPATH=src python benchmarks/bench_report.py --quick  # skip slow gates

Runs the CI smoke gates (``perf_smoke``, ``service_smoke``,
``cluster_smoke``, ``obs_smoke``, ``hetero_smoke``, ``shard_smoke``,
``chaos_smoke``, ``soak_smoke``) as subprocesses,
times each, and lifts the key workload counters out of the obs gate's
exported metrics.  Also times the heterogeneous estimate path directly
(one transfer-prior calibration and one LEO fit on the enlarged
big.LITTLE configuration space), since that path's latency governs the
hetero sweep's cost.
The resulting ``BENCH_N.json`` files form the perf trajectory the
ROADMAP asks for: one committed record per PR, diffable across the
stack's growth, instead of anecdotal "feels faster" claims.

The record deliberately carries no timestamp: a re-run on the same tree
should produce the same file modulo wall-clock fields, so review diffs
show perf movement, not clock movement.

Kept out of the ``test_*`` namespace on purpose: it is a reporting
tool, not a figure reproduction.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent

#: Counters worth tracking across PRs (from the obs gate's registry).
KEY_COUNTERS = (
    "linalg_posterior_factorizations_total",
    "em_iterations_total",
    "harness_cells_completed_total",
    "harness_worker_cells_total",
)

#: The smoke gates, in rough order of usefulness when time is short.
GATES = ("perf_smoke", "service_smoke", "obs_smoke", "cluster_smoke",
         "hetero_smoke", "shard_smoke", "chaos_smoke", "soak_smoke")
QUICK_GATES = ("service_smoke", "obs_smoke")


def hetero_timings() -> dict:
    """Latency of the hetero estimate path on the enlarged space.

    Times the pieces the hetero sweep pays per cell: building the
    transfer prior (alignment of the 1024-config Xeon tables onto the
    big.LITTLE space) and one transfer-aware LEO fit over that space.
    """
    sys.path.insert(0, str(REPO / "src"))
    import numpy as np

    from repro.core.transfer import TransferPrior
    from repro.estimators import (
        EstimationProblem,
        TransferAwareLEO,
        normalize_problem,
    )
    from repro.experiments.harness import default_context, random_indices
    from repro.experiments.hetero_energy import DEFAULT_SPEED_INDICES
    from repro.platform.hetero import BIG_LITTLE, HeteroMachine, hetero_space
    from repro.platform.topology import PAPER_TOPOLOGY

    space = hetero_space(BIG_LITTLE, DEFAULT_SPEED_INDICES)
    ctx = default_context(space_kind="paper", seed=0)
    view = ctx.dataset.leave_one_out("kmeans")

    started = time.perf_counter()
    transfer = TransferPrior()
    transfer.add_platform(PAPER_TOPOLOGY, ctx.space,
                          view.prior_rates, view.prior_powers)
    transferred = transfer.build(BIG_LITTLE, space)
    calibrate_seconds = time.perf_counter() - started

    machine = HeteroMachine(BIG_LITTLE, seed=0)
    profile = ctx.profile("kmeans")
    truth, _ = machine.sweep(profile, space, noisy=False)
    indices = random_indices(len(space), 48, 7)
    problem = EstimationProblem(
        features=space.feature_matrix(), prior=transferred.rates,
        observed_indices=indices, observed_values=truth[indices])
    normalized, scale = normalize_problem(problem)
    started = time.perf_counter()
    estimate = TransferAwareLEO(
        blocks=transferred.blocks).estimate(normalized) * scale
    estimate_seconds = time.perf_counter() - started
    error = float(np.mean(np.abs(estimate - truth) / truth))
    return {
        "space_configs": len(space),
        "transfer_calibrate_seconds": round(calibrate_seconds, 3),
        "estimate_seconds": round(estimate_seconds, 3),
        "estimate_mean_relative_error": round(error, 4),
    }


def shard_timings() -> dict:
    """Throughput of a small sharded run on both wire protocols.

    A deliberately modest load (2 shards x 2 clients x 50 requests) so
    the record tracks wire and routing overhead across PRs without
    re-paying the full acceptance run the shard gate already does.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.experiments.service_throughput import (
        sharded_throughput_experiment,
    )

    record = {}
    for wire in ("json", "binary"):
        result = sharded_throughput_experiment(
            shards=2, clients=2, requests_per_client=50, tenants=8,
            wire=wire, workers=2)
        record[wire] = {
            "requests": result.completed,
            "requests_per_second": round(result.requests_per_second, 1),
            "latency_p99_seconds": round(result.latency["p99"], 4),
        }
    return record


def soak_timings() -> dict:
    """Time compression of a short soak on the virtual clock.

    Runs half a simulated day of the default phased incident plan
    (16 tenants) and records simulated-seconds per wall-second — the
    number that makes multi-day soaks affordable in CI.  The report
    fingerprint is wall-free, so this field is the record's only
    nondeterminism.
    """
    import logging

    sys.path.insert(0, str(REPO / "src"))
    from repro.soak import SoakConfig, soak_run

    logging.disable(logging.WARNING)
    try:
        report = soak_run(SoakConfig(horizon_s=0.5 * 86400.0))
    finally:
        logging.disable(logging.NOTSET)
    return {
        "simulated_seconds": round(report.simulated_s, 1),
        "wall_seconds": round(report.wall_s, 2),
        "simulated_per_wall": round(report.sim_per_wall, 1),
        "segments": report.segments_run,
        "passed": report.passed,
        "availability": round(report.availability, 4),
        "fingerprint": report.fingerprint,
    }


def run_gate(name: str, extra_args=()) -> dict:
    """Run one smoke gate as a subprocess; never raises."""
    script = BENCH_DIR / f"{name}.py"
    started = time.perf_counter()
    process = subprocess.run(
        [sys.executable, str(script), *extra_args],
        cwd=REPO, capture_output=True, text=True,
        env=dict(os.environ, PYTHONPATH=str(REPO / "src")))
    elapsed = time.perf_counter() - started
    record = {
        "name": name,
        "wall_seconds": round(elapsed, 2),
        "passed": process.returncode == 0,
    }
    if process.returncode != 0:
        record["exit_code"] = process.returncode
        record["stderr_tail"] = process.stderr.strip().splitlines()[-5:]
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO / "BENCH_9.json"),
                        help="where to write the report")
    parser.add_argument("--quick", action="store_true",
                        help="run only the fast gates")
    args = parser.parse_args()

    gates = QUICK_GATES if args.quick else GATES
    suites = []
    counters = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name in gates:
            extra = (("--artifacts", tmp) if name == "obs_smoke" else ())
            record = run_gate(name, extra)
            suites.append(record)
            status = "ok" if record["passed"] else "FAIL"
            print(f"{name:<14} {record['wall_seconds']:7.2f}s  {status}")
        metrics_path = Path(tmp) / "metrics.json"
        if metrics_path.exists():
            exported = json.loads(metrics_path.read_text())
            counters = {
                key: exported.get("counters", {}).get(key, 0)
                for key in KEY_COUNTERS
            }

    report = {
        "bench": 9,
        "generator": "benchmarks/bench_report.py",
        "quick": bool(args.quick),
        "suites": suites,
        "counters": counters,
        "hetero": hetero_timings(),
        "shard": shard_timings(),
        "soak": soak_timings(),
        "total_wall_seconds": round(
            sum(s["wall_seconds"] for s in suites), 2),
        "all_passed": all(s["passed"] for s in suites),
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {out}")
    return 0 if report["all_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
