"""Ablation: hull-walk LP solver vs the from-scratch general simplex.

The Eq. (1) LP has only two constraints, so its optimum lies on the
lower convex hull of (rate, power) points — the hull walk exploits that
structure (paper Section 5.3).  This ablation verifies both solvers
agree on the paper-scale instance (1024 configurations + idle) across a
utilization sweep and measures the speed difference.
"""

import time

import numpy as np

from conftest import save_results
from repro.experiments.harness import format_table
from repro.optimize.lp import EnergyMinimizer

UTILIZATIONS = (0.1, 0.3, 0.5, 0.7, 0.9)


def test_ablation_lp_solvers(full_ctx, benchmark):
    truth = full_ctx.truth.leave_one_out("kmeans")
    idle = full_ctx.idle_power()
    minimizer = EnergyMinimizer(truth.true_rates, truth.true_powers, idle)
    deadline = 100.0
    works = [u * minimizer.max_rate * deadline for u in UTILIZATIONS]

    def run_hull():
        return [minimizer.min_energy(w, deadline) for w in works]

    hull_energies = benchmark.pedantic(run_hull, rounds=1, iterations=1)

    started = time.perf_counter()
    simplex_energies = [
        minimizer.solve_simplex(w, deadline)[1].objective for w in works
    ]
    simplex_seconds = time.perf_counter() - started
    started = time.perf_counter()
    run_hull()
    hull_seconds = time.perf_counter() - started

    rows = [[u, h, s] for u, h, s in zip(UTILIZATIONS, hull_energies,
                                         simplex_energies)]
    rows.append(["seconds", hull_seconds, simplex_seconds])
    print()
    print(format_table(
        ["utilization", "hull-walk energy (J)", "simplex energy (J)"],
        rows, title="Ablation: Eq. (1) solvers on 1024 configs (kmeans)"))
    save_results("ablation_lp", {
        "utilizations": list(UTILIZATIONS),
        "hull_energies": hull_energies,
        "simplex_energies": simplex_energies,
        "hull_seconds": hull_seconds,
        "simplex_seconds": simplex_seconds,
    })

    np.testing.assert_allclose(hull_energies, simplex_energies, rtol=1e-6)
    assert hull_seconds < simplex_seconds
