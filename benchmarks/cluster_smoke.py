"""CI smoke check for the cluster co-scheduling subsystem.

Usage::

    PYTHONPATH=src python benchmarks/cluster_smoke.py

Runs three tenants (fluidanimate, kmeans, blackscholes) on the small
``cores`` space under the joint power-cap coordinator and checks the
subsystem's core guarantees end to end:

* the conservative per-epoch node peak never exceeds the cap, at a
  loose cap and at a tight one;
* every tenant meets its deadline under the joint policy at both caps;
* at the loose cap — where the equal-split baseline is also feasible —
  the joint allocator completes the same work for less total energy;
* at the tight cap the equal split misses a deadline the joint
  allocator meets (the feasibility win);
* a repeated joint run is bit-identical (fixed-seed determinism).

Kept out of the ``test_*`` namespace on purpose: it is a CI gate over
the whole coordinator loop, not a figure reproduction.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.experiments.cluster_energy import (  # noqa: E402
    DEFAULT_BENCHMARKS,
    DEFAULT_DEADLINE,
    DEFAULT_UTILIZATIONS,
    _cluster_cell,
    tenant_workloads,
)
from repro.experiments.harness import default_context  # noqa: E402

LOOSE_CAP = 260.0
TIGHT_CAP = 230.0


def run_cell(shared, cap, policy):
    run = _cluster_cell(shared, (cap, policy))
    assert run.cap_respected, (
        f"{policy}@{cap:.0f}W: peak {run.max_peak_watts:.1f}W exceeded "
        f"the cap")
    assert run.max_peak_watts <= cap + 1e-6, run.max_peak_watts
    print(f"{policy:<7} cap={cap:5.0f}W  energy={run.total_energy:7.1f}J  "
          f"peak={run.max_peak_watts:6.1f}W  "
          f"missed={','.join(run.missed) or '-'}")
    return run


def main() -> int:
    ctx = default_context(space_kind="cores")
    workloads = tenant_workloads(ctx, DEFAULT_BENCHMARKS,
                                 DEFAULT_UTILIZATIONS, DEFAULT_DEADLINE)
    shared = (ctx, workloads, DEFAULT_DEADLINE)

    joint_loose = run_cell(shared, LOOSE_CAP, "joint")
    static_loose = run_cell(shared, LOOSE_CAP, "static")
    joint_tight = run_cell(shared, TIGHT_CAP, "joint")
    static_tight = run_cell(shared, TIGHT_CAP, "static")

    assert not joint_loose.missed, joint_loose.missed
    assert not joint_tight.missed, joint_tight.missed
    assert not static_loose.missed, static_loose.missed
    assert joint_loose.total_energy < static_loose.total_energy, (
        f"joint {joint_loose.total_energy:.1f}J must beat equal-split "
        f"{static_loose.total_energy:.1f}J at the loose cap")
    assert static_tight.missed, (
        "expected the equal split to pinch the heavy tenant at "
        f"{TIGHT_CAP:.0f}W")

    repeat = _cluster_cell(shared, (LOOSE_CAP, "joint"))
    assert repeat.total_energy == joint_loose.total_energy, (
        "fixed-seed joint run must be bit-identical")
    assert repeat.missed == joint_loose.missed

    saved = 1.0 - joint_loose.total_energy / static_loose.total_energy
    print(f"joint saves {100.0 * saved:.1f}% at {LOOSE_CAP:.0f}W with all "
          f"deadlines met; meets all at {TIGHT_CAP:.0f}W where equal split "
          f"misses {','.join(static_tight.missed)}")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
