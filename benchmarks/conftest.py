"""Shared fixtures for the paper-reproduction benchmarks.

Each ``test_fig*`` / ``test_sec*`` file regenerates one table or figure
of the paper (see DESIGN.md section 4).  Expensive experiment runs are
session-scoped fixtures so figures sharing data (5/6, 7/8, 10/11) pay
for it once; the ``benchmark`` fixture times a representative kernel of
each experiment.

Scale with ``REPRO_BENCH_SCALE`` (default 1.0): trials, utilization-grid
density and benchmark counts shrink or grow proportionally.  Set
``REPRO_WORKERS=N`` to fan the sweep-shaped experiments (figures 5/6,
10/11, 12) across N processes — results are identical for any worker
count (see docs/PARALLELISM.md).  Results are printed as aligned tables
(run pytest with ``-s`` to see them) and saved as JSON under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import harness
from repro.experiments.dynamic import dynamic_experiment
from repro.experiments.energy import energy_experiment
from repro.experiments.estimation import accuracy_experiment, example_curves
from repro.experiments.harness import default_context, scaled
from repro.experiments.sensitivity import sensitivity_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Paper-reported headline numbers, for side-by-side printing.
PAPER = {
    "fig5_perf_accuracy": {"leo": 0.97, "online": 0.87, "offline": 0.68},
    "fig6_power_accuracy": {"leo": 0.98, "online": 0.85, "offline": 0.89},
    "fig11_energy": {"leo": 1.06, "online": 1.24, "offline": 1.29,
                     "race-to-idle": 1.90},
    "table1": {"leo": [1.045, 1.005, 1.028],
               "offline": [1.169, 1.275, 1.216],
               "online": [1.325, 1.248, 1.291]},
    "sec67_fit_seconds": 0.8,
    "sec67_energy_joules": 178.5,
}


def save_results(name: str, payload) -> pathlib.Path:
    """Persist a benchmark's reproduced numbers as JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=float))
    return path


@pytest.fixture(scope="session")
def full_ctx():
    """The paper-scale context: 1024 configs, 25 benchmarks."""
    return default_context(space_kind="paper", seed=0)


@pytest.fixture(scope="session")
def cores_ctx():
    """The Section 2 context: 32 core-allocation configs."""
    return default_context(space_kind="cores", seed=0)


@pytest.fixture(scope="session")
def accuracy_result(full_ctx):
    """Figures 5 and 6: accuracy across all 25 benchmarks."""
    return accuracy_experiment(full_ctx, sample_count=20,
                               trials=scaled(3),
                               workers=harness.default_workers())


@pytest.fixture(scope="session")
def examples_result(full_ctx):
    """Figures 7 and 8: full curves for kmeans, swish, x264."""
    return example_curves(full_ctx, sample_count=20)


@pytest.fixture(scope="session")
def energy_curves(full_ctx):
    """Figures 10 and 11: energy sweep for all 25 benchmarks."""
    return energy_experiment(full_ctx,
                             num_utilizations=scaled(15, minimum=4),
                             workers=harness.default_workers())


@pytest.fixture(scope="session")
def sensitivity_result(full_ctx):
    """Figure 12: sample-size sweep averaged across benchmarks."""
    names = full_ctx.benchmark_names[:scaled(25, minimum=5)]
    return sensitivity_experiment(
        full_ctx, sizes=(0, 2, 5, 10, 14, 15, 20, 30, 40),
        benchmarks=names, workers=harness.default_workers())


@pytest.fixture(scope="session")
def dynamic_result(full_ctx):
    """Figure 13 / Table 1: the fluidanimate two-phase run."""
    return dynamic_experiment(full_ctx, phase_seconds=30.0)


@pytest.fixture(scope="session")
def bench_table():
    """The shared table formatter (indirection for bench files)."""
    return harness.format_table
