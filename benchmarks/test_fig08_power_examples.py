"""Figure 8: per-configuration power estimates for kmeans, swish, x264.

Required shape: LEO's power curve is nearly indistinguishable from the
measured data ("LEO is so accurate that it is hard to distinguish the
two"), capturing local minima/maxima across the saw-tooth configuration
index.
"""

import numpy as np

from conftest import save_results
from repro.core.accuracy import accuracy, mape
from repro.experiments.estimation import example_curves
from repro.experiments.harness import format_table


def test_fig08_power_examples(full_ctx, examples_result, benchmark):
    benchmark.pedantic(
        lambda: example_curves(full_ctx, benchmarks=("x264",),
                               sample_count=20),
        rounds=1, iterations=1)

    rows = []
    payload = {}
    for curves in examples_result:
        leo = curves.estimates["leo"]
        acc = accuracy(leo.powers, curves.true_powers)
        err = mape(leo.powers, curves.true_powers)
        rows.append([curves.benchmark, acc, err,
                     float(curves.true_powers.min()),
                     float(curves.true_powers.max())])
        payload[curves.benchmark] = {
            "accuracy": acc, "mape": err,
            "true_powers": list(curves.true_powers),
            "leo_powers": list(leo.powers),
        }
    print()
    print(format_table(
        ["benchmark", "LEO accuracy", "MAPE", "min W", "max W"],
        rows, title="Figure 8: power estimate curves"))
    save_results("fig08_power_examples", payload)

    for curves in examples_result:
        leo = curves.estimates["leo"]
        assert accuracy(leo.powers, curves.true_powers) > 0.95
        assert mape(leo.powers, curves.true_powers) < 0.05
        # The saw-tooth structure is real: power varies substantially
        # along the configuration index and LEO's curve follows it.
        correlation = np.corrcoef(leo.powers, curves.true_powers)[0, 1]
        assert correlation > 0.97
