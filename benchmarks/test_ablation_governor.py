"""Ablation: heuristics ladder — race-to-idle vs ondemand vs LEO.

The paper compares against race-to-idle; an unmanaged Linux box of the
era would actually run the *ondemand* governor (all cores, reactive
frequency).  This ablation places the three on one ladder for a mix of
scalable and contention-limited applications: ondemand beats
race-to-idle where downclocking is the right move, but neither heuristic
can fix a wrong *allocation* (kmeans), which is exactly the gap LEO's
full-configuration-space estimation closes.
"""

import numpy as np

from conftest import save_results
from repro.estimators.registry import create_estimator
from repro.experiments.harness import (
    DEADLINE_SECONDS,
    estimate_curves,
    format_table,
    random_indices,
    sample_target,
)
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.governor import OndemandGovernor
from repro.runtime.race_to_idle import RaceToIdleController

BENCHMARKS = ("kmeans", "swaptions", "swish", "jacobi")
UTILIZATION = 0.45


def _run_all(ctx, name):
    profile = ctx.profile(name)
    view = ctx.dataset.leave_one_out(name)
    truth = ctx.truth.leave_one_out(name)
    idle = ctx.idle_power()
    work = UTILIZATION * float(truth.true_rates.max()) * DEADLINE_SECONDS

    optimal = EnergyMinimizer(truth.true_rates, truth.true_powers,
                              idle).min_energy(work, DEADLINE_SECONDS)

    machine = ctx.machine(seed_offset=400)
    indices = random_indices(len(ctx.space), 20, ctx.seed + 70)
    rate_obs, power_obs = sample_target(ctx, profile, indices,
                                        seed_offset=71)
    leo_curves = estimate_curves(ctx, view, indices, rate_obs, power_obs,
                                 "leo")
    controller = RuntimeController(
        machine=machine, space=ctx.space, estimator=create_estimator("leo"),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers)
    leo = controller.run(profile, work, DEADLINE_SECONDS,
                         TradeoffEstimate(rates=leo_curves.rates,
                                          powers=leo_curves.powers,
                                          estimator_name="leo"))

    governor = OndemandGovernor(machine, ctx.space)
    ondemand = governor.run(profile, work, DEADLINE_SECONDS)

    racer = RaceToIdleController(machine, ctx.space)
    race = racer.run(profile, work, DEADLINE_SECONDS)

    def adjusted(report):
        fraction = min(report.work_done / work, 1.0) if work > 0 else 1.0
        return report.energy / max(fraction, 1e-6) / optimal

    return {
        "leo": adjusted(leo),
        "ondemand": adjusted(ondemand),
        "race-to-idle": adjusted(race),
        "ondemand_met": bool(ondemand.met_target),
    }


def test_ablation_governor(full_ctx, benchmark):
    def run():
        return {name: _run_all(full_ctx, name) for name in BENCHMARKS}

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, scores["leo"], scores["ondemand"],
             scores["race-to-idle"], scores["ondemand_met"]]
            for name, scores in table.items()]
    print()
    print(format_table(
        ["benchmark", "leo E/opt", "ondemand E/opt", "race E/opt",
         "ondemand met"],
        rows, title=f"Ablation: heuristics ladder at "
                    f"{UTILIZATION:.0%} utilization"))
    save_results("ablation_governor", table)

    # LEO beats both heuristics on every benchmark.
    for name, scores in table.items():
        assert scores["leo"] <= scores["ondemand"] + 0.02, name
        assert scores["leo"] <= scores["race-to-idle"] + 0.02, name
    # Ondemand improves on race-to-idle for the scalable compute app
    # (downclocking is the right lever there).
    assert (table["swaptions"]["ondemand"]
            < table["swaptions"]["race-to-idle"])
    # But no heuristic fixes kmeans' allocation problem.
    leo_kmeans = table["kmeans"]["leo"]
    assert table["kmeans"]["ondemand"] > leo_kmeans + 0.1
    assert table["kmeans"]["race-to-idle"] > leo_kmeans + 0.1
