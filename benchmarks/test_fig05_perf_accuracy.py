"""Figure 5: performance-estimation accuracy across the 25 benchmarks.

Paper: LEO 0.97, Online 0.87, Offline 0.68 on average (Eq. 5 accuracy,
20 random samples, leave-one-out priors, exhaustive-search truth).
Required shape: LEO first by a clear margin; offline trails online on
performance because scaling behaviour differs wildly across apps.
"""

from conftest import PAPER, save_results
from repro.experiments.estimation import accuracy_experiment
from repro.experiments.harness import APPROACHES, format_table


def test_fig05_perf_accuracy(full_ctx, accuracy_result, benchmark):
    # Time one representative unit: a single-benchmark, single-trial run.
    benchmark.pedantic(
        lambda: accuracy_experiment(full_ctx, sample_count=20, trials=1,
                                    benchmarks=["kmeans"]),
        rounds=1, iterations=1)

    result = accuracy_result
    rows = [[name] + [result.perf[name][a] for a in APPROACHES]
            for name in sorted(result.perf)]
    means = result.mean_perf()
    rows.append(["MEAN"] + [means[a] for a in APPROACHES])
    paper = PAPER["fig5_perf_accuracy"]
    rows.append(["PAPER"] + [paper[a] for a in APPROACHES])
    print()
    print(format_table(["benchmark"] + list(APPROACHES), rows,
                       title="Figure 5: performance accuracy (Eq. 5)"))

    save_results("fig05_perf_accuracy",
                 {"per_benchmark": result.perf, "mean": means,
                  "paper": paper})

    # Paper shape: LEO >> online > offline for performance.
    assert means["leo"] > 0.90
    assert means["leo"] > means["online"]
    assert means["online"] > means["offline"]
    assert means["offline"] < 0.85  # offline visibly weak on performance
