"""CI smoke check for the estimation service, end to end over the CLI.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py

Starts a real ``python -m repro serve`` subprocess (ephemeral port, one
worker, admission bound 2), then drives it the way a deployment would:

* concurrent ``sleep`` requests fill the admission budget and the next
  request must be shed with a typed ``ServiceOverloaded`` well inside
  its own deadline — the bounded-broker guarantee;
* a cold ``calibrate-report`` publishes version 1 to the registry and a
  second, warm request returns the identical curves with zero samples —
  the cross-tenant amortization guarantee;
* the broker's metrics must account for every one of those requests;
* the ``shutdown`` op must stop the server process cleanly (exit 0).

Kept out of the ``test_*`` namespace on purpose: it is a CI gate over
the subprocess + socket path, not a figure reproduction.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.service import (  # noqa: E402  (path bootstrap above)
    ServiceAddress,
    ServiceClient,
    ServiceOverloaded,
)

MAX_PENDING = 2


def start_server(registry_dir: str):
    """Launch ``repro serve`` and wait for its SERVING line."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", "127.0.0.1:0", "--registry", registry_dir,
         "--max-pending", str(MAX_PENDING), "--workers", "1",
         "--deadline", "30"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=str(REPO), env=None)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError(
                f"server exited early (rc={process.returncode})")
        if line.startswith("SERVING "):
            return process, ServiceAddress.parse(line.split(None, 1)[1]
                                                 .strip())
    process.kill()
    raise RuntimeError("server never printed SERVING")


def check_admission(address) -> None:
    """Fill the budget with sleeps; the next request must shed fast."""
    occupiers = []

    def occupy():
        with ServiceClient(address, timeout=30.0) as client:
            occupiers.append(client.sleep(1.0, deadline_s=15.0))

    threads = [threading.Thread(target=occupy)
               for _ in range(MAX_PENDING)]
    for thread in threads:
        thread.start()
    wait_for_admitted(address, MAX_PENDING)

    with ServiceClient(address, timeout=30.0) as client:
        started = time.monotonic()
        try:
            client.sleep(0.1, deadline_s=5.0)
        except ServiceOverloaded as exc:
            elapsed = time.monotonic() - started
            assert elapsed < 5.0, f"shed took {elapsed:.1f}s >= deadline"
            assert exc.details.get("max_pending") == MAX_PENDING, exc.details
        else:
            raise AssertionError("request k+1 was admitted past the bound")
    for thread in threads:
        thread.join(30.0)
    assert len(occupiers) == MAX_PENDING, "admitted sleeps must complete"
    print(f"admission: bound {MAX_PENDING} held, overflow shed in "
          f"{elapsed * 1e3:.0f}ms")


def wait_for_admitted(address, count, timeout=10.0) -> None:
    deadline = time.monotonic() + timeout
    with ServiceClient(address, timeout=10.0) as client:
        while time.monotonic() < deadline:
            if client.metrics()["admission"]["admitted"] == count:
                return
            time.sleep(0.02)
    raise AssertionError(f"admitted never reached {count}")


def check_warm_start(address) -> None:
    with ServiceClient(address, timeout=300.0) as client:
        cold = client.calibrate_report("kmeans", space="cores", samples=6,
                                       estimator="leo", deadline_s=240.0)
        warm = client.calibrate_report("kmeans", space="cores", samples=6,
                                       estimator="leo", deadline_s=240.0)
    assert cold["source"] == "calibration" and cold["version"] == 1, cold
    assert warm["source"] == "registry", warm
    assert warm["samples_used"] == 0, warm
    assert warm["rates"] == cold["rates"], "warm curves must be identical"
    assert warm["powers"] == cold["powers"]
    print("warm start: version 1 published, second tenant used 0 samples")


def check_metrics(address) -> None:
    with ServiceClient(address) as client:
        counters = client.metrics()["metrics"]["counters"]
    assert counters.get("service_requests_total", 0) >= 5, counters
    assert counters.get("service_shed_total", 0) >= 1, counters
    print(f"metrics: {counters.get('service_requests_total', 0):.0f} "
          f"requests, {counters.get('service_shed_total', 0):.0f} shed")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="leo_smoke_reg_") as registry:
        process, address = start_server(registry)
        try:
            with ServiceClient(address, timeout=10.0) as client:
                assert client.ping()["pong"] is True
            check_admission(address)
            check_warm_start(address)
            check_metrics(address)
            with ServiceClient(address, timeout=10.0) as client:
                assert client.shutdown() == {"stopping": True}
            process.wait(timeout=30.0)
            assert process.returncode == 0, (
                f"server exited {process.returncode}")
        except BaseException:
            process.kill()
            output = process.stdout.read()
            if output:
                print(f"--- server output ---\n{output}", file=sys.stderr)
            raise
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
