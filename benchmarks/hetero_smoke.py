"""CI smoke check for the heterogeneous-platform subsystem.

Usage::

    PYTHONPATH=src python benchmarks/hetero_smoke.py

Checks the subsystem's two load-bearing guarantees end to end:

* **Homogeneous degeneracy is bit-identical.**  A single-cluster
  :class:`HeteroTopology` built with ``from_topology`` must reproduce
  the plain homogeneous stack exactly — configuration space, noisy and
  noise-free sweeps, idle power, LEO estimates, and the Eq. 1 LP
  schedule all compare with ``==``, not a tolerance.
* **Hetero-awareness beats the homogeneous-ignorant baseline.**  On a
  three-benchmark fixture of the big.LITTLE node, the pipeline that
  sees the full per-cluster space (with transfer priors) completes the
  same work demand for less effective energy, on average, than the
  baseline confined to the big cluster; and a repeated run is
  bit-identical (fixed-seed determinism).

Kept out of the ``test_*`` namespace on purpose: it is a CI gate over
the whole subsystem, not a figure reproduction.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.estimators import (  # noqa: E402
    EstimationProblem,
    LEOEstimator,
    normalize_problem,
)
from repro.experiments import hetero_energy as hx  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    default_context,
    random_indices,
)
from repro.optimize import EnergyMinimizer  # noqa: E402
from repro.platform.config_space import ConfigurationSpace  # noqa: E402
from repro.platform.hetero import (  # noqa: E402
    HeteroMachine,
    HeteroTopology,
    hetero_space,
)
from repro.platform.machine import Machine  # noqa: E402
from repro.platform.topology import PAPER_TOPOLOGY  # noqa: E402

FIXTURE = ("kmeans", "jacobi", "x264")


def check_degeneracy() -> None:
    """Plain stack vs degenerate hetero stack: exact equality."""
    topo = HeteroTopology.from_topology(PAPER_TOPOLOGY)
    space = hetero_space(topo)
    base_space = ConfigurationSpace.paper_space(PAPER_TOPOLOGY)
    assert list(space) == list(base_space), "degenerate space differs"

    ctx = default_context(space_kind="paper", seed=0)
    profile = ctx.profile("kmeans")
    base = Machine(PAPER_TOPOLOGY, seed=123)
    het = HeteroMachine(topo, seed=123)
    assert het.idle_power() == base.idle_power(), "idle power differs"
    for noisy in (False, True):
        r0, p0 = base.sweep(profile, base_space, noisy=noisy)
        r1, p1 = het.sweep(profile, space, noisy=noisy)
        assert np.array_equal(r0, r1), f"rates differ (noisy={noisy})"
        assert np.array_equal(p0, p1), f"powers differ (noisy={noisy})"

    # Estimates and the LP schedule through both stacks, bit for bit.
    view = ctx.dataset.leave_one_out("kmeans")
    indices = random_indices(len(base_space), 24, 7)
    r_obs, _ = base.sweep(profile, base_space, noisy=False)
    observed = r_obs[indices]
    curves = []
    for sp in (base_space, space):
        problem = EstimationProblem(
            features=sp.feature_matrix(), prior=view.prior_rates,
            observed_indices=indices, observed_values=observed)
        normalized, scale = normalize_problem(problem)
        curves.append(LEOEstimator().estimate(normalized) * scale)
    assert np.array_equal(curves[0], curves[1]), "estimates differ"
    truth_r, truth_p = base.sweep(profile, base_space, noisy=False)
    work = 0.5 * float(truth_r.max()) * 20.0
    schedules = [
        EnergyMinimizer(curve, truth_p, base.idle_power()).solve(work, 20.0)
        for curve in curves
    ]
    pairs = [[(s.config_index, s.duration) for s in sch]
             for sch in schedules]
    assert pairs[0] == pairs[1], "LP schedules differ"
    print("degeneracy: space, sweeps, idle, estimates, LP bit-identical")


def check_hetero_beats_baseline() -> None:
    """Hetero-aware wins on effective energy; runs are deterministic."""
    setup = hx.build_setup(benchmarks=FIXTURE)
    runs = hx.hetero_energy_experiment(benchmarks=FIXTURE, setup=setup,
                                       workers=2)
    again = hx.hetero_energy_experiment(benchmarks=FIXTURE, setup=setup,
                                        workers=1)
    assert [dataclass_tuple(r) for r in runs] == \
        [dataclass_tuple(r) for r in again], "workers-count nondeterminism"
    savings = hx.savings_summary(runs)
    assert set(savings) == set(FIXTURE), sorted(savings)
    for name, value in sorted(savings.items()):
        print(f"{name:<10} savings={100.0 * value:5.1f}%")
    mean = float(np.mean(list(savings.values())))
    print(f"mean savings {100.0 * mean:.1f}%")
    assert mean > 0.0, (
        f"hetero-aware pipeline did not beat the baseline: {savings}")


def dataclass_tuple(run: hx.HeteroRun) -> tuple:
    return (run.benchmark, run.mode, run.energy, run.work_target,
            run.work_done, run.met_deadline, run.space_size)


def check_cap_allocation() -> None:
    """Joint water-filling across clusters is never worse than static."""
    for run in hx.hetero_cap_allocation():
        print(f"cap={run.cap_watts:5.0f}W joint={run.joint_watts:6.1f}W "
              f"({run.joint_feasible} ok, {run.joint_mode}) "
              f"static={run.static_watts:6.1f}W ({run.static_feasible} ok)")
        if run.joint_mode != "proportional":
            assert run.joint_feasible >= run.static_feasible, (
                f"joint kept fewer tenants feasible at {run.cap_watts}W")


def main() -> int:
    check_degeneracy()
    check_hetero_beats_baseline()
    check_cap_allocation()
    print("hetero smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
