"""Figure 10: energy vs utilization for kmeans, swish, and x264.

The paper fixes the deadline and sweeps the workload across utilization
demands, measuring the energy each approach's runtime consumes.
Required shape: LEO's curve is the lowest of the estimating approaches
and close to optimal across the full sweep; race-to-idle is clearly
above everything for the scaling-limited applications.
"""

import numpy as np

from conftest import save_results
from repro.experiments.harness import format_table


def test_fig10_energy_curves(energy_curves, benchmark):
    representatives = {"kmeans", "swish", "x264"}
    selected = [c for c in energy_curves if c.benchmark in representatives]
    assert len(selected) == 3

    def summarize():
        return {
            c.benchmark: {a: c.normalized_mean(a)
                          for a in ("leo", "online", "offline",
                                    "race-to-idle")}
            for c in selected
        }

    summary = benchmark.pedantic(summarize, rounds=1, iterations=1)

    rows = []
    payload = {}
    for curve in selected:
        scores = summary[curve.benchmark]
        rows.append([curve.benchmark, scores["leo"], scores["online"],
                     scores["offline"], scores["race-to-idle"]])
        payload[curve.benchmark] = {
            "utilizations": list(curve.utilizations),
            "energy": {a: list(v) for a, v in curve.energy.items()},
            "met": {a: [bool(x) for x in v] for a, v in curve.met.items()},
            "normalized_mean": scores,
        }
    print()
    print(format_table(
        ["benchmark", "leo", "online", "offline", "race-to-idle"],
        rows, title="Figure 10: mean energy / optimal across utilizations"))
    save_results("fig10_energy_curves", payload)

    for curve in selected:
        scores = summary[curve.benchmark]
        # LEO closest to optimal among the estimating approaches.
        assert scores["leo"] <= scores["online"] + 0.02, curve.benchmark
        assert scores["leo"] <= scores["offline"] + 0.02, curve.benchmark
        assert scores["leo"] < 1.15, curve.benchmark
        # Energy grows with utilization for the optimal schedule.
        optimal = np.asarray(curve.energy["optimal"])
        assert optimal[-1] > optimal[0]
    # Race-to-idle is dramatically wasteful on the early-peak app.
    kmeans_scores = summary["kmeans"]
    assert kmeans_scores["race-to-idle"] > 1.5
