"""Ablation: how much prior knowledge does the hierarchy need?

Sweeps the number of offline applications available as priors (the
paper always uses 24) and measures held-out estimation accuracy for LEO
and the k-nearest-neighbour baseline.  Expected shape: steep gains over
the first few applications, saturation well before 24, and LEO at least
matching kNN throughout (the model interpolates *between* neighbours
instead of copying them).
"""

from conftest import save_results
from repro.experiments.harness import format_table, scaled
from repro.experiments.scaling import prior_scaling_experiment


def test_ablation_prior_library_size(full_ctx, benchmark):
    result = benchmark.pedantic(
        lambda: prior_scaling_experiment(
            full_ctx, subsets_per_size=scaled(3, minimum=1)),
        rounds=1, iterations=1)

    rows = []
    for i, size in enumerate(result.library_sizes):
        rows.append([size, result.perf["leo"][i], result.perf["knn"][i]])
    print()
    print(format_table(
        ["prior apps", "leo perf acc", "knn perf acc"], rows,
        title=f"Ablation: prior-library size (targets: "
              f"{', '.join(result.targets)})"))
    save_results("ablation_priors", {
        "library_sizes": list(result.library_sizes),
        "perf": result.perf,
        "targets": list(result.targets),
    })

    leo = result.perf["leo"]
    # More prior knowledge helps: the full library beats a single app.
    assert leo[-1] > leo[0]
    # Saturation: most of the benefit arrives by half the library.
    half_index = len(leo) // 2
    assert leo[half_index] > leo[0] + 0.5 * (leo[-1] - leo[0])
    # The model is never (materially) worse than copying neighbours.
    for leo_acc, knn_acc in zip(result.perf["leo"], result.perf["knn"]):
        assert leo_acc >= knn_acc - 0.08
