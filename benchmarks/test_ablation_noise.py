"""Ablation: robustness to measurement noise.

Sweeps the relative noise on the target's sampled values and measures
estimation accuracy.  Expected shape: LEO degrades gracefully (the
hierarchy's shrinkage absorbs noise), the online regression degrades
fastest (nothing anchors it but the noisy samples), and the offline
mean is flat by construction (it ignores the samples' values except for
scale).
"""

from conftest import save_results
from repro.experiments.harness import format_table
from repro.experiments.noise import noise_experiment


def test_ablation_noise(full_ctx, benchmark):
    result = benchmark.pedantic(lambda: noise_experiment(full_ctx),
                                rounds=1, iterations=1)

    rows = []
    for i, level in enumerate(result.noise_levels):
        rows.append([f"{level:.0%}", result.perf["leo"][i],
                     result.perf["online"][i], result.perf["offline"][i]])
    print()
    print(format_table(
        ["sample noise", "leo", "online", "offline"], rows,
        title="Ablation: accuracy vs measurement noise"))
    save_results("ablation_noise", {
        "noise_levels": list(result.noise_levels),
        "perf": result.perf,
        "benchmarks": list(result.benchmarks),
    })

    leo = result.perf["leo"]
    online = result.perf["online"]
    # Clean samples: both sample-driven approaches are strong.
    assert leo[0] > 0.9
    # At the highest noise, LEO retains most of its accuracy and leads
    # the online regression clearly.
    assert leo[-1] > 0.75
    assert leo[-1] > online[-1] + 0.05
    # Degradation is monotone-ish for the online approach (noise hurts).
    assert online[-1] < online[0]
