"""CI smoke check for the resilience layer (docs/RESILIENCE.md).

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

Runs one benchmark on the small ``cores`` space under the shipped
``default`` fault plan with a fixed seed, and checks the acceptance
criteria of the resilience work end to end:

* **zero crashes** — the controller survives every fault class in the
  default plan without an unhandled exception;
* **bounded violations** — faulted windows missing the work target are
  capped (the baseline misses none);
* **recovery** — faults demote the estimator down the ladder while
  active, and the controller promotes back to LEO (tier 0) once they
  clear;
* **bounded energy overhead** — surviving the faults costs a bounded
  premium over the fault-free baseline;
* **null-plan identity** — a chaos run under the empty ``none`` plan is
  bit-identical to the fault-free baseline (the hooks are free);
* **determinism** — a repeated run with the same seed reproduces the
  report exactly.

Kept out of the ``test_*`` namespace on purpose: it is a CI gate over
the whole degrade-and-recover loop, not a figure reproduction.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.experiments.chaos import chaos_run  # noqa: E402
from repro.experiments.harness import default_context  # noqa: E402

SEED = 0
BENCHMARK = "kmeans"
MAX_VIOLATIONS = 1
MAX_ENERGY_OVERHEAD = 0.60


def main() -> int:
    ctx = default_context(space_kind="cores", seed=SEED)

    report = chaos_run(ctx, benchmark=BENCHMARK, plan="default",
                       seed=SEED)
    print(f"default plan: survived={report.survived} "
          f"windows={report.windows_run}/{report.windows} "
          f"violations={report.violations} "
          f"overhead={report.energy_overhead:+.1%} "
          f"demotions={report.demotions} promotions={report.promotions} "
          f"final_tier={report.final_tier}")
    print(f"faults: {report.fault_counts}")

    assert report.survived, f"controller crashed: {report.error}"
    assert report.windows_run == report.windows
    assert report.baseline_violations == 0, (
        f"fault-free baseline missed {report.baseline_violations} targets")
    assert report.violations <= MAX_VIOLATIONS, (
        f"{report.violations} faulted windows missed the target "
        f"(allowed {MAX_VIOLATIONS})")
    assert report.fault_counts, "the default plan injected nothing"
    assert report.demotions >= 1, (
        "the default plan should force at least one demotion")
    assert report.recovered and report.final_tier == "leo", (
        f"expected promotion back to LEO after the faults cleared, "
        f"ended at {report.final_tier!r}")
    assert report.promotions >= report.demotions, (
        f"{report.demotions} demotions but only {report.promotions} "
        f"promotions: the ladder never climbed all the way back")
    assert 0.0 <= report.energy_overhead <= MAX_ENERGY_OVERHEAD, (
        f"energy overhead {report.energy_overhead:+.1%} outside "
        f"[0, {MAX_ENERGY_OVERHEAD:.0%}]")

    null = chaos_run(ctx, benchmark=BENCHMARK, plan="none", seed=SEED)
    assert null.survived and not null.fault_counts
    assert null.fault_energy == null.baseline_energy, (
        "the empty plan must be bit-identical to the fault-free baseline")
    assert null.demotions == 0 and null.violations == 0

    repeat = chaos_run(ctx, benchmark=BENCHMARK, plan="default",
                       seed=SEED)
    assert repeat == report, "fixed-seed chaos run must be bit-identical"

    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
