"""Figure 9: estimated vs true Pareto frontiers (kmeans, swish, x264).

The paper plots each approach's estimated convex hull of power/
performance tradeoffs against the true hull.  Required shape: LEO's
hull sits closest to the truth (smallest mean vertical gap in Watts);
estimates below the true hull mean missed deadlines, above it wasted
energy.
"""

from conftest import save_results
from repro.experiments.frontier import frontier_experiment, frontier_summary
from repro.experiments.harness import format_table


def test_fig09_pareto_frontiers(full_ctx, benchmark):
    comparisons = benchmark.pedantic(
        lambda: frontier_experiment(full_ctx, sample_count=20),
        rounds=1, iterations=1)

    summary = frontier_summary(comparisons)
    rows = []
    for name, gaps in summary.items():
        rows.append([name] + [gaps.get(a, float("nan"))
                              for a in ("leo", "online", "offline")])
    print()
    print(format_table(
        ["benchmark", "leo gap (W)", "online gap (W)", "offline gap (W)"],
        rows, title="Figure 9: mean |estimated hull - true hull|"))

    save_results("fig09_pareto", {
        name: {
            approach: [[float(r), float(p)] for r, p in hull]
            for approach, hull in comparison.hulls.items()
        }
        for name, comparison in zip(summary, comparisons)
    })

    for name, gaps in summary.items():
        # LEO's frontier is the most faithful for every representative.
        assert gaps["leo"] <= gaps["online"] + 1e-9, name
        assert gaps["leo"] <= gaps["offline"] + 1e-9, name
        # And it is tight in absolute terms (a few Watts on a ~100-230 W
        # hull).
        assert gaps["leo"] < 8.0, name
