"""Figure 7: per-configuration performance estimates for the
representative applications (kmeans, swish, x264) across all 1024
configurations.

Required shape (Section 6.3): LEO's curve tracks the truth closely —
including the saw-tooth from the configuration-index flattening — and
captures each application's peak-performance configuration despite their
unusual scaling (kmeans peaks at 8 threads, swish at 16, x264 is
essentially flat past 16).
"""

import numpy as np

from conftest import save_results
from repro.core.accuracy import accuracy
from repro.experiments.estimation import example_curves
from repro.experiments.harness import format_table


def test_fig07_perf_examples(full_ctx, examples_result, benchmark):
    benchmark.pedantic(
        lambda: example_curves(full_ctx, benchmarks=("kmeans",),
                               sample_count=20),
        rounds=1, iterations=1)

    rows = []
    payload = {}
    for curves in examples_result:
        true_peak = int(np.argmax(curves.true_rates))
        leo = curves.estimates["leo"]
        acc = accuracy(leo.rates, curves.true_rates)
        est_peak = curves.peak_rate_config("leo")
        true_at_est = curves.true_rates[est_peak]
        peak_quality = float(true_at_est / curves.true_rates[true_peak])
        rows.append([curves.benchmark, acc, true_peak, est_peak,
                     peak_quality])
        payload[curves.benchmark] = {
            "accuracy": acc,
            "true_peak_config": true_peak,
            "leo_peak_config": est_peak,
            "peak_quality": peak_quality,
            "true_rates": list(curves.true_rates),
            "leo_rates": list(leo.rates),
            "sampled": [int(i) for i in curves.sampled_indices],
        }
    print()
    print(format_table(
        ["benchmark", "LEO accuracy", "true peak cfg", "LEO peak cfg",
         "true rate @ LEO peak / true peak"],
        rows, title="Figure 7: performance estimate curves"))
    save_results("fig07_perf_examples", payload)

    for curves in examples_result:
        leo = curves.estimates["leo"]
        # LEO tracks the truth closely over the full space...
        assert accuracy(leo.rates, curves.true_rates) > 0.9, curves.benchmark
        # ...and its estimated peak is a near-optimal configuration.
        est_peak = curves.peak_rate_config("leo")
        assert (curves.true_rates[est_peak]
                >= 0.9 * curves.true_rates.max()), curves.benchmark
