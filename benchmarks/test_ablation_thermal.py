"""Ablation: adapting to thermal throttling (extension).

With the RC thermal model enabled, sustained load derates the machine
mid-run — a phase change the application didn't cause.  The adaptive
runtime (phase detector + re-calibration) keeps meeting the demand on
the derated machine; the static runtime, still believing its cool-
machine model, does not.
"""

from conftest import save_results
from repro.experiments.harness import format_table
from repro.experiments.thermal_study import thermal_experiment


def test_ablation_thermal(full_ctx, benchmark):
    result = benchmark.pedantic(lambda: thermal_experiment(full_ctx),
                                rounds=1, iterations=1)

    rows = [
        ["adaptive", result.adaptive.met_target,
         result.adaptive.reestimations, result.adaptive.energy,
         result.adaptive.work_done / result.adaptive.work_target],
        ["static", result.static.met_target,
         result.static.reestimations, result.static.energy,
         result.static.work_done / result.static.work_target],
    ]
    print()
    print(format_table(
        ["runtime", "met demand", "re-estimations", "energy (J)",
         "work fraction"],
        rows, title="Ablation: thermal throttling "
                    f"(throttled: {result.throttled})"))
    save_results("ablation_thermal", {
        "throttled": result.throttled,
        "adaptive": {
            "met": bool(result.adaptive.met_target),
            "reestimations": result.adaptive.reestimations,
            "energy": result.adaptive.energy,
            "work_fraction": result.adaptive.work_done
            / result.adaptive.work_target,
        },
        "static": {
            "met": bool(result.static.met_target),
            "reestimations": result.static.reestimations,
            "energy": result.static.energy,
            "work_fraction": result.static.work_done
            / result.static.work_target,
        },
    })

    assert result.throttled
    assert result.adaptive.met_target
    assert result.adaptive.reestimations >= 1
    assert result.static.reestimations == 0
    # The static runtime delivers less of the demand on the hot machine.
    assert (result.static.work_done / result.static.work_target
            < result.adaptive.work_done / result.adaptive.work_target
            + 1e-9)
