"""CI smoke check for distributed observability.

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke.py [--artifacts DIR]

The gate behind docs/OBSERVABILITY.md's two core promises:

* **Zero cost when off, zero interference when on** — the mini
  accuracy sweep (perf_smoke's shape) must produce bit-identical
  results untraced and under a fully-recording bundle with two pool
  workers.  Tracing draws no RNG and reorders no work, so any
  divergence is a real instrumentation bug.
* **No span left behind** — the traced sweep plus one traced service
  round trip must merge into a single orphan-free tree containing the
  pool-worker and server-side shards, with worker counters aggregated
  into the parent registry.

Always writes ``trace.jsonl``, ``metrics.json`` and ``slo.json`` into
the artifacts directory (default ``obs-artifacts/``), so a CI failure
uploads the exact trace that misbehaved.

Kept out of the ``test_*`` namespace on purpose: it is a CI gate, not a
figure reproduction.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.experiments.estimation import accuracy_experiment  # noqa: E402
from repro.experiments.harness import default_context  # noqa: E402
from repro.obs import (  # noqa: E402
    Observability,
    merge_spans,
    orphan_spans,
    use,
    write_trace,
)
from repro.service import (  # noqa: E402
    EstimationService,
    ServerThread,
    ServiceClient,
)

#: perf_smoke's mini-sweep shape, reused so the two gates time the same
#: work.
SWEEP = {"num_benchmarks": 3, "trials": 2, "sample_count": 20}
WORKERS = 2


def run_sweep(observability):
    ctx = default_context(space_kind="paper", seed=0)
    names = ctx.benchmark_names[:SWEEP["num_benchmarks"]]
    with use(observability):
        return accuracy_experiment(
            ctx, sample_count=SWEEP["sample_count"],
            trials=SWEEP["trials"], benchmarks=names, workers=WORKERS)


def traced_service_round_trip(observability):
    """One traced request over a real socket; returns the server shard."""
    with ServerThread(EstimationService(), max_pending=4,
                      max_workers=1) as thread:
        with ServiceClient(thread.bound_address, timeout=60.0) as client:
            with use(observability):
                client.call("sleep", {"seconds": 0.0})
        return thread.server.request_spans


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", default="obs-artifacts",
                        help="directory for trace/metrics/slo artifacts")
    args = parser.parse_args()
    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    baseline = run_sweep(None)

    ob = Observability.recording()
    traced = run_sweep(ob)
    server_spans = traced_service_round_trip(ob)
    elapsed = time.perf_counter() - started

    merged = merge_spans(ob.tracer.spans, server_spans)
    write_trace(artifacts / "trace.jsonl", merged)
    ob.metrics.write_json(artifacts / "metrics.json")
    (artifacts / "slo.json").write_text(
        json.dumps(ob.slo.report(), indent=2) + "\n")

    failures = []
    if traced.perf != baseline.perf or traced.power != baseline.power:
        failures.append(
            "tracing changed experiment results: the traced sweep must "
            "be bit-identical to the untraced one")

    orphans = orphan_spans(merged)
    if orphans:
        failures.append(
            f"{len(orphans)} orphaned spans in the merged trace "
            f"(first: {orphans[0]!r})")

    names = {span.name for span in merged}
    for required in ("harness.parallel_map", "harness.cell",
                     "client.call", "service.request"):
        if required not in names:
            failures.append(f"span {required!r} missing from the merged "
                            "trace — a shard was dropped")

    counters = ob.metrics.snapshot()["counters"]
    cells = int(ob.metrics.snapshot()["gauges"].get(
        "harness_cells_total", 0))
    worker_cells = counters.get("harness_worker_cells_total", 0)
    completed = counters.get("harness_cells_completed_total", 0)
    if worker_cells != completed or worker_cells <= 0:
        failures.append(
            f"worker registries did not aggregate: "
            f"{worker_cells:.0f} worker cells vs {completed:.0f} "
            "completed in the parent")

    print(f"sweep x2 + service round trip: {elapsed:.2f}s, "
          f"{len(merged)} merged spans, {cells} cells in the last map, "
          f"{worker_cells:.0f} worker cells aggregated")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"artifacts in {artifacts}/", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
