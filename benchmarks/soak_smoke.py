"""CI smoke check for the soak harness (docs/SOAK.md).

Usage::

    PYTHONPATH=src python benchmarks/soak_smoke.py

Runs the full acceptance soak — two simulated days, 16 tenants, the
``default`` phased incident plan, fixed seed — and checks the soak
work's acceptance criteria end to end:

* **every invariant holds** — cap-never-exceeded, typed-errors-only,
  crash-resume-bit-equal, breaker-recloses, bounded-memory,
  soak-survives (the report's violation list is empty);
* **real chaos** — the plan actually injected faults, demoted the
  canary at least once, and the ladder climbed back to LEO;
* **every incident recovers** — each scheduled incident is followed by
  a fully healthy segment (finite MTTR);
* **time compression** — two simulated days complete in under a minute
  of wall time;
* **determinism** — a second run of the same config produces a
  bit-identical fingerprint (the report hash excludes wall-derived
  fields, so this is exact).

On failure the full report is written to ``obs-artifacts/`` for the CI
tab.  Kept out of the ``test_*`` namespace on purpose: it is a CI gate
over the whole soak loop, not a figure reproduction.
"""

from __future__ import annotations

import json
import logging
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.soak import SoakConfig, soak_run  # noqa: E402

MAX_WALL_S = 60.0
MIN_AVAILABILITY = 0.90


def _dump(report, name: str) -> None:
    target = REPO / "obs-artifacts" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = report.to_dict()
    payload["fingerprint"] = report.fingerprint
    target.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"report -> {target}", file=sys.stderr)


def main() -> int:
    logging.disable(logging.WARNING)  # the soak *injects* failures
    config = SoakConfig()  # 2 simulated days, 16 tenants, default plan

    report = soak_run(config)
    print(f"default soak: passed={report.passed} "
          f"segments={report.segments_run} "
          f"simulated={report.simulated_s / 86400.0:.2f}d "
          f"wall={report.wall_s:.1f}s ({report.sim_per_wall:.0f}x) "
          f"hit={report.deadline_hit_rate:.3f} "
          f"avail={report.availability:.3f} "
          f"demotions={report.canary_demotions} "
          f"promotions={report.canary_promotions} "
          f"tier={report.canary_final_tier}")
    print(f"faults: {report.fault_counts}")

    try:
        assert report.passed, (
            f"invariant violations: "
            f"{[v.to_dict() for v in report.violations]}")
        assert report.simulated_s >= 2 * 86400.0, (
            f"soak covered only {report.simulated_s:.0f} simulated "
            f"seconds")
        assert report.wall_s < MAX_WALL_S, (
            f"soak took {report.wall_s:.1f}s wall "
            f"(budget {MAX_WALL_S:.0f}s)")
        assert report.fault_counts, "the default plan injected nothing"
        assert report.canary_demotions >= 1, (
            "the estimator storms should force at least one demotion")
        assert report.canary_final_tier == "leo", (
            f"canary ended degraded at {report.canary_final_tier!r}")
        assert report.availability >= MIN_AVAILABILITY, (
            f"availability {report.availability:.3f} below "
            f"{MIN_AVAILABILITY}")
        assert report.incidents, "the default plan scheduled no incidents"
        unrecovered = [i.name for i in report.incidents if not i.recovered]
        assert not unrecovered, (
            f"incidents never recovered: {unrecovered}")
        assert report.resume_probes >= 1, "no crash-resume probe ran"

        repeat = soak_run(config)
        assert repeat.fingerprint == report.fingerprint, (
            f"fixed-seed soak not bit-identical: "
            f"{report.fingerprint} != {repeat.fingerprint}")
    except AssertionError:
        _dump(report, "soak_smoke_failure.json")
        raise

    print(f"fingerprint: {report.fingerprint}")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
