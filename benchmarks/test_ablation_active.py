"""Ablation: uncertainty-guided (active) sampling vs random sampling.

An extension beyond the paper (DESIGN.md section 5): LEO's posterior
variance tells the runtime where measuring next is most informative.
This ablation compares estimation accuracy at small sample budgets for
random sampling (the paper's protocol) against active acquisition, on
the hardest benchmarks (early scaling peaks that sparse random samples
often miss).
"""

import numpy as np

from conftest import save_results
from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.experiments.harness import format_table, sample_target
from repro.runtime.active_sampling import ActiveCalibrator
from repro.runtime.sampling import RandomSampler

BENCHMARKS = ("kmeans", "kmeansnf", "bfs", "filebound")
BUDGETS = (8, 12, 16)


def _random_accuracy(ctx, name, budget, trials=3):
    view = ctx.dataset.leave_one_out(name)
    truth = ctx.truth.leave_one_out(name).true_rates
    scores = []
    for trial in range(trials):
        indices = RandomSampler(seed=100 + trial).select(len(ctx.space),
                                                         budget)
        rate_obs, _ = sample_target(ctx, ctx.profile(name), indices,
                                    seed_offset=trial)
        problem = EstimationProblem(
            features=ctx.features, prior=view.prior_rates,
            observed_indices=indices, observed_values=rate_obs)
        normalized, scale = normalize_problem(problem)
        estimate = LEOEstimator().estimate(normalized) * scale
        scores.append(accuracy(estimate, truth))
    return float(np.mean(scores))


def _active_accuracy(ctx, name, budget):
    view = ctx.dataset.leave_one_out(name)
    truth = ctx.truth.leave_one_out(name).true_rates
    calibrator = ActiveCalibrator(
        machine=ctx.machine(seed_offset=900), space=ctx.space,
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        seed_count=min(6, budget), batch_size=2)
    result = calibrator.calibrate(ctx.profile(name), budget)
    return accuracy(result.rates, truth)


def test_ablation_active_sampling(full_ctx, benchmark):
    def run():
        table = {}
        for name in BENCHMARKS:
            table[name] = {
                budget: {
                    "random": _random_accuracy(full_ctx, name, budget),
                    "active": _active_accuracy(full_ctx, name, budget),
                }
                for budget in BUDGETS
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, by_budget in table.items():
        for budget, scores in by_budget.items():
            rows.append([name, budget, scores["random"], scores["active"]])
    print()
    print(format_table(
        ["benchmark", "budget", "random acc", "active acc"],
        rows, title="Ablation: random vs uncertainty-guided sampling"))
    save_results("ablation_active", table)

    # At the smallest budget, active acquisition should not lose to
    # random on average, and nothing should collapse.
    smallest = BUDGETS[0]
    random_mean = np.mean([table[n][smallest]["random"] for n in BENCHMARKS])
    active_mean = np.mean([table[n][smallest]["active"] for n in BENCHMARKS])
    assert active_mean > random_mean - 0.05
    for name in BENCHMARKS:
        # filebound's near-flat curve makes Eq. (5) unforgiving; 0.6 is
        # already a tight absolute fit there (see DESIGN.md).
        assert table[name][BUDGETS[-1]]["active"] > 0.6, name
