"""Ablation: EM initialization (paper Section 5.5).

"The EM algorithm's convergence is dependent on the initial model. We
can initialize the algorithm randomly.  Empirically, however, we observe
that the initialization of mu with the estimates from the online or
offline approaches improves LEO's accuracy."

This ablation fits LEO with the offline-seeded initialization and with
random initializations under a tight iteration budget and compares
accuracy.
"""

import numpy as np

from conftest import save_results
from repro.core.accuracy import accuracy
from repro.core.em import EMConfig
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.experiments.harness import (
    format_table,
    random_indices,
    sample_target,
)

BENCHMARKS = ("kmeans", "swish", "x264", "bfs", "jacobi")


def _accuracy_with(ctx, name, init, seed, budget):
    view = ctx.dataset.leave_one_out(name)
    truth = ctx.truth.leave_one_out(name).true_rates
    indices = random_indices(len(ctx.space), 20, seed=ctx.seed + 31)
    rate_obs, _ = sample_target(ctx, ctx.profile(name), indices,
                                seed_offset=17)
    problem = EstimationProblem(
        features=ctx.features, prior=view.prior_rates,
        observed_indices=indices, observed_values=rate_obs)
    normalized, scale = normalize_problem(problem)
    estimator = LEOEstimator(em_config=EMConfig(max_iterations=budget,
                                                tol=1e-9),
                             init=init, seed=seed)
    return accuracy(estimator.estimate(normalized) * scale, truth)


def test_ablation_initialization(full_ctx, benchmark):
    budget = 2  # tight budget exposes initialization sensitivity

    def run():
        rows = {}
        for name in BENCHMARKS:
            offline_acc = _accuracy_with(full_ctx, name, "offline", 0,
                                         budget)
            online_acc = _accuracy_with(full_ctx, name, "online", 0,
                                        budget)
            random_accs = [
                _accuracy_with(full_ctx, name, "random", seed, budget)
                for seed in range(3)
            ]
            rows[name] = (offline_acc, online_acc, float(np.mean(random_accs)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [[name, offline_acc, online_acc, random_acc]
             for name, (offline_acc, online_acc, random_acc)
             in rows.items()]
    print()
    print(format_table(
        ["benchmark", "offline-init acc", "online-init acc",
         "random-init acc (mean of 3)"],
        table, title=f"Ablation: EM initialization ({budget} iterations)"))
    save_results("ablation_init", {
        name: {"offline": o, "online": n, "random": r}
        for name, (o, n, r) in rows.items()
    })

    offline_mean = np.mean([o for o, _, _ in rows.values()])
    online_mean = np.mean([n for _, n, _ in rows.values()])
    random_mean = np.mean([r for _, _, r in rows.values()])
    # Section 5.5's observation: informed initialization (offline or
    # online) helps — or at worst matches — under a tight budget.
    assert offline_mean >= random_mean - 0.01
    assert online_mean >= random_mean - 0.05
