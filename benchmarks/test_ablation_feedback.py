"""Ablation: control strategy on the learned hull (paper Section 7).

Two ways to act on LEO's estimates: re-solve the Eq. (1) LP from the
remaining work every quantum (this repo's default runtime), or hold the
rate reference with one integral controller stepping along the hull (the
CALOREE-style coupling the paper's Section 7 anticipates).  Both consume
the same LEO calibration; the comparison isolates the control layer.

Expected shape: near-identical energy when the model is accurate; both
meet the demand; the feedback controller does no run-time optimization
(one hull lookup per quantum).
"""

from conftest import save_results
from repro.estimators.registry import create_estimator
from repro.experiments.harness import (
    DEADLINE_SECONDS,
    estimate_curves,
    format_table,
    random_indices,
    sample_target,
)
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.feedback import HullRateController

BENCHMARKS = ("kmeans", "swish", "x264", "jacobi")
UTILIZATION = 0.5


def _compare(ctx, name):
    profile = ctx.profile(name)
    view = ctx.dataset.leave_one_out(name)
    truth = ctx.truth.leave_one_out(name)
    idle = ctx.idle_power()
    work = UTILIZATION * float(truth.true_rates.max()) * DEADLINE_SECONDS
    optimal = EnergyMinimizer(truth.true_rates, truth.true_powers,
                              idle).min_energy(work, DEADLINE_SECONDS)

    indices = random_indices(len(ctx.space), 20, ctx.seed + 80)
    rate_obs, power_obs = sample_target(ctx, profile, indices,
                                        seed_offset=81)
    curves = estimate_curves(ctx, view, indices, rate_obs, power_obs, "leo")
    estimate = TradeoffEstimate(rates=curves.rates, powers=curves.powers,
                                estimator_name="leo")

    machine = ctx.machine(seed_offset=450)
    lp_controller = RuntimeController(
        machine=machine, space=ctx.space, estimator=create_estimator("leo"),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers)
    lp_report = lp_controller.run(profile, work, DEADLINE_SECONDS, estimate)

    feedback = HullRateController(machine, ctx.space)
    fb_report = feedback.run(profile, work, DEADLINE_SECONDS, estimate)

    def adjusted(report):
        fraction = min(report.work_done / work, 1.0)
        return report.energy / max(fraction, 1e-6) / optimal

    return {
        "lp-resolve": adjusted(lp_report),
        "hull-feedback": adjusted(fb_report),
        "lp_met": bool(lp_report.met_target),
        "fb_met": bool(fb_report.met_target),
    }


def test_ablation_feedback_control(full_ctx, benchmark):
    def run():
        return {name: _compare(full_ctx, name) for name in BENCHMARKS}

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, scores["lp-resolve"], scores["hull-feedback"],
             scores["lp_met"], scores["fb_met"]]
            for name, scores in table.items()]
    print()
    print(format_table(
        ["benchmark", "LP re-solve E/opt", "hull feedback E/opt",
         "LP met", "feedback met"],
        rows, title=f"Ablation: control strategy at "
                    f"{UTILIZATION:.0%} utilization (same LEO model)"))
    save_results("ablation_feedback", table)

    for name, scores in table.items():
        # Both controllers meet the demand from the same model.
        assert scores["lp_met"], name
        assert scores["fb_met"], name
        # And land within a few percent of each other near the optimum.
        assert scores["hull-feedback"] < 1.15, name
        assert abs(scores["hull-feedback"] - scores["lp-resolve"]) < 0.10, name
