"""Figure 12: estimation accuracy vs number of sampled configurations.

Two structural features must reproduce exactly (they are stated in the
paper's caption): the online baseline "cannot perform below 15 samples
because the design matrix of the regression model would be rank
deficient — effectively 0 accuracy", and "with 0 samples, LEO behaves as
the offline method and its accuracy increases with the sample size until
it quickly reaches near optimal accuracy".
"""

import numpy as np

from conftest import save_results
from repro.experiments.harness import format_table


def test_fig12_sensitivity(sensitivity_result, benchmark):
    result = benchmark.pedantic(lambda: sensitivity_result,
                                rounds=1, iterations=1)

    rows = []
    for i, size in enumerate(result.sizes):
        rows.append([size,
                     result.perf["leo"][i], result.perf["online"][i],
                     result.power["leo"][i], result.power["online"][i]])
    print()
    print(format_table(
        ["samples", "perf leo", "perf online", "power leo",
         "power online"],
        rows,
        title=(f"Figure 12 (offline reference: perf "
               f"{result.offline_perf:.3f}, power "
               f"{result.offline_power:.3f})")))
    save_results("fig12_sensitivity", {
        "sizes": list(result.sizes),
        "perf": result.perf, "power": result.power,
        "offline_perf": result.offline_perf,
        "offline_power": result.offline_power,
    })

    sizes = np.array(result.sizes)
    online_perf = np.array(result.perf["online"])
    leo_perf = np.array(result.perf["leo"])

    # Online: zero accuracy strictly below 15 samples, positive at >= 15.
    assert (online_perf[sizes < 15] == 0.0).all()
    assert (online_perf[sizes >= 15] > 0.0).all()

    # LEO at 0 samples equals the offline reference.
    assert leo_perf[0] == np.float64(result.offline_perf)
    # LEO grows quickly and saturates near optimal accuracy.
    assert leo_perf[-1] > 0.9
    assert leo_perf[-1] >= leo_perf[0]
    # LEO dominates online at every sample size.
    assert (leo_perf >= online_perf - 0.02).all()
