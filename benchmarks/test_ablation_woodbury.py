"""Ablation: Woodbury masked E-step vs the literal dense Eq. (3).

Both compute the same posterior (property-tested in the unit suite);
this ablation measures the cost difference on a realistically sized
hierarchy, which is why the Woodbury path is the default.  The dense
path inverts an n x n matrix per application per iteration; Woodbury
pays one factorization per unique mask.
"""

import time

import numpy as np

from conftest import save_results
from repro.core.em import EMConfig, EMEngine
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.experiments.harness import format_table

#: Dense Eq. (3) on the full 1024-config space would invert 25 matrices
#: of 1024^2 per iteration; the ablation uses a mid-sized space so the
#: dense arm finishes quickly while the asymmetry stays obvious.
NUM_CONFIGS = 192
NUM_APPS = 12


def _observations(seed=0):
    rng = np.random.default_rng(seed)
    mu = rng.standard_normal(NUM_CONFIGS)
    a = rng.standard_normal((NUM_CONFIGS, NUM_CONFIGS))
    sigma = (a @ a.T) / NUM_CONFIGS + 0.3 * np.eye(NUM_CONFIGS)
    z = rng.multivariate_normal(mu, sigma, size=NUM_APPS)
    y = z + 0.05 * rng.standard_normal(z.shape)
    mask = np.ones((NUM_APPS, NUM_CONFIGS), dtype=bool)
    mask[-1] = False
    mask[-1, rng.choice(NUM_CONFIGS, 20, replace=False)] = True
    return ObservationSet(np.where(mask, y, 0.0), mask)


def test_ablation_woodbury(benchmark):
    obs = _observations()
    config = dict(max_iterations=4, tol=1e-12)

    def run_woodbury():
        engine = EMEngine(prior=NIWPrior.paper_default(),
                          config=EMConfig(use_woodbury=True, **config))
        return engine.fit(obs)

    def run_dense():
        engine = EMEngine(prior=NIWPrior.paper_default(),
                          config=EMConfig(use_woodbury=False, **config))
        return engine.fit(obs)

    fast_result = benchmark.pedantic(run_woodbury, rounds=1, iterations=1)

    started = time.perf_counter()
    slow_result = run_dense()
    dense_seconds = time.perf_counter() - started
    started = time.perf_counter()
    run_woodbury()
    woodbury_seconds = time.perf_counter() - started

    print()
    print(format_table(
        ["E-step", "seconds", "target curve max |delta|"],
        [
            ["woodbury", woodbury_seconds, 0.0],
            ["dense Eq.(3)", dense_seconds,
             float(np.max(np.abs(fast_result.zhat - slow_result.zhat)))],
        ],
        title=(f"Ablation: E-step implementation "
               f"({NUM_APPS} apps x {NUM_CONFIGS} configs, 4 iterations)")))
    save_results("ablation_woodbury", {
        "woodbury_seconds": woodbury_seconds,
        "dense_seconds": dense_seconds,
        "max_abs_delta": float(
            np.max(np.abs(fast_result.zhat - slow_result.zhat))),
    })

    # Identical math...
    np.testing.assert_allclose(fast_result.zhat, slow_result.zhat,
                               rtol=1e-5, atol=1e-7)
    # ...at a visibly different price.
    assert woodbury_seconds < dense_seconds
