"""Figure 6: power-estimation accuracy across the 25 benchmarks.

Paper: LEO 0.98, Online 0.85, Offline 0.89.  Required shape: LEO first;
offline is *stronger* on power than on performance (applications' power
responses are far more alike than their scaling), so offline and online
are close, with offline typically ahead.
"""

from conftest import PAPER, save_results
from repro.experiments.estimation import accuracy_experiment
from repro.experiments.harness import APPROACHES, format_table


def test_fig06_power_accuracy(full_ctx, accuracy_result, benchmark):
    benchmark.pedantic(
        lambda: accuracy_experiment(full_ctx, sample_count=20, trials=1,
                                    benchmarks=["swish"]),
        rounds=1, iterations=1)

    result = accuracy_result
    rows = [[name] + [result.power[name][a] for a in APPROACHES]
            for name in sorted(result.power)]
    means = result.mean_power()
    rows.append(["MEAN"] + [means[a] for a in APPROACHES])
    paper = PAPER["fig6_power_accuracy"]
    rows.append(["PAPER"] + [paper[a] for a in APPROACHES])
    print()
    print(format_table(["benchmark"] + list(APPROACHES), rows,
                       title="Figure 6: power accuracy (Eq. 5)"))

    save_results("fig06_power_accuracy",
                 {"per_benchmark": result.power, "mean": means,
                  "paper": paper})

    # Paper shape: LEO first; offline competitive on power (unlike perf).
    assert means["leo"] > 0.93
    assert means["leo"] >= means["online"]
    assert means["leo"] >= means["offline"]
    perf_means = result.mean_perf()
    assert means["offline"] > perf_means["offline"] + 0.1
