#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from benchmarks/results/.

Run after a full benchmark pass:

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_experiments_md.py

Prepends the reproduction preamble (protocol and shape criteria) to the
tables rendered by :mod:`repro.reporting.experiment_report`.
"""

import pathlib
import sys

from repro.reporting.experiment_report import render_markdown

PREAMBLE = """\
# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (Section 6), reproduced
on the simulated platform, plus the extension ablations DESIGN.md §5
lists.  Regenerate after a benchmark pass with:

```bash
pytest benchmarks/ --benchmark-only        # writes benchmarks/results/*.json
python benchmarks/make_experiments_md.py   # rewrites this file
```

## How to read the numbers

The substrate is an analytic simulator, not the authors' Xeon testbed,
so absolute Joules/Watts/heartbeats differ by construction.  What the
reproduction commits to — and what the benchmark assertions enforce —
is the paper's *shape*:

* **orderings** (LEO most accurate; race-to-idle most wasteful; offline
  stronger on power than on performance),
* **approximate factors** (LEO within a few percent of optimal energy;
  heuristics tens of percent above),
* **structural features** (the online baseline's 15-sample rank-
  deficiency cliff; LEO ≡ offline at zero samples; kmeans' 8-core peak;
  every approach meeting the performance goal through the phase change).

Protocol notes: 20 random samples of 1024 configurations (< 2 % of the
space), leave-one-out priors over the 25-benchmark suite, Eq. (5)
accuracy against noise-free exhaustive-search truth, deadline-energy
accounting with energy charged per unit of completed work (DESIGN.md §2
documents the two explicit protocol choices).  Trials per figure follow
`REPRO_BENCH_SCALE` (1.0 for the numbers below).

"""


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent
    results = root / "results"
    body = render_markdown(results)
    # Drop the renderer's own H1 header; the preamble provides it.
    lines = body.splitlines()
    while lines and not lines[0].startswith("## "):
        lines.pop(0)
    output = PREAMBLE + "\n".join(lines) + "\n"
    target = root.parent / "EXPERIMENTS.md"
    target.write_text(output)
    print(f"wrote {target} ({len(output.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
