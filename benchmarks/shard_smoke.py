"""CI smoke check for the sharded service: fleet, wire, and chaos.

Usage::

    PYTHONPATH=src python benchmarks/shard_smoke.py

Drives the ``repro.shard`` stack the way the acceptance criteria are
written:

* the consistent-hash router must be bit-deterministic across
  instances and remap only the lost shard's tenants when one leaves;
* a ``RemoteEstimator``-shaped ``estimate`` over the fleet must be
  bit-identical to local execution on BOTH wires — the JSON-lines v1
  protocol and the negotiated binary v2 frames;
* binary frames must not be pathologically slower than JSON on the
  same fleet (a loose ratio bound; the win is exactness, not speed);
* under the ``shard-loss`` fault plan a crashed broker's tenants shed
  with the typed ``ShardUnavailable`` while every other shard keeps
  answering — and the same holds when a real broker is stopped;
* the fleet-scale load run (8 clients x 400 requests = 3200, 100x the
  single-broker experiment) must complete with its p99 latency SLO met
  over the negotiated binary wire.

Kept out of the ``test_*`` namespace on purpose: it is a CI gate over
the fleet + socket path, not a figure reproduction.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.errors import ShardUnavailable  # noqa: E402  (path bootstrap)
from repro.estimators.base import EstimationProblem  # noqa: E402
from repro.estimators.registry import create_estimator  # noqa: E402
from repro.experiments.service_throughput import (  # noqa: E402
    sharded_throughput_experiment,
)
from repro.faults.context import use as use_injector  # noqa: E402
from repro.faults.injector import FaultInjector  # noqa: E402
from repro.faults.plans import get_plan  # noqa: E402
from repro.shard import (  # noqa: E402
    ShardFleet,
    ShardRouter,
    ShardedServiceClient,
)

SHARD_IDS = ("shard-0", "shard-1", "shard-2")


def _make_problem(seed: int, num_configs: int = 32) -> EstimationProblem:
    rng = np.random.default_rng(seed)
    indices = np.arange(0, num_configs, max(1, num_configs // 6))
    return EstimationProblem(
        features=rng.random((num_configs, 3)),
        prior=rng.random((4, num_configs)) + 0.5,
        observed_indices=indices,
        observed_values=rng.random(len(indices)) + 0.5)


def _tenant_on(router: ShardRouter, shard_id: str) -> str:
    """A tenant key the router assigns to ``shard_id``."""
    for index in range(10_000):
        tenant = f"tenant-{index}"
        if router.owner(tenant) == shard_id:
            return tenant
    raise AssertionError(f"no tenant hashes to {shard_id}")


def check_router() -> None:
    """Determinism across instances; minimal remap on shard loss."""
    tenants = [f"tenant-{i}" for i in range(500)]
    first = ShardRouter(SHARD_IDS)
    second = ShardRouter(SHARD_IDS)
    owners = {t: first.owner(t) for t in tenants}
    assert owners == {t: second.owner(t) for t in tenants}, (
        "two routers over the same shards must agree on every tenant")

    survivors = ShardRouter(("shard-0", "shard-2"))
    moved = stayed = 0
    for tenant, owner in owners.items():
        if owner == "shard-1":
            moved += 1
        else:
            assert survivors.owner(tenant) == owner, (
                f"{tenant} moved off surviving shard {owner}")
            stayed += 1
    assert moved and stayed, owners
    print(f"router: deterministic over {len(tenants)} tenants; removing "
          f"shard-1 remapped only its {moved} tenants ({stayed} stayed)")


def check_bit_equality(fleet: ShardFleet) -> None:
    """Fleet estimates over BOTH wires == local execution, bit for bit."""
    problem = _make_problem(seed=42)
    local = create_estimator("offline").estimate(problem)
    curves = {}
    for wire in ("json", "binary"):
        with ShardedServiceClient(fleet.addresses, wire=wire) as client:
            curves[wire] = client.estimate(problem, estimator="offline",
                                           tenant_key="bit-eq")
            mode = client.client_for(
                client.router.route("bit-eq")).wire_mode
            assert mode == wire, f"expected {wire} wire, got {mode}"
    assert np.array_equal(local, curves["json"]), (
        "JSON wire drifted from local execution")
    assert np.array_equal(local, curves["binary"]), (
        "binary wire drifted from local execution")
    print("bit-equality: estimate over json and binary wires identical "
          "to local execution")


def check_wire_throughput() -> None:
    """Binary frames must stay within a loose ratio of JSON throughput."""
    rates = {}
    for wire in ("json", "binary"):
        result = sharded_throughput_experiment(
            shards=2, clients=2, requests_per_client=25, tenants=8,
            wire=wire, workers=2)
        assert result.completed == result.total_requests, result.to_dict()
        assert result.wire_mode == wire, result.wire_mode
        rates[wire] = result.requests_per_second
    ratio = rates["binary"] / max(rates["json"], 1e-9)
    # The binary wire buys bit-exactness, not speed; the gate only
    # rejects a pathological regression.
    assert ratio > 0.25, f"binary/json throughput ratio {ratio:.2f}"
    print(f"wire throughput: json {rates['json']:.0f} rps, binary "
          f"{rates['binary']:.0f} rps (ratio {ratio:.2f})")


def check_shard_loss_plan(fleet: ShardFleet) -> None:
    """The shard-loss plan sheds the crashed shard, not the fleet."""
    with ShardedServiceClient(fleet.addresses) as client:
        victim_tenant = _tenant_on(client.router, "shard-1")
        other_tenant = _tenant_on(client.router, "shard-0")
        injector = FaultInjector(get_plan("shard-loss", seed=0))
        shed = 0
        with use_injector(injector):
            # broker-crash fires with p=1 on the first four routed
            # calls; pinning them to one tenant concentrates the
            # damage on its shard, which trips to down.
            for _ in range(4):
                try:
                    client.ping(tenant_key=victim_tenant)
                except ShardUnavailable as exc:
                    shed += 1
                    assert exc.details["shard"] == "shard-1", exc.details
        assert shed == 4, f"expected 4 injected sheds, got {shed}"
        assert not client.router.is_up("shard-1")
        # The third crash trips the shard; the fourth call sheds at the
        # router without ever reaching the injection site.
        assert injector.fired_counts.get("broker-crash") == 3, (
            injector.fired_counts)
        # The fleet stays up: tenants on healthy shards never noticed.
        assert client.ping(tenant_key=other_tenant)["pong"] is True
        # And the down shard keeps shedding cheaply, without transport.
        started = time.monotonic()
        try:
            client.ping(tenant_key=victim_tenant)
        except ShardUnavailable:
            pass
        else:
            raise AssertionError("down shard must shed its tenants")
        assert time.monotonic() - started < 0.5, "shedding must be fast"
        client.router.mark_up("shard-1")
        assert client.ping(tenant_key=victim_tenant)["pong"] is True
    print("shard-loss plan: injected crashes shed shard-1's tenant, "
          "shard-0 unaffected, recovery after mark_up")


def check_real_shard_loss() -> None:
    """Stopping a real broker sheds only its tenants."""
    with ShardFleet(num_shards=3, replicas_per_shard=0) as fleet:
        with ShardedServiceClient(fleet.addresses, timeout=5.0,
                                  retries=0) as client:
            victim_tenant = _tenant_on(client.router, "shard-2")
            other_tenant = _tenant_on(client.router, "shard-1")
            assert client.ping(tenant_key=victim_tenant)["pong"] is True
            fleet.stop_shard("shard-2")
            shed = 0
            for _ in range(client.router.failure_threshold):
                try:
                    client.ping(tenant_key=victim_tenant)
                except ShardUnavailable:
                    shed += 1
            assert shed == client.router.failure_threshold, shed
            assert not client.router.is_up("shard-2")
            assert client.ping(tenant_key=other_tenant)["pong"] is True
            healthy = client.metrics()
            assert set(healthy) == {"shard-0", "shard-1"}, set(healthy)
    print("real shard loss: stopped broker tripped to down after "
          f"{shed} transport failures; survivors kept serving")


def check_scale() -> None:
    """The acceptance run: 3200 requests, p99 SLO, binary wire."""
    result = sharded_throughput_experiment(workers=4)
    assert result.total_requests >= 3200, result.total_requests
    assert result.completed == result.total_requests, result.to_dict()
    assert result.unavailable == 0 and result.shed == 0, result.to_dict()
    assert result.wire_mode == "binary", result.wire_mode
    objectives = {obj["name"]: obj for obj in result.slo["objectives"]}
    p99 = objectives["latency-p99"]
    assert p99["met"], result.slo
    print(f"scale: {result.completed} requests over {result.shards} "
          f"shards in {result.wall_seconds:.1f}s "
          f"({result.requests_per_second:.0f} rps), p99 "
          f"{p99['observed'] * 1e3:.0f}ms <= "
          f"{p99['target'] * 1e3:.0f}ms, wire {result.wire_mode}")


def main() -> int:
    check_router()
    with ShardFleet(num_shards=3, replicas_per_shard=1) as fleet:
        check_bit_equality(fleet)
        check_shard_loss_plan(fleet)
    check_real_shard_loss()
    check_wire_throughput()
    check_scale()
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
