"""CI performance smoke check: time a 3-benchmark mini accuracy sweep.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py --capture   # new baseline
    PYTHONPATH=src python benchmarks/perf_smoke.py             # check

The check re-times the sweep of ``benchmarks/perf_baseline.json`` and
fails (exit 1) when wall-clock exceeds ``max_slowdown`` (default 2.0)
times the committed baseline.  The threshold is deliberately loose —
CI machines are noisy and slower than dev boxes — so only a genuine
algorithmic regression (e.g. losing the batched E-step) trips it.

Two machine-independent guards ride along and use tight thresholds:

* the Cholesky factorization count of the sweep
  (``linalg_posterior_factorizations_total``) must not grow, which
  catches regressions to per-application factorization that a fast
  machine would hide;
* with ``REPRO_WORKERS > 1`` the parallel sweep must agree with the
  serial one exactly.

Kept out of the ``test_*`` namespace on purpose: it is a CI gate, not a
figure reproduction.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.experiments.estimation import accuracy_experiment
from repro.experiments.harness import default_context
from repro.experiments.parallel import default_workers
from repro.obs import Observability, use

BASELINE_PATH = pathlib.Path(__file__).parent / "perf_baseline.json"

#: The mini-sweep shape (first 3 benchmarks x 2 trials x 20 samples).
SWEEP = {"num_benchmarks": 3, "trials": 2, "sample_count": 20}


def run_sweep(workers: int):
    """Time the mini-sweep; returns (seconds, factorizations, result, ob)."""
    ctx = default_context(space_kind="paper", seed=0)
    names = ctx.benchmark_names[:SWEEP["num_benchmarks"]]
    ob = Observability.recording()
    started = time.perf_counter()
    with use(ob):
        result = accuracy_experiment(
            ctx, sample_count=SWEEP["sample_count"], trials=SWEEP["trials"],
            benchmarks=names, workers=workers)
    elapsed = time.perf_counter() - started
    counters = ob.metrics.snapshot()["counters"]
    factorizations = counters.get("linalg_posterior_factorizations_total", 0)
    return elapsed, factorizations, result, ob


def dump_artifacts(ob, directory="obs-artifacts") -> None:
    """Export the sweep's trace and metrics for CI to upload on failure."""
    from repro.obs import write_trace

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_trace(directory / "perf_smoke_trace.jsonl", ob.tracer.spans)
    ob.metrics.write_json(directory / "perf_smoke_metrics.json")
    print(f"observability artifacts written to {directory}/",
          file=sys.stderr)


def capture(max_slowdown: float) -> int:
    elapsed, factorizations, _, _ = run_sweep(workers=1)
    payload = {
        "sweep": SWEEP,
        "serial_seconds": round(elapsed, 3),
        "factorizations": factorizations,
        "max_slowdown": max_slowdown,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"baseline written to {BASELINE_PATH}: {payload}")
    return 0


def check() -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --capture first",
              file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("sweep") != SWEEP:
        print("baseline sweep shape differs from the script; re-capture",
              file=sys.stderr)
        return 2

    elapsed, factorizations, serial, serial_ob = run_sweep(workers=1)
    last_ob = serial_ob
    ratio = elapsed / baseline["serial_seconds"]
    print(f"serial sweep: {elapsed:.2f}s "
          f"(baseline {baseline['serial_seconds']:.2f}s, "
          f"ratio {ratio:.2f}x, limit {baseline['max_slowdown']:.1f}x)")
    print(f"factorizations: {factorizations:.0f} "
          f"(baseline {baseline['factorizations']:.0f})")

    failures = []
    if ratio > baseline["max_slowdown"]:
        failures.append(
            f"wall-clock regressed {ratio:.2f}x > "
            f"{baseline['max_slowdown']:.1f}x")
    # Parallel workers must not change wall-clock guards' semantics:
    # the factorization count is per-process work, so compare serially.
    if factorizations > baseline["factorizations"] * 1.05:
        failures.append(
            f"factorization count grew: {factorizations:.0f} vs baseline "
            f"{baseline['factorizations']:.0f} (the batched E-step "
            "regressed to per-application factorization?)")

    workers = default_workers()
    if workers > 1:
        par_elapsed, _, parallel, last_ob = run_sweep(workers=workers)
        print(f"parallel sweep ({workers} workers): {par_elapsed:.2f}s "
              f"({elapsed / par_elapsed:.2f}x vs serial)")
        if parallel.perf != serial.perf or parallel.power != serial.power:
            failures.append(
                f"workers={workers} results differ from serial")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        dump_artifacts(last_ob)
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--capture", action="store_true",
                        help="write a new baseline instead of checking")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="allowed wall-clock ratio (capture only)")
    args = parser.parse_args()
    if args.capture:
        return capture(args.max_slowdown)
    return check()


if __name__ == "__main__":
    sys.exit(main())
