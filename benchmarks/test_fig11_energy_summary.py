"""Figure 11: average energy normalized to optimal, per benchmark.

Paper headline: across all 25 applications and all utilization levels,
LEO consumes 6% over optimal versus Online 24%, Offline 29%, and
race-to-idle 90%.  Required shape: that ordering, with LEO within a few
percent of optimal and race-to-idle far above the estimating approaches.
"""

from conftest import PAPER, save_results
from repro.experiments.energy import (
    overall_normalized,
    summarize_normalized,
)
from repro.experiments.harness import format_table

APPROACH_ORDER = ("leo", "online", "offline", "race-to-idle")


def test_fig11_energy_summary(energy_curves, benchmark):
    table = benchmark.pedantic(
        lambda: summarize_normalized(energy_curves), rounds=1, iterations=1)
    overall = overall_normalized(energy_curves)

    rows = [[name] + [scores[a] for a in APPROACH_ORDER]
            for name, scores in sorted(table.items())]
    rows.append(["MEAN"] + [overall[a] for a in APPROACH_ORDER])
    paper = PAPER["fig11_energy"]
    rows.append(["PAPER"] + [paper[a] for a in APPROACH_ORDER])
    print()
    print(format_table(["benchmark"] + list(APPROACH_ORDER), rows,
                       title="Figure 11: energy normalized to optimal"))
    save_results("fig11_energy_summary",
                 {"per_benchmark": table, "overall": overall,
                  "paper": paper})

    # Paper shape: LEO near optimal, then online/offline, race worst.
    assert overall["leo"] < 1.10
    assert overall["leo"] < overall["online"]
    assert overall["leo"] < overall["offline"]
    assert overall["online"] < overall["race-to-idle"]
    assert overall["offline"] < overall["race-to-idle"]
    assert overall["race-to-idle"] > 1.3
