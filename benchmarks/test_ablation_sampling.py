"""Ablation: sampling strategy (random vs grid vs stratified).

The paper samples uniformly spaced configurations in the motivational
example (Section 2) and randomly in the full evaluation (Section 6.3).
This ablation compares LEO's accuracy under the three strategies at the
standard 20-sample budget, averaged over the representative benchmarks.
"""

import numpy as np

from conftest import save_results
from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.experiments.harness import format_table, sample_target
from repro.runtime.sampling import GridSampler, RandomSampler, StratifiedSampler

BENCHMARKS = ("kmeans", "swish", "x264", "streamcluster", "filebound")


def _accuracy_for(ctx, name, sampler):
    view = ctx.dataset.leave_one_out(name)
    truth = ctx.truth.leave_one_out(name).true_rates
    indices = sampler.select(len(ctx.space), 20)
    rate_obs, _ = sample_target(ctx, ctx.profile(name), indices,
                                seed_offset=23)
    problem = EstimationProblem(
        features=ctx.features, prior=view.prior_rates,
        observed_indices=indices, observed_values=rate_obs)
    normalized, scale = normalize_problem(problem)
    estimate = LEOEstimator().estimate(normalized) * scale
    return accuracy(estimate, truth)


def test_ablation_sampling_strategies(full_ctx, benchmark):
    samplers = {
        "random": lambda: RandomSampler(seed=3),
        "grid": lambda: GridSampler(),
        "stratified": lambda: StratifiedSampler(seed=3),
    }

    def run():
        scores = {}
        for label, factory in samplers.items():
            scores[label] = {
                name: _accuracy_for(full_ctx, name, factory())
                for name in BENCHMARKS
            }
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label in samplers:
        per = scores[label]
        rows.append([label] + [per[b] for b in BENCHMARKS]
                    + [float(np.mean(list(per.values())))])
    print()
    print(format_table(["strategy"] + list(BENCHMARKS) + ["mean"], rows,
                       title="Ablation: sampling strategy (20 samples)"))
    save_results("ablation_sampling", scores)

    # Every strategy supports accurate estimation at this budget; none
    # collapses (the model, not the sampling pattern, carries the day).
    # The mean includes filebound, whose near-flat curve bounds Eq. (5)
    # well below 1 for every approach.
    for label in samplers:
        mean = float(np.mean(list(scores[label].values())))
        assert mean > 0.8, label
