"""Section 6.7: LEO's runtime overhead.

The paper measures 0.8 s average execution time per fitted quantity and
178.5 J of energy for running the runtime, and notes exhaustive search
takes 3 hours (HOP) to 5+ days (semphy) per application on real
hardware.  On the simulator exhaustive search is trivially cheap — that
is the documented substitution — so the comparison here is: LEO's fit
time is sub-seconds-scale and its sampling energy is hundreds of Joules,
both amortizable for applications running tens of seconds or longer.
"""

from conftest import PAPER, save_results
from repro.experiments.harness import format_table
from repro.experiments.overhead import overhead_experiment


def test_sec67_overhead(full_ctx, benchmark):
    result = benchmark.pedantic(
        lambda: overhead_experiment(
            full_ctx, benchmarks=["kmeans", "swish", "x264", "hop",
                                  "semphy"]),
        rounds=1, iterations=1)

    rows = []
    for name in result.fit_seconds:
        rows.append([name, result.fit_seconds[name],
                     result.sampling_time[name],
                     result.sampling_energy[name]])
    rows.append(["MEAN", result.mean_fit_seconds, "-",
                 result.mean_sampling_energy])
    rows.append(["PAPER", 2 * PAPER["sec67_fit_seconds"], "-",
                 PAPER["sec67_energy_joules"]])
    print()
    print(format_table(
        ["benchmark", "fit seconds (both quantities)",
         "sampling time (s)", "sampling energy (J)"],
        rows, title="Section 6.7: LEO overhead"))
    save_results("sec67_overhead", {
        "fit_seconds": result.fit_seconds,
        "sampling_time": result.sampling_time,
        "sampling_energy": result.sampling_energy,
        "exhaustive_sweep_seconds": result.exhaustive_seconds,
        "paper_fit_seconds_per_quantity": PAPER["sec67_fit_seconds"],
        "paper_energy_joules": PAPER["sec67_energy_joules"],
    })

    # Same order of magnitude as the paper's 0.8 s per quantity.
    assert 0.05 < result.mean_fit_seconds < 30.0
    # Sampling: 20 windows of 1 s at a few hundred Watts.
    assert 1000.0 < result.mean_sampling_energy < 10000.0
    # One-time cost: fit time is a tiny fraction of a minutes-long run.
    assert result.mean_fit_seconds < 0.2 * 60.0
