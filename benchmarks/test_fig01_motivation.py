"""Figure 1: the Kmeans motivational example (paper Section 2).

Regenerates all three panels on the 32-configuration core-allocation
space from six observed core counts: (a) performance estimates vs cores,
(b) power estimates vs cores, (c) measured energy vs utilization.

Shape requirements: kmeans truly peaks at 8 cores; LEO places the peak
near 8 while the offline trend predicts a high-core peak; LEO's energy
curve hugs the optimal one and race-to-idle sits far above.
"""

import numpy as np

from conftest import save_results
from repro.experiments.harness import format_table
from repro.experiments.motivation import motivation_experiment


def test_fig01_motivation(cores_ctx, benchmark):
    result = benchmark.pedantic(
        lambda: motivation_experiment(cores_ctx, num_utilizations=12),
        rounds=1, iterations=1)

    rows = []
    for approach in ("leo", "online", "offline"):
        rows.append([
            approach,
            result.estimated_peak(approach),
            float(np.mean(result.energy[approach])
                  / np.mean(result.energy["optimal"])),
        ])
    rows.append(["race-to-idle", "-",
                 float(np.mean(result.energy["race-to-idle"])
                       / np.mean(result.energy["optimal"]))])
    print()
    print(format_table(
        ["approach", "estimated peak (cores)", "mean energy / optimal"],
        rows, title=f"Figure 1 (true peak = {result.true_peak()} cores)"))

    save_results("fig01_motivation", {
        "true_peak": result.true_peak(),
        "estimated_peaks": {a: result.estimated_peak(a)
                            for a in result.est_rates},
        "utilizations": list(result.utilizations),
        "energy": {a: list(v) for a, v in result.energy.items()},
    })

    # Paper shape: kmeans peaks at 8; LEO finds it, offline does not.
    assert result.true_peak() == 8
    assert abs(result.estimated_peak("leo") - 8) <= 3
    assert result.estimated_peak("offline") > result.estimated_peak("leo")
    # LEO saves energy over every baseline across the sweep.
    mean_energy = {a: float(np.mean(v)) for a, v in result.energy.items()}
    assert mean_energy["leo"] <= mean_energy["online"]
    assert mean_energy["leo"] <= mean_energy["offline"]
    assert mean_energy["leo"] < mean_energy["race-to-idle"]
