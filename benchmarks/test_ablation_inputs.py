"""Ablation: input drift (Section 4's input-dependence claim).

Targets are seeded input variants of suite applications — heavier
datasets, shifted memory behaviour, moved scaling peaks — while the
offline library holds only reference-input profiles.  The approaches'
relative standing should mirror the main accuracy figures: LEO adapts
to the variant from its samples; the offline mean can only replay the
reference trend.
"""

from conftest import save_results
from repro.experiments.harness import format_table
from repro.experiments.input_drift import input_drift_experiment


def test_ablation_input_drift(full_ctx, benchmark):
    result = benchmark.pedantic(
        lambda: input_drift_experiment(full_ctx), rounds=1, iterations=1)

    rows = [[name, scores["leo"], scores["online"], scores["offline"]]
            for name, scores in result.perf.items()]
    means = result.mean_perf()
    rows.append(["MEAN", means["leo"], means["online"], means["offline"]])
    print()
    print(format_table(
        ["benchmark (variants)", "leo", "online", "offline"], rows,
        title=f"Ablation: accuracy on input variants "
              f"({result.variants_per_app} per app)"))
    save_results("ablation_inputs", {
        "per_benchmark": result.perf,
        "mean": means,
        "variants_per_app": result.variants_per_app,
    })

    assert means["leo"] > 0.85
    assert means["leo"] > means["offline"] + 0.05
    assert means["leo"] >= means["online"] - 0.02
