"""Figure 13 and Table 1: reacting to dynamic phase changes (Section 6.6).

fluidanimate's input switches to a phase needing 2/3 the resources; all
approaches keep meeting the per-frame deadline (gradient-ascent
feedback), and the energy difference shows up in power.  Table 1's paper
values — energy relative to optimal per phase — are LEO 1.045/1.005/
1.028, Offline 1.169/1.275/1.216, Online 1.325/1.248/1.291.

Required shape: every approach meets the performance goal in both
phases; LEO detects the phase change (re-estimates at least once) and
its overall relative energy is the lowest and close to 1.
"""

from conftest import PAPER, save_results
from repro.experiments.dynamic import table1_rows
from repro.experiments.harness import format_table


def test_fig13_table1_phases(dynamic_result, benchmark):
    result = benchmark.pedantic(lambda: dynamic_result,
                                rounds=1, iterations=1)

    rows = table1_rows(result)
    paper = PAPER["table1"]
    for approach, values in paper.items():
        rows.append([f"PAPER {approach}"] + values)
    print()
    print(format_table(["Algorithm", "Phase#1", "Phase#2", "Overall"],
                       rows, title="Table 1: energy relative to optimal"))
    save_results("fig13_table1_phases", {
        "relative": result.relative,
        "optimal_energy": result.optimal_energy,
        "reestimations": {a: result.reestimations(a)
                          for a in result.reports},
        "power_traces": {a: [r.power_trace for r in reports]
                         for a, reports in result.reports.items()},
        "paper": paper,
    })

    # All approaches meet the performance goal in both phases.
    for approach, reports in result.reports.items():
        for i, report in enumerate(reports):
            assert report.met_target, (approach, i)

    # LEO noticed the phase change.
    assert result.reestimations("leo") >= 1

    # LEO's overall relative energy is the best and near-optimal.
    overall = {a: rel[2] for a, rel in result.relative.items()}
    assert overall["leo"] <= overall["online"] + 1e-9
    assert overall["leo"] <= overall["offline"] + 1e-9
    assert overall["leo"] < 1.15
